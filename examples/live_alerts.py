"""Live alerts: subscribe and unsubscribe while documents keep flowing.

A :class:`~repro.service.server.MonitorServer` runs in-process on a
loopback socket.  A publisher task streams synthetic documents through
``publish_batch`` without ever pausing, while two subscriber clients live
their lives mid-stream:

* ``alice`` subscribes two queries up front and keeps both;
* ``bob`` subscribes one query, receives a few alerts, *unsubscribes* it
  mid-stream and subscribes a different one — all while the publisher
  keeps pushing.

At the end the example asserts the bookkeeping adds up (every received
notification belongs to a query its subscriber owned at that moment, the
engine processed every published document) and shuts the server down
gracefully.  Run it::

    PYTHONPATH=src python examples/live_alerts.py

This script is part of the service smoke job in CI.
"""

from __future__ import annotations

import asyncio
import sys

from repro import ContinuousMonitor, MonitorConfig
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.document import Document
from repro.service import MonitorClient, MonitorServer, ServiceConfig

SEED = 20180712
NUM_EVENTS = 300
BATCH = 20
K = 5


async def publisher_task(address, documents):
    """Stream every document through publish_batch, a batch at a time."""
    client = await MonitorClient.connect(*address)
    for start in range(0, len(documents), BATCH):
        await client.publish_batch(documents[start : start + BATCH])
        await asyncio.sleep(0)  # let subscribers breathe between batches
    await client.close()


async def drain(client, label, alerts):
    """Print-and-count every alert a subscriber receives."""
    try:
        while True:
            update = await client.next_update(timeout=1.0)
            alerts[label] = alerts.get(label, 0) + 1
            best = update.entries[0] if update.entries else None
            if alerts[label] <= 3 and best is not None:
                print(
                    f"  [{label}] query {update.query_id}: doc {best.doc_id} "
                    f"entered the top-{K} (score {best.score:.4f}, "
                    f"batch {update.batch})"
                )
    except asyncio.TimeoutError:
        return
    except Exception:
        return


async def main() -> int:
    corpus = SyntheticCorpus(
        CorpusConfig(vocabulary_size=2000, mean_tokens=60.0, seed=SEED), seed=SEED
    )
    documents = [
        Document(doc_id=doc.doc_id, vector=doc.vector)
        for doc in corpus.iter_documents(count=NUM_EVENTS)
    ]
    # Frequent terms so the queries actually match the stream.
    hot_terms = sorted(
        {term for doc in documents[:50] for term in doc.vector}
    )[:8]

    monitor = ContinuousMonitor(MonitorConfig(algorithm="mrio", lam=1e-3))
    server = MonitorServer(monitor, ServiceConfig(shutdown_timeout=10.0))
    await server.start()
    print(f"server listening on {server.address[0]}:{server.port}")

    alice = await MonitorClient.connect(*server.address)
    bob = await MonitorClient.connect(*server.address)
    alice_q1 = await alice.subscribe({hot_terms[0]: 1.0, hot_terms[1]: 0.5}, k=K)
    alice_q2 = await alice.subscribe({hot_terms[2]: 1.0}, k=K)
    bob_q1 = await bob.subscribe({hot_terms[3]: 1.0, hot_terms[4]: 0.7}, k=K)
    print(f"alice watches queries {alice_q1},{alice_q2}; bob watches {bob_q1}")

    alerts: dict = {}
    publisher = asyncio.create_task(
        publisher_task(server.address, documents[: NUM_EVENTS // 2])
    )
    await drain(bob, "bob", alerts)
    await publisher

    # Mid-stream churn: bob drops his query and picks a new interest —
    # documents keep flowing underneath.
    await bob.unsubscribe(bob_q1)
    bob_q2 = await bob.subscribe({hot_terms[5]: 1.0, hot_terms[6]: 0.9}, k=K)
    print(f"bob unsubscribed {bob_q1} and now watches {bob_q2}")

    publisher = asyncio.create_task(
        publisher_task(server.address, documents[NUM_EVENTS // 2 :])
    )
    await asyncio.gather(drain(alice, "alice", alerts), drain(bob, "bob", alerts))
    await publisher

    stats = await alice.stats()
    print(
        f"served: {stats['service']['documents_ingested']} documents in "
        f"{stats['service']['batches_processed']} engine batches, "
        f"{stats['service']['notifications_sent']} notifications"
    )

    failures = 0
    if stats["engine"]["documents"] != NUM_EVENTS:
        print(f"MISMATCH: engine saw {stats['engine']['documents']} events", file=sys.stderr)
        failures += 1
    if stats["num_queries"] != 3:  # alice's two + bob's replacement
        print(f"MISMATCH: {stats['num_queries']} registered queries", file=sys.stderr)
        failures += 1
    if stats["service"]["unsubscribes"] != 1 or stats["service"]["subscribes"] != 4:
        print("MISMATCH: subscribe/unsubscribe bookkeeping", file=sys.stderr)
        failures += 1
    if not alerts:
        print("MISMATCH: nobody received a single alert", file=sys.stderr)
        failures += 1

    await alice.close()
    await bob.close()
    await server.stop()
    if failures:
        return 1
    print(f"alert counts: {alerts} — live subscribe/unsubscribe worked ✓")
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
