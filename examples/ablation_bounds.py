#!/usr/bin/env python3
"""Ablation: compare RIO's global bound with MRIO's three UB* implementations.

All four configurations process the same warmed-up stream; the table shows
how much of the per-event work each bound eliminates and what it costs to
maintain, mirroring the design discussion in DESIGN.md §3.3.

Run with::

    python examples/ablation_bounds.py
"""

from __future__ import annotations

from repro import SyntheticCorpus
from repro.core.factory import create_algorithm
from repro.documents.corpus import CorpusConfig
from repro.documents.decay import ExponentialDecay
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import UniformWorkload, WorkloadConfig

CONFIGURATIONS = [
    ("rio (global bound)", "rio", {}),
    ("mrio / exact zones", "mrio", {"ub_variant": "exact"}),
    ("mrio / segment tree", "mrio", {"ub_variant": "tree"}),
    ("mrio / block maxima", "mrio", {"ub_variant": "block"}),
]


def main() -> None:
    corpus_config = CorpusConfig(
        vocabulary_size=6_000, num_topics=40, terms_per_topic=150, mean_tokens=100.0, seed=5
    )
    num_queries, warmup, measured = 2_000, 300, 50

    print(
        f"{num_queries} Uniform queries, {warmup} warm-up events, "
        f"{measured} measured events\n"
    )
    header = f"{'configuration':22s} {'ms/event':>9s} {'scored/event':>13s} {'iterations':>11s} {'bounds':>9s}"
    print(header)
    print("-" * len(header))

    for label, name, kwargs in CONFIGURATIONS:
        corpus = SyntheticCorpus(corpus_config)
        queries = UniformWorkload(
            corpus, config=WorkloadConfig(min_terms=2, max_terms=5, k=10, seed=11), seed=11
        ).generate(num_queries)
        stream = DocumentStream(corpus, StreamConfig(seed=23))

        algo = create_algorithm(name, ExponentialDecay(lam=1e-3), **kwargs)
        algo.register_all(queries)
        for document in stream.take(warmup):
            algo.process(document)
        algo.counters.reset()
        algo.response_times.clear()
        for document in stream.take(measured):
            algo.process(document)

        per_event = algo.counters.per_document()
        mean_ms = 1000.0 * sum(algo.response_times) / len(algo.response_times)
        print(
            f"{label:22s} {mean_ms:9.3f} {per_event['full_evaluations']:13.1f} "
            f"{per_event['iterations']:11.1f} {per_event['bound_computations']:9.1f}"
        )

    print(
        "\nTighter zone bounds consider fewer queries per event (the paper's"
        " optimality result); the maintainers differ in how much that costs."
    )


if __name__ == "__main__":
    main()
