"""Crash-recovery demonstration: SIGKILL a durable monitor, recover, diff.

The parent process spawns a child that ingests a deterministic synthetic
stream through a :class:`~repro.persistence.durable.DurableMonitor`
(``group_commit=1``: every event durable on return).  Mid-ingest the parent
sends the child ``SIGKILL`` — no cleanup, no flush, the classic pulled
plug.  It then recovers the monitor from the surviving directory, replays
the same stream prefix through an ordinary in-memory monitor, and verifies
that top-k sets, thresholds and work counters are byte-identical.

Run it::

    PYTHONPATH=src python examples/crash_recovery.py

This script is also the crash-recovery smoke job in CI.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro import ContinuousMonitor, DurabilityConfig, DurableMonitor, MonitorConfig
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import UniformWorkload, WorkloadConfig

NUM_QUERIES = 150
NUM_EVENTS = 400
SEED = 20180416  # ICDE'18 vintage

MONITOR_CONFIG = MonitorConfig(algorithm="mrio", lam=1e-3)


def build_world():
    """The deterministic corpus, workload and stream both processes share."""
    corpus = SyntheticCorpus(
        CorpusConfig(vocabulary_size=2000, mean_tokens=60.0, seed=SEED), seed=SEED
    )
    queries = UniformWorkload(
        corpus, config=WorkloadConfig(min_terms=2, max_terms=4, k=10, seed=SEED + 1)
    ).generate(NUM_QUERIES)
    stream = DocumentStream(corpus, StreamConfig(seed=SEED + 2))
    return queries, stream


def ingest(directory: str, progress_path: str, events: int) -> None:
    """Child: ingest with durability, reporting progress after each event."""
    queries, stream = build_world()
    durability = DurabilityConfig(
        directory=directory, group_commit=1, checkpoint_interval=64
    )
    monitor = DurableMonitor(durability, MONITOR_CONFIG)
    monitor.register_queries(queries)
    for count, document in enumerate(stream.take(events), start=1):
        monitor.process(document)
        with open(progress_path, "w") as handle:
            handle.write(str(count))
            handle.flush()
    monitor.close()


def read_progress(progress_path: str) -> int:
    try:
        with open(progress_path) as handle:
            return int(handle.read() or 0)
    except (FileNotFoundError, ValueError):
        return 0


def crash_and_recover(kill_after: int) -> int:
    """Parent: spawn, SIGKILL mid-ingest, recover, diff. Returns exit code."""
    with tempfile.TemporaryDirectory(prefix="repro-crash-") as root:
        state_dir = os.path.join(root, "state")
        progress_path = os.path.join(root, "progress")
        child = subprocess.Popen(
            [
                sys.executable,
                os.path.abspath(__file__),
                "--ingest",
                state_dir,
                "--progress",
                progress_path,
                "--events",
                str(NUM_EVENTS),
            ],
            env=os.environ.copy(),
        )
        try:
            deadline = time.monotonic() + 120.0
            while read_progress(progress_path) < kill_after:
                if child.poll() is not None:
                    print("child exited before the kill point", file=sys.stderr)
                    return 1
                if time.monotonic() > deadline:
                    print("timed out waiting for ingest progress", file=sys.stderr)
                    return 1
                time.sleep(0.005)
            child.send_signal(signal.SIGKILL)
            child.wait()
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

        durability = DurabilityConfig(directory=state_dir, group_commit=1)
        recovered, report = DurableMonitor.recover(durability)
        survived = recovered.statistics.documents
        print(
            f"killed at >= event {kill_after}; recovered {survived} events "
            f"(checkpoint lsn {report.checkpoint_lsn}, "
            f"{report.replayed_records} records replayed, "
            f"{report.truncated_bytes} torn bytes truncated)"
        )

        # Uninterrupted reference over the exact surviving prefix.
        queries, stream = build_world()
        reference = ContinuousMonitor(MONITOR_CONFIG)
        reference.register_queries(queries)
        for document in stream.take(survived):
            reference.process(document)

        failures = 0
        if recovered.all_results() != reference.all_results():
            print("MISMATCH: top-k results differ", file=sys.stderr)
            failures += 1
        for query in queries:
            if recovered.monitor.algorithm.threshold(
                query.query_id
            ) != reference.algorithm.threshold(query.query_id):
                print(f"MISMATCH: threshold of query {query.query_id}", file=sys.stderr)
                failures += 1
                break
        got = recovered.statistics.snapshot()
        want = reference.statistics.snapshot()
        got.pop("elapsed_seconds")
        want.pop("elapsed_seconds")
        if got != want:
            print(f"MISMATCH: counters {got} != {want}", file=sys.stderr)
            failures += 1
        recovered.close()
        if failures:
            return 1
        print("recovered state is byte-identical to the uninterrupted run ✓")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ingest", metavar="DIR", help="(internal) child mode")
    parser.add_argument("--progress", metavar="FILE", help="(internal) child mode")
    parser.add_argument("--events", type=int, default=NUM_EVENTS)
    parser.add_argument(
        "--kill-after",
        type=int,
        default=NUM_EVENTS // 3,
        help="minimum events ingested before SIGKILL (parent mode)",
    )
    args = parser.parse_args()
    if args.ingest:
        ingest(args.ingest, args.progress, args.events)
        return 0
    return crash_and_recover(args.kill_after)


if __name__ == "__main__":
    sys.exit(main())
