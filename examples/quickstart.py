#!/usr/bin/env python3
"""Quickstart: continuous top-k monitoring in a few lines.

Registers a handful of keyword queries, streams raw text documents through
the monitor (the text pipeline tokenizes, removes stopwords, stems and
normalizes), and prints every result update plus the final top-k of each
query.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ContinuousMonitor, MonitorConfig, Vectorizer, Vocabulary

ARTICLES = [
    "Central bank raises interest rates amid persistent inflation worries",
    "Star striker scores twice as the football championship final goes to extra time",
    "New deep learning model sets a record on the language understanding benchmark",
    "Government announces infrastructure spending to counter slowing economy",
    "Quantum computing startup raises a record funding round for superconducting chips",
    "Championship winning coach resigns after a turbulent football season",
    "Inflation cools slightly but central bank keeps rates unchanged",
    "Researchers release an open source model for protein structure prediction",
    "Football transfer window closes with record spending across leagues",
    "Chip maker unveils an accelerator aimed at deep learning training workloads",
]


def main() -> None:
    # One vocabulary + vectorizer is shared by queries and documents so that
    # keywords and article text land on the same stemmed terms.
    vectorizer = Vectorizer(Vocabulary())
    monitor = ContinuousMonitor(
        MonitorConfig(algorithm="mrio", lam=0.05, default_k=3),
        vectorizer=vectorizer,
    )

    users = {
        "alice": ["inflation", "interest rates", "economy"],
        "bob": ["football", "championship"],
        "carol": ["deep learning", "chips", "models"],
    }
    queries = {
        name: monitor.register_keywords(keywords, k=3, user=name)
        for name, keywords in users.items()
    }
    print(f"registered {monitor.num_queries} continuous queries\n")

    for doc_id, article in enumerate(ARTICLES):
        updates = monitor.process_text(doc_id, article, arrival_time=float(doc_id + 1))
        for update in updates:
            owner = monitor.algorithm.queries[update.query_id].user
            print(f"event {doc_id:2d}: result update for {owner:5s} <- doc {update.doc_id}")

    print("\nfinal top-k per user:")
    for name, query in queries.items():
        print(f"  {name}:")
        for entry in monitor.top_k(query.query_id):
            print(f"    doc {entry.doc_id:2d}  score={entry.score:8.4f}  | {ARTICLES[entry.doc_id]}")

    stats = monitor.statistics
    print(
        f"\nprocessed {stats.documents} events, "
        f"{stats.full_evaluations} query evaluations, "
        f"{stats.result_updates} result updates"
    )


if __name__ == "__main__":
    main()
