#!/usr/bin/env python3
"""Social-network notification feeds with user churn.

Models the paper's second motivating application: users follow keyword
interests over a fast stream of short posts.  Interests change over time —
users join, leave and re-subscribe mid-stream — and the example compares the
work performed by MRIO against the exhaustive re-evaluation a naive service
would do, on the exact same stream.

Run with::

    python examples/social_notifications.py
"""

from __future__ import annotations

from repro import SyntheticCorpus
from repro.core.factory import create_algorithm
from repro.documents.corpus import CorpusConfig
from repro.documents.decay import ExponentialDecay
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import UniformWorkload, WorkloadConfig


def build_world():
    corpus = SyntheticCorpus(
        CorpusConfig(
            vocabulary_size=4_000,
            num_topics=30,
            terms_per_topic=120,
            mean_tokens=40.0,   # short posts
            min_tokens=8,
            seed=77,
        )
    )
    workload = UniformWorkload(
        corpus, config=WorkloadConfig(min_terms=1, max_terms=3, k=5, seed=5), seed=5
    )
    return corpus, workload


def run(algorithm_name: str):
    corpus, workload = build_world()
    corpus.reset(seed=77)
    algo = create_algorithm(algorithm_name, ExponentialDecay(lam=0.02))

    initial = workload.generate(1_500)
    algo.register_all(initial)

    stream = DocumentStream(corpus, StreamConfig(interval=1.0, seed=13))
    notifications = 0
    algo.add_update_listener(lambda update: None)

    # Phase 1: steady traffic.
    for post in stream.take(150):
        notifications += len(algo.process(post))

    # Phase 2: churn — 200 users leave, 300 new ones join.
    for query in initial[:200]:
        algo.unregister(query.query_id)
    joiners = workload.generate(300)
    algo.register_all(joiners)

    # Phase 3: more traffic with the changed population.
    for post in stream.take(150):
        notifications += len(algo.process(post))

    return algo, notifications


def main() -> None:
    print("social notification feeds: MRIO vs exhaustive on the same stream\n")
    rows = []
    for name in ("mrio", "exhaustive"):
        algo, notifications = run(name)
        stats = algo.counters
        mean_ms = 1000.0 * sum(algo.response_times) / len(algo.response_times)
        rows.append(
            (
                name,
                mean_ms,
                stats.full_evaluations / stats.documents,
                stats.result_updates / stats.documents,
                notifications,
            )
        )
    print(f"{'engine':12s} {'ms/post':>9s} {'scored/post':>12s} {'updates/post':>13s} {'notifications':>14s}")
    for name, mean_ms, scored, updates, notifications in rows:
        print(f"{name:12s} {mean_ms:9.3f} {scored:12.1f} {updates:13.1f} {notifications:14d}")

    mrio_scored = rows[0][2]
    naive_scored = rows[1][2]
    print(
        f"\nMRIO scored {naive_scored / max(mrio_scored, 1e-9):.1f}x fewer queries per post "
        "while delivering the identical notifications."
    )


if __name__ == "__main__":
    main()
