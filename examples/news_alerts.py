#!/usr/bin/env python3
"""News-alert filtering: the paper's motivating scenario at a larger scale.

A synthetic "news wire" (topically structured corpus) streams into a central
monitor hosting thousands of user subscriptions (Connected workload: users
subscribe to keywords that actually co-occur in articles).  A hard staleness
window drops articles older than a day from every alert list, and an update
listener plays the role of the push-notification service.

Run with::

    python examples/news_alerts.py
"""

from __future__ import annotations

from collections import Counter

from repro import ContinuousMonitor, MonitorConfig, SyntheticCorpus
from repro.documents.corpus import CorpusConfig
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import ConnectedWorkload, WorkloadConfig

#: One simulated "hour" per stream event; the window below is 24 hours.
WINDOW_HOURS = 24.0


def main() -> None:
    corpus = SyntheticCorpus(
        CorpusConfig(vocabulary_size=5_000, num_topics=40, terms_per_topic=150, seed=2024)
    )
    subscriptions = ConnectedWorkload(
        corpus, config=WorkloadConfig(min_terms=2, max_terms=4, k=5, seed=7), seed=7
    ).generate(2_000)

    monitor = ContinuousMonitor(
        MonitorConfig(algorithm="mrio", lam=0.01, window_horizon=WINDOW_HOURS)
    )
    monitor.register_queries(subscriptions)

    # The notification side-channel: count alerts per subscription.
    alerts: Counter = Counter()
    monitor.add_update_listener(lambda update: alerts.update([update.query_id]))

    stream = DocumentStream(corpus, StreamConfig(interval=1.0, seed=99))
    hours = 120  # five simulated days
    for document in stream.take(hours):
        monitor.process(document)

    stats = monitor.statistics
    print(f"simulated {hours} hours of news, {monitor.num_queries} subscriptions")
    print(f"live articles inside the {WINDOW_HOURS:.0f}h window: {monitor.live_window_size}")
    print(
        f"per event: {stats.full_evaluations / stats.documents:,.1f} queries scored, "
        f"{stats.result_updates / stats.documents:,.1f} alert-list updates"
    )
    mean_ms = 1000.0 * sum(monitor.response_times) / len(monitor.response_times)
    print(f"mean refresh time per arriving article: {mean_ms:.2f} ms")

    print("\nmost active subscriptions (alerts received):")
    for query_id, count in alerts.most_common(5):
        query = monitor.algorithm.queries[query_id]
        terms = ", ".join(corpus.vocabulary.term_of(t) for t in query.terms())
        print(f"  subscription {query_id:5d} [{terms}] -> {count} alerts")

    sample = alerts.most_common(1)[0][0]
    print(f"\ncurrent alert list of subscription {sample}:")
    for entry in monitor.top_k(sample):
        print(f"  article {entry.doc_id:4d}  score={entry.score:10.4f}")


if __name__ == "__main__":
    main()
