#!/usr/bin/env python3
"""Reproduce Figure 1 of the paper programmatically (scaled down).

Runs the Figure 1(a)/(b) experiment specs through the benchmark harness at
the ``tiny`` scale profile (a couple of minutes on a laptop) and prints the
response-time, speed-up and considered-queries tables.  The full-size sweep
is available through the pytest benchmarks::

    REPRO_BENCH_PROFILE=small pytest benchmarks/bench_fig1_uniform.py --benchmark-only

Run with::

    python examples/reproduce_figure1.py [tiny|small|medium]
"""

from __future__ import annotations

import sys

from repro.bench.figures import figure1_connected_spec, figure1_uniform_spec
from repro.bench.harness import run_experiment
from repro.bench.reporting import (
    format_counter_table,
    format_response_table,
    format_speedup_table,
)


def main() -> None:
    profile = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    for label, spec_factory in [
        ("Figure 1(a) Wiki-Uniform", figure1_uniform_spec),
        ("Figure 1(b) Wiki-Connected", figure1_connected_spec),
    ]:
        spec = spec_factory(profile)
        print(f"\n=== {label} (profile: {profile}) ===")
        print(
            f"queries: {spec.query_counts}, events: {spec.num_events} measured "
            f"after {spec.warmup_events} warm-up, k={spec.k}, lambda={spec.lam:g}"
        )
        result = run_experiment(spec)
        print()
        print(format_response_table(result, title="mean response time per event (ms)"))
        print()
        print(format_speedup_table(result, reference="mrio"))
        print()
        print(
            format_counter_table(
                result, "full_evaluations", title="queries considered per event"
            )
        )


if __name__ == "__main__":
    main()
