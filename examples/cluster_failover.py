"""Cluster failover demonstration: SIGKILL a primary mid-stream, keep going.

The router (:class:`~repro.runtime.sharded.ShardedMonitor` with
``executor="remote"``) spawns each partition as a *shard-host* process plus
one hot standby, connected over loopback TCP.  Every mutating command is
journaled on the primary and shipped to its standby over the WAL
subscription.  Mid-stream this script ``SIGKILL``s the shard-0 primary —
no cleanup, no goodbye frame.  The next batch fans out, the router notices
the dead socket, promotes the standby, replays its redo queue at the same
LSNs, and the stream continues.  At the end the cluster's state is diffed
against a serial single-process run of the identical stream: top-k sets
and thresholds must be byte-identical, as if the crash never happened.

Run it::

    PYTHONPATH=src python examples/cluster_failover.py

This script is also the cluster smoke job in CI (POSIX only: it kills
processes with signals).
"""

from __future__ import annotations

import os
import signal
import sys

from repro import MonitorConfig
from repro.cluster.remote import RemoteShardExecutor
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import UniformWorkload, WorkloadConfig
from repro.runtime.sharded import ShardedMonitor

NUM_QUERIES = 80
NUM_EVENTS = 120
BATCH = 8
N_SHARDS = 2
SEED = 20180416  # ICDE'18 vintage

MONITOR_CONFIG = MonitorConfig(algorithm="mrio", lam=1e-3)


def build_world():
    """The deterministic corpus, workload and stream both runs share."""
    corpus = SyntheticCorpus(
        CorpusConfig(vocabulary_size=2000, mean_tokens=60.0, seed=SEED), seed=SEED
    )
    queries = UniformWorkload(
        corpus, config=WorkloadConfig(min_terms=2, max_terms=4, k=10, seed=SEED + 1)
    ).generate(NUM_QUERIES)
    stream = DocumentStream(corpus, StreamConfig(seed=SEED + 2))
    return queries, list(stream.take(NUM_EVENTS))


def main() -> int:
    if os.name != "posix":
        print("needs POSIX signals; skipping", file=sys.stderr)
        return 0
    queries, documents = build_world()

    # The reference: the same stream through the serial in-process runtime.
    reference = ShardedMonitor(MONITOR_CONFIG, n_shards=N_SHARDS, executor="serial")
    reference.register_queries(queries)
    for start in range(0, NUM_EVENTS, BATCH):
        reference.process_batch(documents[start : start + BATCH])

    executor = RemoteShardExecutor(
        N_SHARDS, replicas=1, max_lag_records=4, min_replicas=0
    )
    cluster = ShardedMonitor(MONITOR_CONFIG, n_shards=N_SHARDS, executor=executor)
    try:
        cluster.register_queries(queries)
        kill_at = (NUM_EVENTS // (2 * BATCH)) * BATCH  # a batch boundary
        victim = executor.handles[0].primary.process
        for start in range(0, NUM_EVENTS, BATCH):
            if start == kill_at:
                os.kill(victim.pid, signal.SIGKILL)
                victim.join()
                print(f"SIGKILLed shard-0 primary (pid {victim.pid}) "
                      f"before event {start}")
            cluster.process_batch(documents[start : start + BATCH])

        summary = cluster.replication_summary
        assert summary is not None and summary["failovers"] == 1, summary
        assert all(cluster.check_health().values())
        mismatches = 0
        for query in queries:
            if cluster.top_k(query.query_id) != reference.top_k(query.query_id):
                mismatches += 1
            if cluster.threshold(query.query_id) != reference.threshold(
                query.query_id
            ):
                mismatches += 1
        if mismatches:
            print(f"FAILED: {mismatches} queries diverged", file=sys.stderr)
            return 1
        print(
            f"survived the crash: {summary['failovers']} failover, "
            f"{cluster.statistics.documents} events, "
            f"{NUM_QUERIES} queries byte-identical to the serial run "
            f"(applied lsn {summary['applied_lsn']})"
        )
        return 0
    finally:
        cluster.close()
        reference.close()


if __name__ == "__main__":
    sys.exit(main())
