"""Aggregate statistics over a measured run (per-event response times).

numpy-optional on purpose: the bench harness runs wherever the engine
runs, and the engine itself has no numpy dependency.  When numpy is
present the summaries use its vectorized mean/percentile; without it a
pure-Python fallback computes the *same* numbers — ``_percentile``
reimplements ``np.percentile``'s default linear interpolation exactly, so
committed bench tables do not change shape or value with the installed
stack.  Covered by ``tests/test_metrics.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

try:  # pragma: no cover - import probe
    import numpy as np
except ImportError:  # pragma: no cover - numpy-free deployments
    np = None  # type: ignore[assignment]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """``np.percentile(values, q)`` (linear interpolation) without numpy.

    ``sorted_values`` must be non-empty and ascending.  The rank is
    ``q/100 * (n - 1)``; a fractional rank interpolates linearly between
    the two neighbouring order statistics — numpy's default method.
    """
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (n - 1)
    lower = math.floor(rank)
    upper = min(lower + 1, n - 1)
    fraction = rank - lower
    return float(
        sorted_values[lower] + (sorted_values[upper] - sorted_values[lower]) * fraction
    )


def summarize_times(times_seconds: Sequence[float]) -> Dict[str, float]:
    """Summary statistics (in milliseconds) of a response-time sample."""
    if not times_seconds:
        return {
            "count": 0,
            "mean_ms": 0.0,
            "median_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
            "total_ms": 0.0,
        }
    if np is not None:
        arr = np.asarray(times_seconds, dtype=float) * 1000.0
        return {
            "count": int(arr.size),
            "mean_ms": float(arr.mean()),
            "median_ms": float(np.median(arr)),
            "p95_ms": float(np.percentile(arr, 95)),
            "p99_ms": float(np.percentile(arr, 99)),
            "max_ms": float(arr.max()),
            "total_ms": float(arr.sum()),
        }
    values = sorted(float(value) * 1000.0 for value in times_seconds)
    total = sum(values)
    return {
        "count": len(values),
        "mean_ms": total / len(values),
        "median_ms": _percentile(values, 50),
        "p95_ms": _percentile(values, 95),
        "p99_ms": _percentile(values, 99),
        "max_ms": values[-1],
        "total_ms": total,
    }


@dataclass
class RunStatistics:
    """Everything measured for one (algorithm, configuration) run."""

    algorithm: str
    num_queries: int
    num_events: int
    response_times: List[float] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    #: One ``(batch_size, elapsed_seconds)`` pair per engine batch the run
    #: processed (empty for per-event runs).
    batch_response_times: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def mean_response_ms(self) -> float:
        return summarize_times(self.response_times)["mean_ms"]

    @property
    def median_response_ms(self) -> float:
        return summarize_times(self.response_times)["median_ms"]

    @property
    def p95_response_ms(self) -> float:
        return summarize_times(self.response_times)["p95_ms"]

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the reporting layer."""
        result: Dict[str, float] = {
            "algorithm": self.algorithm,
            "num_queries": self.num_queries,
            "num_events": self.num_events,
        }
        result.update(summarize_times(self.response_times))
        for name, value in self.counters.items():
            result[f"counter_{name}"] = value
        if self.batch_response_times:
            batch_times = [elapsed for _, elapsed in self.batch_response_times]
            batch_summary = summarize_times(batch_times)
            result["batch_count"] = batch_summary["count"]
            result["batch_mean_ms"] = batch_summary["mean_ms"]
            result["batch_p95_ms"] = batch_summary["p95_ms"]
            result["batch_max_ms"] = batch_summary["max_ms"]
            result["batch_mean_size"] = sum(
                size for size, _ in self.batch_response_times
            ) / len(self.batch_response_times)
        result.update(self.extra)
        return result
