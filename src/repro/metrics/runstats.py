"""Aggregate statistics over a measured run (per-event response times)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


def summarize_times(times_seconds: Sequence[float]) -> Dict[str, float]:
    """Summary statistics (in milliseconds) of a response-time sample."""
    if not times_seconds:
        return {
            "count": 0,
            "mean_ms": 0.0,
            "median_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
            "total_ms": 0.0,
        }
    arr = np.asarray(times_seconds, dtype=float) * 1000.0
    return {
        "count": int(arr.size),
        "mean_ms": float(arr.mean()),
        "median_ms": float(np.median(arr)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "max_ms": float(arr.max()),
        "total_ms": float(arr.sum()),
    }


@dataclass
class RunStatistics:
    """Everything measured for one (algorithm, configuration) run."""

    algorithm: str
    num_queries: int
    num_events: int
    response_times: List[float] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_response_ms(self) -> float:
        return summarize_times(self.response_times)["mean_ms"]

    @property
    def median_response_ms(self) -> float:
        return summarize_times(self.response_times)["median_ms"]

    @property
    def p95_response_ms(self) -> float:
        return summarize_times(self.response_times)["p95_ms"]

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the reporting layer."""
        result: Dict[str, float] = {
            "algorithm": self.algorithm,
            "num_queries": self.num_queries,
            "num_events": self.num_events,
        }
        result.update(summarize_times(self.response_times))
        for name, value in self.counters.items():
            result[f"counter_{name}"] = value
        result.update(self.extra)
        return result
