"""Instrumentation: per-event counters and per-run aggregate statistics."""

from repro.metrics.counters import EventCounters
from repro.metrics.runstats import RunStatistics, summarize_times

__all__ = ["EventCounters", "RunStatistics", "summarize_times"]
