"""Instrumentation: per-event counters and per-run aggregate statistics.

Latency *histograms* and pipeline stage timers live in :mod:`repro.obs`;
this package holds the scalar work counters and the bench-run summaries.
"""

from repro.metrics.counters import EventCounters, ServiceCounters
from repro.metrics.runstats import RunStatistics, summarize_times

__all__ = ["EventCounters", "RunStatistics", "ServiceCounters", "summarize_times"]
