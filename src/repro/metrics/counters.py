"""Work counters maintained by every stream-processing algorithm.

The paper's primary metric is the response time per stream event, but its
optimality claim (claim (i) of the abstract) is about the *number of queries
whose score is computed per event*.  The counters below track both, plus the
lower-level quantities (iterations, postings touched, bound evaluations)
that the ablation benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EventCounters:
    """Cumulative work counters for one algorithm instance."""

    #: Stream events (document arrivals) processed.
    documents: int = 0
    #: Queries whose exact score was computed ("considered queries").
    full_evaluations: int = 0
    #: Pivot-search iterations executed (RIO/MRIO) or list scans (baselines).
    iterations: int = 0
    #: Posting entries touched while scanning or evaluating.
    postings_scanned: int = 0
    #: Upper-bound terms computed (global or zone maxima lookups).
    bound_computations: int = 0
    #: Result-heap insertions (a document entered some query's top-k).
    result_updates: int = 0
    #: Wall-clock seconds spent inside ``process_document``.
    elapsed_seconds: float = 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.documents = 0
        self.full_evaluations = 0
        self.iterations = 0
        self.postings_scanned = 0
        self.bound_computations = 0
        self.result_updates = 0
        self.elapsed_seconds = 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of the counters (used by reports)."""
        return {
            "documents": self.documents,
            "full_evaluations": self.full_evaluations,
            "iterations": self.iterations,
            "postings_scanned": self.postings_scanned,
            "bound_computations": self.bound_computations,
            "result_updates": self.result_updates,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def per_document(self) -> Dict[str, float]:
        """Counters averaged per processed document."""
        divisor = max(self.documents, 1)
        return {
            name: value / divisor
            for name, value in self.snapshot().items()
            if name != "documents"
        }

    def merge(self, other: "EventCounters") -> None:
        """Add ``other``'s counts into this instance."""
        self.documents += other.documents
        self.full_evaluations += other.full_evaluations
        self.iterations += other.iterations
        self.postings_scanned += other.postings_scanned
        self.bound_computations += other.bound_computations
        self.result_updates += other.result_updates
        self.elapsed_seconds += other.elapsed_seconds
