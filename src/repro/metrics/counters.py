"""Work counters maintained by every stream-processing algorithm.

The paper's primary metric is the response time per stream event, but its
optimality claim (claim (i) of the abstract) is about the *number of queries
whose score is computed per event*.  The counters below track both, plus the
lower-level quantities (iterations, postings touched, bound evaluations)
that the ablation benchmarks report.

Counters are *mergeable*: a sharded runtime keeps one instance per engine
shard and aggregates them losslessly with :meth:`EventCounters.merge` (or
``+=``).  Every field is a pure per-instance sum, so merging shard counters
reconstructs exactly the totals a single engine would have counted — except
``documents``, which each shard counts for every event it sees; a facade
aggregating shards must take the stream's event count from the routing
layer instead of summing it (see ``repro.runtime.sharded``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


@dataclass
class EventCounters:
    """Cumulative work counters for one algorithm instance."""

    #: Stream events (document arrivals) processed.
    documents: int = 0
    #: Queries whose exact score was computed ("considered queries").
    full_evaluations: int = 0
    #: Pivot-search iterations executed (RIO/MRIO) or list scans (baselines).
    iterations: int = 0
    #: Posting entries touched while scanning or evaluating.
    postings_scanned: int = 0
    #: Upper-bound terms computed (global or zone maxima lookups).
    bound_computations: int = 0
    #: Result-heap insertions (a document entered some query's top-k).
    result_updates: int = 0
    #: Wall-clock seconds spent inside ``process_document``.
    elapsed_seconds: float = 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.documents = 0
        self.full_evaluations = 0
        self.iterations = 0
        self.postings_scanned = 0
        self.bound_computations = 0
        self.result_updates = 0
        self.elapsed_seconds = 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of the counters.

        This dict is a **wire format**: the service layer returns it
        verbatim as the ``engine`` section of the ``stats`` op, and the
        durability sidecar embeds it, so its key set is a compatibility
        contract — exactly the seven keys below, every value a plain
        ``int``/``float`` that survives a JSON round-trip, and
        :meth:`restore` inverts it.  Adding a field to the dataclass means
        adding its key here, in :meth:`restore`, and in the service
        protocol docs (``docs/service.md``); removing or renaming one is a
        breaking protocol change.  Covered by
        ``tests/test_metrics.py::TestEventCounters::test_snapshot_wire_format``.
        """
        return {
            "documents": self.documents,
            "full_evaluations": self.full_evaluations,
            "iterations": self.iterations,
            "postings_scanned": self.postings_scanned,
            "bound_computations": self.bound_computations,
            "result_updates": self.result_updates,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def per_document(self) -> Dict[str, float]:
        """Counters averaged per processed document."""
        divisor = max(self.documents, 1)
        return {
            name: value / divisor
            for name, value in self.snapshot().items()
            if name != "documents"
        }

    def merge(self, other: "EventCounters") -> "EventCounters":
        """Add ``other``'s counts into this instance; returns ``self``.

        Merging is lossless: every field is a plain sum, so folding the
        counters of independent engine shards yields exactly the totals of
        the work they performed (``documents`` excepted — see the module
        docstring).
        """
        self.documents += other.documents
        self.full_evaluations += other.full_evaluations
        self.iterations += other.iterations
        self.postings_scanned += other.postings_scanned
        self.bound_computations += other.bound_computations
        self.result_updates += other.result_updates
        self.elapsed_seconds += other.elapsed_seconds
        return self

    def __iadd__(self, other: "EventCounters") -> "EventCounters":
        """``counters += other`` is an alias of :meth:`merge`."""
        return self.merge(other)

    def restore(self, state: Dict[str, float]) -> None:
        """Overwrite every counter from a :meth:`snapshot` dict."""
        self.documents = int(state["documents"])
        self.full_evaluations = int(state["full_evaluations"])
        self.iterations = int(state["iterations"])
        self.postings_scanned = int(state["postings_scanned"])
        self.bound_computations = int(state["bound_computations"])
        self.result_updates = int(state["result_updates"])
        self.elapsed_seconds = float(state["elapsed_seconds"])

    @classmethod
    def aggregate(cls, parts: Iterable["EventCounters"]) -> "EventCounters":
        """A fresh instance holding the sum of ``parts``."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total


@dataclass
class ServiceCounters:
    """Served-traffic counters maintained by the pub/sub serving layer.

    One instance per :class:`~repro.service.server.MonitorServer`; exposed
    verbatim as the ``service`` section of the ``stats`` op (the same
    wire-format contract as :meth:`EventCounters.snapshot`).  The engine's
    own work counters live in :class:`EventCounters`; these count the
    traffic *around* the engine: connections, operations, ingestion batches
    and the notification fan-out (including what the slow-consumer policy
    dropped or disconnected — see ``docs/service.md``).
    """

    #: Client connections accepted / closed (for any reason).
    subscribers_connected: int = 0
    subscribers_disconnected: int = 0
    #: Query-lifecycle operations served.
    subscribes: int = 0
    attaches: int = 0
    unsubscribes: int = 0
    #: ``publish`` + ``publish_batch`` operations accepted.
    publishes: int = 0
    #: Documents ingested into the engine through the service.
    documents_ingested: int = 0
    #: ``process_batch`` calls the micro-batcher issued.
    batches_processed: int = 0
    #: Notifications put on some subscriber's queue.
    notifications_enqueued: int = 0
    #: Notifications actually written to a socket.
    notifications_sent: int = 0
    #: Notifications evicted by the ``drop`` slow-consumer policy.
    notifications_dropped: int = 0
    #: Sessions force-closed by the ``disconnect`` slow-consumer policy.
    slow_disconnects: int = 0
    #: Requests answered with an error reply.
    request_errors: int = 0
    #: ``metrics`` op calls plus ``GET /metrics`` exposition scrapes served.
    telemetry_scrapes: int = 0
    #: Standby promotions performed by a remote (cluster) executor.
    failovers: int = 0
    #: Worst per-shard journaled-minus-replicated LSN gap (cluster only).
    replication_lag_records: int = 0
    #: Per-shard replicated (standby-acked) LSN.  Keys are shard ids as
    #: strings so the snapshot survives a JSON round-trip unchanged.
    replica_applied_lsns: Dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter."""
        for name, value in self.snapshot().items():
            setattr(self, name, {} if isinstance(value, dict) else 0)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy (the ``service`` section of the ``stats`` op)."""
        return {
            "subscribers_connected": self.subscribers_connected,
            "subscribers_disconnected": self.subscribers_disconnected,
            "subscribes": self.subscribes,
            "attaches": self.attaches,
            "unsubscribes": self.unsubscribes,
            "publishes": self.publishes,
            "documents_ingested": self.documents_ingested,
            "batches_processed": self.batches_processed,
            "notifications_enqueued": self.notifications_enqueued,
            "notifications_sent": self.notifications_sent,
            "notifications_dropped": self.notifications_dropped,
            "slow_disconnects": self.slow_disconnects,
            "request_errors": self.request_errors,
            "telemetry_scrapes": self.telemetry_scrapes,
            "failovers": self.failovers,
            "replication_lag_records": self.replication_lag_records,
            "replica_applied_lsns": dict(self.replica_applied_lsns),
        }

    def adopt_replication(self, summary: Optional[Dict[str, object]]) -> None:
        """Overwrite the cluster fields from a replication summary.

        ``summary`` is the dict a remote executor's ``replication_summary``
        property reports (``None`` — any non-cluster monitor — leaves the
        fields at their zero state); the lag reported is the worst shard's.
        """
        if not summary:
            return
        self.failovers = int(summary.get("failovers", 0))  # type: ignore[arg-type]
        lags: Dict[object, int] = summary.get("replication_lag_records") or {}  # type: ignore[assignment]
        self.replication_lag_records = max(lags.values(), default=0)
        applied: Dict[object, int] = summary.get("applied_lsn") or {}  # type: ignore[assignment]
        self.replica_applied_lsns = {
            str(shard_id): int(lsn) for shard_id, lsn in applied.items()
        }
