"""Packed, interned store of registered query definitions.

The paper's motivating regime is *millions* of registered continuous
queries.  Holding one Python ``dict`` vector plus one boxed
:class:`~repro.queries.query.Query` object per query costs several hundred
bytes each before any index structure exists, which caps a single process
far below the paper's scale.  This module packs every registered query into
flat columns instead:

* an **interned term vocabulary**: every distinct term id is assigned a
  dense ``tid`` once, stable for the lifetime of the store (the packed
  per-query spans reference tids, so vectors sharing terms share vocabulary
  entries);
* per-slot columns — packed int64 query ids, int32 ``k``, span offsets and
  a float64 threshold column mirroring the last propagated ``S_k``;
* one contiguous **term/weight heap** holding every query's ``(tid,
  weight)`` span *in original vector order* (the iteration order of a
  query's vector is load-bearing: the canonical summation contract and the
  persistence codec both preserve it);
* a **free-list** of slots: unregistration frees the slot for the next
  registration, so slot-table width is bounded by the peak live count, and
  the heap spans of dead slots are tombstoned and rebuilt amortizedly —
  the same discipline the columnar index applies to its slot table.

No ``Query`` object is retained: registration copies the definition into
the columns and drops the object; readers *materialize* transient
:class:`Query` objects (via :meth:`Query.trusted`, skipping re-validation
of vectors that were validated when first registered) only on cold paths.

:class:`RegisteredQueries` is a read-only :class:`~collections.abc.Mapping`
facade (``query id -> materialized Query``) that keeps the historical
``algorithm.queries`` dict surface working unchanged, and :class:`SlotMap`
is the dense-first ``query id -> slot`` map shared with the columnar index.
"""

from __future__ import annotations

from array import array
from collections.abc import Mapping as _MappingABC
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import DuplicateQueryError, UnknownQueryError
from repro.queries.query import Query
from repro.types import QueryId, TermId

#: Rebuild the packed term/weight heap once at least this many entries are
#: dead *and* dead entries outnumber live ones (mirrors the columnar
#: tombstone thresholds so churn storms cannot leak heap memory while tiny
#: stores never thrash).
HEAP_COMPACT_MIN_DEAD = 1024
HEAP_COMPACT_DEAD_FRACTION = 0.5

_ID_TYPECODE = "q"  # packed signed 64-bit
_TID_TYPECODE = "l" if array("l").itemsize == 4 else "i"  # 32-bit dense tids
_K_TYPECODE = _TID_TYPECODE
_WEIGHT_TYPECODE = "d"  # float64 — weights must round-trip bit-exactly


class SlotMap:
    """``query id -> slot`` map, direct-addressed while ids stay dense.

    The registry assigns dense small integers, so the common case is an
    int64 array indexed by query id (8 bytes per query, no per-entry dict
    overhead).  Ids too large for the dense region — beyond
    ``max(1024, 8 * (live + 1))`` — fall back to a sparse dict, so a stray
    huge id cannot balloon the array.
    """

    __slots__ = ("_dense", "_sparse", "_live")

    _DENSE_FLOOR = 1024

    def __init__(self) -> None:
        self._dense: array = array(_ID_TYPECODE)
        self._sparse: Dict[QueryId, int] = {}
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __contains__(self, query_id: QueryId) -> bool:
        return self.get(query_id) is not None

    def get(self, query_id: QueryId) -> Optional[int]:
        if 0 <= query_id < len(self._dense):
            slot = self._dense[query_id]
            return slot if slot >= 0 else None
        return self._sparse.get(query_id)

    def set(self, query_id: QueryId, slot: int) -> None:
        dense = self._dense
        if 0 <= query_id < len(dense):
            if dense[query_id] < 0:
                self._live += 1
            dense[query_id] = slot
            return
        if 0 <= query_id < max(self._DENSE_FLOOR, 8 * (self._live + 1)):
            grow_to = max(query_id + 1, 2 * len(dense))
            dense.extend([-1] * (grow_to - len(dense)))
            if self._sparse:
                # The dense region now covers ids that lived in the sparse
                # fallback; migrate them or lookups would see the -1 shadow.
                for covered in [q for q in self._sparse if 0 <= q < grow_to]:
                    dense[covered] = self._sparse.pop(covered)
            if dense[query_id] < 0:
                self._live += 1
            dense[query_id] = slot
        else:
            if query_id not in self._sparse:
                self._live += 1
            self._sparse[query_id] = slot

    def pop(self, query_id: QueryId) -> Optional[int]:
        if 0 <= query_id < len(self._dense):
            slot = self._dense[query_id]
            if slot < 0:
                return None
            self._dense[query_id] = -1
            self._live -= 1
            return slot
        slot = self._sparse.pop(query_id, None)
        if slot is not None:
            self._live -= 1
        return slot

    def clear(self) -> None:
        self._dense = array(_ID_TYPECODE)
        self._sparse.clear()
        self._live = 0

    def nbytes(self) -> int:
        """Approximate resident size of the map's payload."""
        return len(self._dense) * self._dense.itemsize + 64 * len(self._sparse)


class QueryStore:
    """Columnar single source of truth for registered query definitions.

    Example::

        store = QueryStore()
        slot = store.register(query)
        store.vector_of(query.query_id)   # dict in original vector order
        store.unregister(query.query_id)  # frees the slot for reuse
    """

    __slots__ = (
        "_tid_of_term",
        "_term_of_tid",
        "_slot_qids",
        "_slot_ks",
        "_slot_starts",
        "_slot_lengths",
        "_slot_thresholds",
        "_heap_terms",
        "_heap_weights",
        "_heap_dead",
        "_free_slots",
        "_slot_map",
        "_users",
    )

    def __init__(self) -> None:
        # Interned vocabulary: term id <-> dense tid.  A tid, once assigned,
        # is stable for the lifetime of the store (interning stability).
        self._tid_of_term: Dict[TermId, int] = {}
        self._term_of_tid: array = array(_ID_TYPECODE)
        # Per-slot columns.  A freed slot holds qid -1 until reused.
        self._slot_qids: array = array(_ID_TYPECODE)
        self._slot_ks: array = array(_K_TYPECODE)
        self._slot_starts: array = array(_ID_TYPECODE)
        self._slot_lengths: array = array(_K_TYPECODE)
        self._slot_thresholds: array = array(_WEIGHT_TYPECODE)
        # Contiguous (tid, weight) spans, one per live slot, vector order.
        self._heap_terms: array = array(_TID_TYPECODE)
        self._heap_weights: array = array(_WEIGHT_TYPECODE)
        self._heap_dead = 0
        self._free_slots: List[int] = []
        self._slot_map = SlotMap()
        # Sparse side table: only queries with a non-None user label.
        self._users: Dict[QueryId, str] = {}

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._slot_map)

    def __contains__(self, query_id: QueryId) -> bool:
        return self._slot_map.get(query_id) is not None

    def slot_of(self, query_id: QueryId) -> int:
        slot = self._slot_map.get(query_id)
        if slot is None:
            raise UnknownQueryError(f"query {query_id} is not registered")
        return slot

    def query_ids(self) -> Iterator[QueryId]:
        """Live query ids in ascending slot order (deterministic for a
        given operation history, independent of id magnitudes)."""
        qids = self._slot_qids
        for slot in range(len(qids)):
            qid = qids[slot]
            if qid >= 0:
                yield qid

    # ------------------------------------------------------------------ #
    # Registration / unregistration
    # ------------------------------------------------------------------ #

    def intern(self, term_id: TermId) -> int:
        """The dense tid of ``term_id``, assigned on first use."""
        tid = self._tid_of_term.get(term_id)
        if tid is None:
            tid = len(self._term_of_tid)
            self._tid_of_term[term_id] = tid
            self._term_of_tid.append(term_id)
        return tid

    def register(self, query: Query) -> int:
        """Pack ``query`` into the columns; returns the slot it occupies.

        The ``Query`` object itself is *not* retained.  The vector's
        iteration order is preserved in the packed span.
        """
        query_id = query.query_id
        if self._slot_map.get(query_id) is not None:
            raise DuplicateQueryError(f"query {query_id} is already registered")
        heap_terms = self._heap_terms
        heap_weights = self._heap_weights
        start = len(heap_terms)
        tid_of = self._tid_of_term
        for term_id, weight in query.vector.items():
            tid = tid_of.get(term_id)
            if tid is None:
                tid = len(self._term_of_tid)
                tid_of[term_id] = tid
                self._term_of_tid.append(term_id)
            heap_terms.append(tid)
            heap_weights.append(weight)
        length = len(heap_terms) - start
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slot_qids[slot] = query_id
            self._slot_ks[slot] = query.k
            self._slot_starts[slot] = start
            self._slot_lengths[slot] = length
            self._slot_thresholds[slot] = 0.0
        else:
            slot = len(self._slot_qids)
            self._slot_qids.append(query_id)
            self._slot_ks.append(query.k)
            self._slot_starts.append(start)
            self._slot_lengths.append(length)
            self._slot_thresholds.append(0.0)
        self._slot_map.set(query_id, slot)
        if query.user is not None:
            self._users[query_id] = query.user
        return slot

    def unregister(self, query_id: QueryId) -> None:
        """Free the query's slot (reused by the next registration) and
        tombstone its heap span (compacted amortizedly)."""
        slot = self._slot_map.pop(query_id)
        if slot is None:
            raise UnknownQueryError(f"query {query_id} is not registered")
        self._slot_qids[slot] = -1
        self._heap_dead += self._slot_lengths[slot]
        self._free_slots.append(slot)
        self._users.pop(query_id, None)
        if (
            self._heap_dead >= HEAP_COMPACT_MIN_DEAD
            and self._heap_dead
            > (len(self._heap_terms) - self._heap_dead) * HEAP_COMPACT_DEAD_FRACTION
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Rewrite the term/weight heap keeping only live spans.

        Slot identities are untouched (only span offsets move), so nothing
        outside the store needs to know a compaction happened.
        """
        old_terms = self._heap_terms
        old_weights = self._heap_weights
        new_terms: array = array(_TID_TYPECODE)
        new_weights: array = array(_WEIGHT_TYPECODE)
        qids = self._slot_qids
        starts = self._slot_starts
        lengths = self._slot_lengths
        for slot in range(len(qids)):
            if qids[slot] < 0:
                continue
            start = starts[slot]
            end = start + lengths[slot]
            starts[slot] = len(new_terms)
            new_terms.extend(old_terms[start:end])
            new_weights.extend(old_weights[start:end])
        self._heap_terms = new_terms
        self._heap_weights = new_weights
        self._heap_dead = 0

    # ------------------------------------------------------------------ #
    # Definition access
    # ------------------------------------------------------------------ #

    def k_of(self, query_id: QueryId) -> int:
        return self._slot_ks[self.slot_of(query_id)]

    def user_of(self, query_id: QueryId) -> Optional[str]:
        return self._users.get(query_id)

    def num_terms_of(self, query_id: QueryId) -> int:
        return self._slot_lengths[self.slot_of(query_id)]

    def items_of(self, query_id: QueryId) -> List[Tuple[TermId, float]]:
        """``(term id, weight)`` pairs in original vector order."""
        slot = self.slot_of(query_id)
        start = self._slot_starts[slot]
        end = start + self._slot_lengths[slot]
        term_of = self._term_of_tid
        terms = self._heap_terms
        weights = self._heap_weights
        return [(term_of[terms[pos]], weights[pos]) for pos in range(start, end)]

    def vector_of(self, query_id: QueryId) -> Dict[TermId, float]:
        """The query's sparse vector as a fresh dict, original order."""
        slot = self.slot_of(query_id)
        start = self._slot_starts[slot]
        end = start + self._slot_lengths[slot]
        term_of = self._term_of_tid
        terms = self._heap_terms
        weights = self._heap_weights
        return {term_of[terms[pos]]: weights[pos] for pos in range(start, end)}

    def weight_of(self, query_id: QueryId, term_id: TermId) -> float:
        """Preference weight of ``term_id`` (0 when the query lacks it)."""
        tid = self._tid_of_term.get(term_id)
        if tid is None:
            return 0.0
        slot = self.slot_of(query_id)
        start = self._slot_starts[slot]
        terms = self._heap_terms
        for pos in range(start, start + self._slot_lengths[slot]):
            if terms[pos] == tid:
                return self._heap_weights[pos]
        return 0.0

    def materialize(self, query_id: QueryId) -> Query:
        """A transient :class:`Query` built from the packed definition.

        Uses :meth:`Query.trusted`: the vector was validated when first
        registered, so re-validating (and re-walking) it here would be
        wasted work on every access.
        """
        return Query.trusted(
            query_id=query_id,
            vector=self.vector_of(query_id),
            k=self._slot_ks[self.slot_of(query_id)],
            user=self._users.get(query_id),
        )

    def materialize_or_none(self, query_id: QueryId) -> Optional[Query]:
        """:meth:`materialize`, but ``None`` instead of raising."""
        if self._slot_map.get(query_id) is None:
            return None
        return self.materialize(query_id)

    # ------------------------------------------------------------------ #
    # Threshold column
    # ------------------------------------------------------------------ #

    def set_threshold(self, query_id: QueryId, threshold: float) -> None:
        """Mirror the last propagated ``S_k`` into the packed column."""
        self._slot_thresholds[self.slot_of(query_id)] = threshold

    def threshold_of(self, query_id: QueryId) -> float:
        return self._slot_thresholds[self.slot_of(query_id)]

    def scale_thresholds(self, factor: float) -> None:
        """Divide every live threshold by ``factor`` (decay rebase)."""
        thresholds = self._slot_thresholds
        qids = self._slot_qids
        for slot in range(len(qids)):
            if qids[slot] >= 0:
                thresholds[slot] /= factor

    def refresh_thresholds(self, threshold_of) -> None:
        """Reload every live threshold via ``threshold_of(query_id)``."""
        qids = self._slot_qids
        thresholds = self._slot_thresholds
        for slot in range(len(qids)):
            qid = qids[slot]
            if qid >= 0:
                thresholds[slot] = threshold_of(qid)

    # ------------------------------------------------------------------ #
    # Introspection (benchmarks, property tests)
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """Slot-table width (bounded by the peak live count)."""
        return len(self._slot_qids)

    @property
    def free_slot_count(self) -> int:
        return len(self._free_slots)

    @property
    def heap_size(self) -> int:
        return len(self._heap_terms)

    @property
    def heap_dead(self) -> int:
        return self._heap_dead

    @property
    def vocabulary_size(self) -> int:
        return len(self._term_of_tid)

    def nbytes(self) -> int:
        """Approximate resident payload of the packed columns.

        Counts the array buffers plus a nominal per-entry cost for the two
        side dicts (vocabulary and sparse slots); used by the scale bench to
        report bytes/query from the store's own accounting next to RSS.
        """
        arrays = (
            self._term_of_tid,
            self._slot_qids,
            self._slot_ks,
            self._slot_starts,
            self._slot_lengths,
            self._slot_thresholds,
            self._heap_terms,
            self._heap_weights,
        )
        total = sum(len(column) * column.itemsize for column in arrays)
        total += 64 * (len(self._tid_of_term) + len(self._users))
        total += 8 * len(self._free_slots)
        total += self._slot_map.nbytes()
        return total


class RegisteredQueries(_MappingABC):
    """Read-only dict-like facade over a :class:`QueryStore`.

    Keeps the historical ``algorithm.queries`` surface — ``in``, ``len``,
    ``[query_id]``, ``.get``, ``.values()``, ``dict(...)``, ``==`` against
    plain dicts — while the definitions live packed in the store.  Lookups
    materialize transient :class:`Query` objects; nothing is cached, so the
    facade adds no per-query memory.
    """

    __slots__ = ("_store",)

    def __init__(self, store: QueryStore) -> None:
        self._store = store

    def __getitem__(self, query_id: QueryId) -> Query:
        try:
            return self._store.materialize(query_id)
        except UnknownQueryError:
            raise KeyError(query_id) from None

    def get(self, query_id: QueryId, default: Optional[Query] = None) -> Optional[Query]:
        if self._store.__contains__(query_id):
            return self._store.materialize(query_id)
        return default

    def __contains__(self, query_id: object) -> bool:
        return isinstance(query_id, int) and query_id in self._store

    def __iter__(self) -> Iterator[QueryId]:
        return self._store.query_ids()

    def __len__(self) -> int:
        return len(self._store)

    def values(self):
        store = self._store
        return [store.materialize(query_id) for query_id in store.query_ids()]

    def items(self):
        store = self._store
        return [
            (query_id, store.materialize(query_id)) for query_id in store.query_ids()
        ]

    def keys(self):
        return list(self._store.query_ids())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, _MappingABC)):
            if len(other) != len(self._store):
                return False
            store = self._store
            for query_id, query in other.items():
                if query_id not in store or store.materialize(query_id) != query:
                    return False
            return True
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"RegisteredQueries({len(self._store)} queries)"
