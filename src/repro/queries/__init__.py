"""Continuous-query model and the synthetic query workload generators."""

from repro.queries.query import Query
from repro.queries.store import QueryStore, RegisteredQueries, SlotMap
from repro.queries.workloads import (
    WorkloadConfig,
    UniformWorkload,
    ConnectedWorkload,
    generate_workload,
)
from repro.queries.cooccurrence import CooccurrenceGraph

__all__ = [
    "Query",
    "QueryStore",
    "RegisteredQueries",
    "SlotMap",
    "WorkloadConfig",
    "UniformWorkload",
    "ConnectedWorkload",
    "generate_workload",
    "CooccurrenceGraph",
]
