"""Term co-occurrence graph built from a document sample.

The Connected query workload needs groups of terms that actually co-occur in
documents.  Besides the topic pools the synthetic corpus exposes directly,
this module offers a data-driven alternative: build a co-occurrence graph
from a sample of generated documents and draw query terms from the
neighbourhood of a seed term.  The graph is also useful for corpus
diagnostics (e.g. verifying that the Connected/Uniform workloads really
differ in co-occurrence frequency, which a dedicated test does).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Sequence

import networkx as nx

from repro.documents.document import Document
from repro.types import TermId
from repro.utils.rng import SeedLike, make_rng


class CooccurrenceGraph:
    """Weighted term co-occurrence graph.

    Nodes are term ids; an edge ``(a, b)`` with weight ``w`` means the two
    terms appeared together in ``w`` sampled documents.
    """

    def __init__(self, max_terms_per_doc: int = 60) -> None:
        # Very long documents would contribute O(n^2) edges; we only use the
        # highest-weighted terms of each document, which carry the topical
        # signal anyway.
        self.max_terms_per_doc = max_terms_per_doc
        self.graph = nx.Graph()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_document(self, document: Document) -> None:
        """Register the co-occurrences of one document."""
        terms = sorted(
            document.vector.items(), key=lambda item: item[1], reverse=True
        )[: self.max_terms_per_doc]
        term_ids = [term_id for term_id, _ in terms]
        for term_id in term_ids:
            if not self.graph.has_node(term_id):
                self.graph.add_node(term_id, count=0)
            self.graph.nodes[term_id]["count"] += 1
        for a, b in combinations(term_ids, 2):
            if self.graph.has_edge(a, b):
                self.graph[a][b]["weight"] += 1
            else:
                self.graph.add_edge(a, b, weight=1)

    @classmethod
    def from_documents(
        cls, documents: Iterable[Document], max_terms_per_doc: int = 60
    ) -> "CooccurrenceGraph":
        graph = cls(max_terms_per_doc=max_terms_per_doc)
        for document in documents:
            graph.add_document(document)
        return graph

    # ------------------------------------------------------------------ #
    # Queries over the graph
    # ------------------------------------------------------------------ #

    @property
    def num_terms(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def cooccurrence_count(self, a: TermId, b: TermId) -> int:
        """Number of sampled documents containing both ``a`` and ``b``."""
        if self.graph.has_edge(a, b):
            return int(self.graph[a][b]["weight"])
        return 0

    def neighbours(self, term_id: TermId, limit: Optional[int] = None) -> List[TermId]:
        """Terms co-occurring with ``term_id``, strongest first."""
        if not self.graph.has_node(term_id):
            return []
        ranked = sorted(
            self.graph[term_id].items(),
            key=lambda item: item[1]["weight"],
            reverse=True,
        )
        result = [neighbour for neighbour, _ in ranked]
        return result[:limit] if limit is not None else result

    def frequent_terms(self, limit: int) -> List[TermId]:
        """The ``limit`` terms appearing in the most sampled documents."""
        ranked = sorted(
            self.graph.nodes(data="count"), key=lambda item: item[1], reverse=True
        )
        return [term_id for term_id, _ in ranked[:limit]]

    def sample_connected_terms(
        self, count: int, seed: SeedLike = None
    ) -> List[TermId]:
        """Sample ``count`` terms forming a connected co-occurrence group.

        A seed term is drawn proportionally to its document count; remaining
        terms come from the neighbourhood of the already selected ones
        (breadth-first, strongest edges first), falling back to frequent
        terms when the neighbourhood is exhausted.
        """
        rng = make_rng(seed)
        if self.num_terms == 0:
            return []
        nodes = list(self.graph.nodes())
        counts = [self.graph.nodes[n].get("count", 1) for n in nodes]
        total = float(sum(counts))
        probs = [c / total for c in counts]
        seed_term = int(rng.choice(nodes, p=probs))
        selected: List[TermId] = [seed_term]
        selected_set = {seed_term}
        frontier = self.neighbours(seed_term)
        while len(selected) < count and frontier:
            candidate = frontier.pop(0)
            if candidate in selected_set:
                continue
            selected.append(candidate)
            selected_set.add(candidate)
            frontier.extend(
                n for n in self.neighbours(candidate, limit=10) if n not in selected_set
            )
        if len(selected) < count:
            for fallback in self.frequent_terms(count * 4):
                if fallback not in selected_set:
                    selected.append(fallback)
                    selected_set.add(fallback)
                    if len(selected) == count:
                        break
        return selected[:count]

    def average_pair_cooccurrence(self, term_ids: Sequence[TermId]) -> float:
        """Mean co-occurrence count over all pairs of ``term_ids``.

        Diagnostic used by tests to verify Connected queries co-occur far
        more often than Uniform ones.
        """
        pairs = list(combinations(term_ids, 2))
        if not pairs:
            return 0.0
        return sum(self.cooccurrence_count(a, b) for a, b in pairs) / len(pairs)
