"""Synthetic query workload generators: Uniform and Connected.

The paper's evaluation uses two synthetic query workloads built over the
Wikipedia dictionary, "exhibiting different word co-occurrence frequencies":

* **Uniform** — the keywords of a query are drawn independently from the
  corpus term distribution, so they rarely co-occur inside a single
  document;
* **Connected** — the keywords of a query are drawn from terms that do
  co-occur (here: from one topic pool of the synthetic corpus, or from a
  co-occurrence-graph neighbourhood), so many documents match several of a
  query's keywords at once.

Connected workloads make documents score highly against many queries, which
stresses the result-update path; Uniform workloads stress the pruning power
of the bounds.  Both generators assign every query a random preference-weight
profile and L2-normalize it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.documents.corpus import SyntheticCorpus
from repro.exceptions import ConfigurationError
from repro.queries.cooccurrence import CooccurrenceGraph
from repro.queries.query import Query
from repro.text.similarity import l2_normalize
from repro.types import SparseVector, TermId
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require, require_positive


@dataclass
class WorkloadConfig:
    """Shared configuration of the query workload generators.

    Attributes
    ----------
    min_terms / max_terms:
        Bounds on the number of keywords per query (the paper's queries
        "typically comprise just a few terms").
    k:
        The top-k size requested by every generated query.  A per-query
        random k can be enabled with ``randomize_k``.
    randomize_k:
        When true, k is drawn uniformly from ``[1, k]`` per query.
    weight_low / weight_high:
        Raw keyword preference weights are drawn uniformly from this range
        before normalization.
    frequency_bias:
        How strongly the Uniform workload's keyword sampling follows the
        corpus term-frequency distribution.  ``0`` samples keywords uniformly
        from the dictionary (the literal reading of "Uniform": keywords
        rarely co-occur with each other or with any given document), ``1``
        follows the corpus Zipf distribution exactly; intermediate values
        interpolate by exponentiating the term probabilities.
    """

    min_terms: int = 2
    max_terms: int = 5
    k: int = 10
    randomize_k: bool = False
    weight_low: float = 0.5
    weight_high: float = 1.0
    frequency_bias: float = 0.3
    seed: Optional[int] = 13

    def __post_init__(self) -> None:
        require_positive(self.min_terms, "min_terms")
        require(self.max_terms >= self.min_terms, "max_terms must be >= min_terms")
        require_positive(self.k, "k")
        require_positive(self.weight_low, "weight_low")
        require(
            self.weight_high >= self.weight_low,
            "weight_high must be >= weight_low",
        )
        require(
            0.0 <= self.frequency_bias <= 1.0,
            "frequency_bias must be in [0, 1]",
        )


class _WorkloadBase:
    """Shared machinery: term weighting, k selection, id assignment."""

    def __init__(self, config: Optional[WorkloadConfig] = None, seed: SeedLike = None):
        self.config = config or WorkloadConfig()
        self._rng = make_rng(self.config.seed if seed is None else seed)
        self._next_query_id = 0

    # -- hooks ---------------------------------------------------------- #

    def _sample_terms(self, count: int) -> List[TermId]:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------- #

    def _sample_query_length(self) -> int:
        cfg = self.config
        return int(self._rng.integers(cfg.min_terms, cfg.max_terms + 1))

    def _sample_k(self) -> int:
        if self.config.randomize_k:
            return int(self._rng.integers(1, self.config.k + 1))
        return self.config.k

    def _build_vector(self, term_ids: Sequence[TermId]) -> SparseVector:
        cfg = self.config
        weights = self._rng.uniform(cfg.weight_low, cfg.weight_high, size=len(term_ids))
        raw: Dict[int, float] = {}
        for term_id, weight in zip(term_ids, weights):
            raw[int(term_id)] = raw.get(int(term_id), 0.0) + float(weight)
        return l2_normalize(raw)

    # -- public API ------------------------------------------------------ #

    def generate_query(self) -> Query:
        """Generate a single query with a fresh identifier."""
        length = self._sample_query_length()
        term_ids = self._sample_terms(length)
        if not term_ids:
            raise ConfigurationError("workload produced a query with no terms")
        vector = self._build_vector(term_ids)
        query = Query(query_id=self._next_query_id, vector=vector, k=self._sample_k())
        self._next_query_id += 1
        return query

    def generate(self, count: int) -> List[Query]:
        """Generate ``count`` queries with consecutive identifiers."""
        return [self.generate_query() for _ in range(count)]

    def reset(self) -> None:
        """Restart query-id numbering (the RNG state is left untouched)."""
        self._next_query_id = 0


class UniformWorkload(_WorkloadBase):
    """Keywords drawn independently from the dictionary.

    The sampling distribution interpolates between "uniform over the
    dictionary" and "corpus term frequency" through
    ``WorkloadConfig.frequency_bias`` (see there).  Independent draws mean
    the keywords of a query rarely co-occur in one document — the defining
    property of the paper's Uniform workload.
    """

    def __init__(
        self,
        corpus: SyntheticCorpus,
        config: Optional[WorkloadConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(config, seed)
        probs = corpus.term_probabilities
        bias = self.config.frequency_bias
        if bias <= 0.0:
            probs = np.full_like(probs, 1.0 / len(probs))
        elif bias < 1.0:
            probs = probs**bias
            probs = probs / probs.sum()
        self._probs = probs
        self._cdf = np.cumsum(self._probs)
        self._cdf[-1] = 1.0
        self._vocab_size = len(self._probs)

    def _sample_terms(self, count: int) -> List[TermId]:
        selected: List[TermId] = []
        seen: set[int] = set()
        attempts = 0
        while len(selected) < count and attempts < 50 * count:
            u = self._rng.random()
            term = int(np.searchsorted(self._cdf, u, side="left"))
            attempts += 1
            if term not in seen:
                seen.add(term)
                selected.append(term)
        while len(selected) < count:
            term = int(self._rng.integers(0, self._vocab_size))
            if term not in seen:
                seen.add(term)
                selected.append(term)
        return selected


class ConnectedWorkload(_WorkloadBase):
    """Keywords drawn from co-occurring term groups.

    Two sources of "connectedness" are supported:

    * the topic pools of the synthetic corpus (default, cheap), and
    * a data-driven :class:`CooccurrenceGraph` built from sample documents
      (pass ``graph=...``), which mimics building the workload from the
      corpus itself as the paper did for Wikipedia.
    """

    def __init__(
        self,
        corpus: SyntheticCorpus,
        config: Optional[WorkloadConfig] = None,
        seed: SeedLike = None,
        graph: Optional[CooccurrenceGraph] = None,
    ) -> None:
        super().__init__(config, seed)
        self._corpus = corpus
        self._graph = graph

    def _sample_terms(self, count: int) -> List[TermId]:
        if self._graph is not None and self._graph.num_terms > 0:
            seed = int(self._rng.integers(0, 2**31 - 1))
            terms = self._graph.sample_connected_terms(count, seed=seed)
            if len(terms) >= count:
                return terms[:count]
        topic = int(self._rng.integers(0, self._corpus.num_topics))
        pool = self._corpus.topic_term_ids(topic)
        if count >= len(pool):
            return list(pool[:count])
        chosen = self._rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in chosen]


def generate_workload(
    name: str,
    corpus: SyntheticCorpus,
    count: int,
    config: Optional[WorkloadConfig] = None,
    seed: SeedLike = None,
    graph: Optional[CooccurrenceGraph] = None,
) -> List[Query]:
    """Convenience factory: generate ``count`` queries of workload ``name``.

    ``name`` is ``"uniform"`` or ``"connected"`` (case-insensitive).
    """
    lowered = name.lower()
    if lowered == "uniform":
        workload: _WorkloadBase = UniformWorkload(corpus, config=config, seed=seed)
    elif lowered == "connected":
        workload = ConnectedWorkload(corpus, config=config, seed=seed, graph=graph)
    else:
        raise ConfigurationError(
            f"unknown workload {name!r}; expected 'uniform' or 'connected'"
        )
    return workload.generate(count)
