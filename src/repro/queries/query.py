"""The continuous top-k query (CTQD) model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import QueryError
from repro.text.similarity import is_normalized
from repro.types import QueryId, SparseVector


@dataclass(frozen=True)
class Query:
    """A continuous top-k query over the document stream.

    Attributes
    ----------
    query_id:
        Unique identifier.  The RIO/MRIO query index orders posting lists by
        this identifier, so identifiers should be dense small integers for
        best performance (the registry assigns them that way).
    vector:
        L2-normalized sparse keyword vector (term id -> preference weight).
    k:
        Number of documents the user wants to monitor.
    user:
        Optional opaque label of the issuing user (examples only).
    """

    query_id: QueryId
    vector: SparseVector
    k: int
    user: Optional[str] = None

    def __post_init__(self) -> None:
        if self.query_id < 0:
            raise QueryError(f"query_id must be >= 0, got {self.query_id}")
        if self.k <= 0:
            raise QueryError(f"k must be > 0, got {self.k}")
        if not self.vector:
            raise QueryError(f"query {self.query_id} has an empty keyword vector")
        for term_id, weight in self.vector.items():
            if weight <= 0.0:
                raise QueryError(
                    f"query {self.query_id} has non-positive weight {weight!r} "
                    f"for term {term_id}"
                )
        if not is_normalized(self.vector, tolerance=1e-6):
            raise QueryError(f"query {self.query_id} vector is not L2-normalized")

    @classmethod
    def trusted(
        cls,
        query_id: QueryId,
        vector: SparseVector,
        k: int,
        user: Optional[str] = None,
    ) -> "Query":
        """Construct a query *without* re-running ``__post_init__``.

        For vectors that are already canonical — decoded by the CRC-framed
        persistence codec or materialized from the packed
        :class:`~repro.queries.store.QueryStore` — the weights were
        validated and L2-normalized when the query was first registered.
        Re-walking the vector on every decode made rebalance adoption
        O(|vector|) per query in pure overhead; this constructor skips it.
        The caller vouches for canonicality.
        """
        query = object.__new__(cls)
        query.__dict__["query_id"] = query_id
        query.__dict__["vector"] = vector
        query.__dict__["k"] = k
        query.__dict__["user"] = user
        return query

    @property
    def num_terms(self) -> int:
        """Number of distinct keywords in the query."""
        return len(self.vector)

    def terms(self) -> list[int]:
        """The distinct term ids of the query."""
        return list(self.vector.keys())

    def weight(self, term_id: int) -> float:
        """Preference weight of ``term_id`` (0 if the query does not use it)."""
        return self.vector.get(term_id, 0.0)

    def with_id(self, query_id: QueryId) -> "Query":
        """Return a copy of this query carrying a different identifier."""
        return Query(query_id=query_id, vector=self.vector, k=self.k, user=self.user)
