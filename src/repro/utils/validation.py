"""Argument-validation helpers shared by public constructors.

The public API validates its inputs eagerly and raises
:class:`repro.exceptions.ConfigurationError` with a descriptive message, so
misconfigurations surface at construction time instead of deep inside a
stream-processing loop.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value`` to be strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value`` to be zero or positive."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``value`` to lie in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def require_type(value: Any, expected: type, name: str) -> None:
    """Require ``value`` to be an instance of ``expected``."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be a {expected.__name__}, got {type(value).__name__}"
        )
