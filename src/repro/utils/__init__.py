"""Small shared utilities: seeded RNG helpers, timers, validation, Zipf."""

from repro.utils.rng import make_rng
from repro.utils.timer import Stopwatch
from repro.utils.validation import (
    require,
    require_positive,
    require_probability,
    require_non_negative,
)
from repro.utils.zipf import ZipfSampler, zipf_weights

__all__ = [
    "make_rng",
    "Stopwatch",
    "require",
    "require_positive",
    "require_probability",
    "require_non_negative",
    "ZipfSampler",
    "zipf_weights",
]
