"""Wall-clock measurement helpers used by the engine and the bench harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional


class Stopwatch:
    """A simple start/stop stopwatch accumulating elapsed seconds.

    The stopwatch may be started and stopped repeatedly; ``elapsed`` is the
    sum of all completed intervals plus, if currently running, the time since
    the last start.  It can also be used as a context manager::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Stopwatch":
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed seconds."""
        if self._started_at is not None:
            self._accumulated += time.perf_counter() - self._started_at
            self._started_at = None
        return self._accumulated

    def reset(self) -> None:
        self._accumulated = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        if self._started_at is None:
            return self._accumulated
        return self._accumulated + (time.perf_counter() - self._started_at)

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class LapTimer:
    """Records a sequence of per-event durations (in seconds).

    Used by the engine to collect a response-time sample per stream event so
    the harness can later report means, medians and tail percentiles.
    """

    laps: List[float] = field(default_factory=list)
    _lap_started_at: Optional[float] = None

    def lap_start(self) -> None:
        self._lap_started_at = time.perf_counter()

    def lap_stop(self) -> float:
        if self._lap_started_at is None:
            raise RuntimeError("lap_stop() called without lap_start()")
        duration = time.perf_counter() - self._lap_started_at
        self._lap_started_at = None
        self.laps.append(duration)
        return duration

    def clear(self) -> None:
        self.laps.clear()
        self._lap_started_at = None

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def count(self) -> int:
        return len(self.laps)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.laps else 0.0
