"""Seeded random-number-generator helpers.

Every stochastic component of the library (corpus generator, workload
generators, stream simulator) accepts either an integer seed or an existing
:class:`numpy.random.Generator`.  Routing construction through
:func:`make_rng` keeps the behaviour deterministic and reproducible from a
single seed, which the test-suite and the benchmark harness rely on.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` for a
        deterministic one, or an existing generator which is returned
        unchanged (so sub-components can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from ``rng``.

    Independent child streams let parallel components (e.g. the corpus
    generator and the query workload generator) draw random numbers without
    perturbing each other's sequences, while still being fully determined by
    the parent seed.
    """
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: Optional[int], salt: int) -> Optional[int]:
    """Deterministically derive a new integer seed from ``seed`` and ``salt``."""
    if seed is None:
        return None
    return (seed * 1_000_003 + salt) % (2**63 - 1)
