"""Zipf-distribution helpers for the synthetic corpus and workloads.

Term frequencies in natural-language corpora (including the Wikipedia corpus
the paper streams) follow a Zipf-like law: the r-th most frequent term has
probability proportional to ``1 / r**s``.  The synthetic corpus generator and
the Uniform query workload both sample terms from such a distribution.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive


def zipf_weights(size: int, exponent: float = 1.0) -> np.ndarray:
    """Return the normalized Zipf probability vector of length ``size``.

    Parameters
    ----------
    size:
        Number of ranks (vocabulary size).
    exponent:
        The Zipf exponent ``s``; larger values concentrate more mass on the
        most frequent terms.  ``s = 0`` degenerates to the uniform
        distribution.
    """
    require_positive(size, "size")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


class ZipfSampler:
    """Samples term ranks from a bounded Zipf distribution.

    Unlike :func:`numpy.random.Generator.zipf`, the support is bounded by the
    vocabulary size and the exponent may be any non-negative float (including
    values below one, for which the unbounded Zipf distribution does not
    exist).
    """

    def __init__(self, size: int, exponent: float = 1.0, seed: SeedLike = None):
        self._rng = make_rng(seed)
        self._size = size
        self._weights = zipf_weights(size, exponent)
        # Pre-computing the CDF lets us sample with a single binary search.
        self._cdf = np.cumsum(self._weights)
        self._cdf[-1] = 1.0

    @property
    def size(self) -> int:
        return self._size

    @property
    def probabilities(self) -> np.ndarray:
        """The probability assigned to each rank (rank 0 is most frequent)."""
        return self._weights.copy()

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw ``count`` ranks in ``[0, size)`` (0 = most frequent)."""
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="left")

    def sample_one(self) -> int:
        return int(self.sample(1)[0])

    def sample_distinct(self, count: int, max_attempts: int = 64) -> np.ndarray:
        """Draw ``count`` *distinct* ranks.

        Rejection sampling is attempted first because it preserves the Zipf
        bias; if the requested count is close to the support size the method
        falls back to a weighted choice without replacement.
        """
        if count >= self._size:
            return np.arange(self._size)
        seen: list[int] = []
        seen_set: set[int] = set()
        for _ in range(max_attempts * count):
            rank = self.sample_one()
            if rank not in seen_set:
                seen_set.add(rank)
                seen.append(rank)
                if len(seen) == count:
                    return np.array(seen)
        remaining = count - len(seen)
        pool = np.setdiff1d(np.arange(self._size), np.array(seen, dtype=int))
        probs = self._weights[pool]
        probs = probs / probs.sum()
        extra = self._rng.choice(pool, size=remaining, replace=False, p=probs)
        return np.concatenate([np.array(seen, dtype=int), extra])
