"""repro — Continuous top-k monitoring on document streams.

A complete, pure-Python reproduction of

    U, Zhang, Mouratidis, Li:
    "Continuous Top-k Monitoring on Document Streams"
    (ICDE 2018 extended abstract / TKDE 2017 journal paper)

The package provides

* the paper's algorithms **RIO** and **MRIO** plus the published baselines
  (RTA, SortQuer, TPS) and an exhaustive oracle,
* every substrate they need: text analysis, a synthetic Wikipedia-like
  corpus and stream simulator, query workload generators, ID-ordered
  inverted files, a static top-k search engine, decay/renormalization and
  window expiration,
* a benchmark harness that regenerates the paper's evaluation figures.

Quickstart::

    from repro import ContinuousMonitor, MonitorConfig, SyntheticCorpus
    from repro.documents import DocumentStream
    from repro.queries import UniformWorkload

    corpus = SyntheticCorpus()
    monitor = ContinuousMonitor(MonitorConfig(algorithm="mrio"))
    monitor.register_queries(UniformWorkload(corpus).generate(1000))
    for document in DocumentStream(corpus).take(100):
        updates = monitor.process(document)

High-throughput ingestion uses the batch fast path instead::

    from repro.documents import BatchingStream

    for batch in BatchingStream(DocumentStream(corpus), max_batch=64):
        batch_updates = monitor.process_batch(batch)
"""

from repro.core.config import MonitorConfig
from repro.core.monitor import ContinuousMonitor
from repro.core.factory import available_algorithms, create_algorithm
from repro.core.results import BatchUpdate, ResultEntry, ResultUpdate, coalesce_updates
from repro.core.rio import RIOAlgorithm
from repro.core.mrio import MRIOAlgorithm
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.documents.stream import BatchingStream, DocumentStream, StreamConfig
from repro.queries.query import Query
from repro.queries.workloads import (
    ConnectedWorkload,
    UniformWorkload,
    WorkloadConfig,
    generate_workload,
)
from repro.persistence.durable import DurabilityConfig, DurableMonitor
from repro.persistence.recovery import RecoveryReport
from repro.runtime.sharded import ShardedMonitor
from repro.service import MonitorClient, MonitorServer, ServiceConfig
from repro.text.analyzer import Analyzer
from repro.text.vectorizer import Vectorizer, WeightingScheme
from repro.text.vocabulary import Vocabulary

#: Single-sourced package version: ``setup.py`` parses it from this file.
__version__ = "1.1.0"

__all__ = [
    "MonitorConfig",
    "ContinuousMonitor",
    "available_algorithms",
    "create_algorithm",
    "ResultEntry",
    "ResultUpdate",
    "BatchUpdate",
    "coalesce_updates",
    "RIOAlgorithm",
    "MRIOAlgorithm",
    "CorpusConfig",
    "SyntheticCorpus",
    "ExponentialDecay",
    "Document",
    "DocumentStream",
    "BatchingStream",
    "StreamConfig",
    "Query",
    "ShardedMonitor",
    "DurabilityConfig",
    "DurableMonitor",
    "RecoveryReport",
    "MonitorClient",
    "MonitorServer",
    "ServiceConfig",
    "ConnectedWorkload",
    "UniformWorkload",
    "WorkloadConfig",
    "generate_workload",
    "Analyzer",
    "Vectorizer",
    "WeightingScheme",
    "Vocabulary",
    "__version__",
]
