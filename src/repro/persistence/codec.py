"""Versioned, deterministic serialization of engine state and log records.

Everything the durability subsystem puts on disk goes through this module:
the write-ahead log (:mod:`repro.persistence.wal`), the checkpoint files
(:mod:`repro.persistence.checkpoint`) and the shard-rebalancing path of the
sharded runtime all speak the same encoded form, so there is exactly one
serialization of a query, a document, a result heap or a full engine
snapshot.

The physical format is CRC-framed JSON lines:

* one *record* is one line: an 8-hex-digit CRC-32 of the payload, a space,
  the payload as canonical JSON, a newline;
* canonical JSON means sorted keys, no whitespace, ``NaN``/``Infinity``
  rejected — encoding the same state twice yields identical bytes;
* floats survive exactly: :func:`json.dumps` emits ``repr(float)``, the
  shortest string that round-trips to the same IEEE-754 double, so a
  decoded snapshot restores scores, thresholds and decay origins
  bit-for-bit.

Sparse vectors are encoded as parallel term/weight arrays in the vector's
own iteration order (scoring accumulates in that order, and float addition
is not associative); result stores are encoded as query-id-sorted
``[query_id, state]`` pairs.  :data:`CODEC_VERSION` is embedded in every
snapshot and every WAL record envelope; decoding rejects versions it does
not understand instead of misreading them.
"""

from __future__ import annotations

import importlib
import json
import struct
import sys
import zlib
from array import array
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.results import BatchUpdate, ResultEntry, ResultUpdate
from repro.documents.document import Document
from repro.exceptions import CorruptRecordError, PersistenceError
from repro.queries.query import Query

#: Version stamped into snapshots and WAL record envelopes.
CODEC_VERSION = 1

#: WAL record kinds (the event types recovery knows how to replay).
KIND_DOCUMENT = "doc"
KIND_BATCH = "batch"
KIND_REGISTER = "register"
KIND_UNREGISTER = "unregister"
KIND_RENORMALIZE = "renorm"

RECORD_KINDS = (
    KIND_DOCUMENT,
    KIND_BATCH,
    KIND_REGISTER,
    KIND_UNREGISTER,
    KIND_RENORMALIZE,
)


# ---------------------------------------------------------------------- #
# Canonical JSON + CRC framing
# ---------------------------------------------------------------------- #


def canonical_dumps(obj: object) -> str:
    """Serialize to canonical JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def pack_line(obj: object) -> bytes:
    """Frame one object as a CRC-checked JSON line (the on-disk record unit)."""
    payload = canonical_dumps(obj).encode("utf-8")
    return b"%08x " % (zlib.crc32(payload) & 0xFFFFFFFF,) + payload + b"\n"


def unpack_line(line: bytes) -> object:
    """Parse and CRC-verify one framed line; raises :class:`CorruptRecordError`.

    A truncated, bit-flipped or garbage line raises — the WAL reader treats
    that as a torn tail when (and only when) it occurs at the end of the
    last segment.
    """
    if len(line) < 10 or line[8:9] != b" ":
        raise CorruptRecordError("malformed record framing")
    try:
        expected = int(line[:8], 16)
    except ValueError as exc:
        raise CorruptRecordError("malformed record CRC field") from exc
    payload = line[9:]
    if payload.endswith(b"\n"):
        payload = payload[:-1]
    else:
        # A record without its newline was cut mid-write.
        raise CorruptRecordError("record is missing its terminating newline")
    if zlib.crc32(payload) & 0xFFFFFFFF != expected:
        raise CorruptRecordError("record CRC mismatch")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptRecordError("record payload is not valid JSON") from exc


# ---------------------------------------------------------------------- #
# Vectors, documents, queries
# ---------------------------------------------------------------------- #


# Sparse vectors are encoded as two parallel flat arrays ("t": term ids,
# "w": weights) in the vector's own iteration order.  Flat arrays serialize
# measurably faster than nested pairs (the document encode is on the hot
# ingestion path), and preserving iteration order is load-bearing: scoring
# accumulates ``sum(w_q * w_d)`` in iteration order and float addition is
# not associative, so a reordered vector could score a future document one
# ulp away from the original.  Values must be plain ints/floats (the
# library's own vectors always are); exotic numeric types fail loudly in
# ``json.dumps``.


def _decode_vector(terms: Sequence[int], weights: Sequence[float]) -> Dict[int, float]:
    return {int(term): float(weight) for term, weight in zip(terms, weights)}


def encode_document(document: Document) -> Dict[str, object]:
    """One document as a JSON-able dict (text kept when present)."""
    encoded: Dict[str, object] = {
        "i": document.doc_id,
        "a": document.arrival_time,
        "t": list(document.vector.keys()),
        "w": list(document.vector.values()),
    }
    if document.text is not None:
        encoded["x"] = document.text
    return encoded


def decode_document(encoded: Dict[str, object]) -> Document:
    arrival = encoded["a"]
    return Document(
        doc_id=int(encoded["i"]),  # type: ignore[arg-type]
        vector=_decode_vector(encoded["t"], encoded["w"]),  # type: ignore[arg-type]
        arrival_time=None if arrival is None else float(arrival),  # type: ignore[arg-type]
        text=encoded.get("x"),  # type: ignore[arg-type]
    )


def encode_query(query: Query) -> Dict[str, object]:
    """One continuous query as a JSON-able dict."""
    encoded: Dict[str, object] = {
        "i": query.query_id,
        "k": query.k,
        "t": list(query.vector.keys()),
        "w": list(query.vector.values()),
    }
    if query.user is not None:
        encoded["u"] = query.user
    return encoded


def decode_query(encoded: Dict[str, object]) -> Query:
    # Trusted construction: every encoded query was validated and
    # normalized when first registered, so decoding skips re-validation
    # (a WAL replay or rebalance adoption would otherwise re-walk every
    # vector just to re-prove normalization).
    return Query.trusted(
        query_id=int(encoded["i"]),  # type: ignore[arg-type]
        vector=_decode_vector(encoded["t"], encoded["w"]),  # type: ignore[arg-type]
        k=int(encoded["k"]),  # type: ignore[arg-type]
        user=encoded.get("u"),  # type: ignore[arg-type]
    )


# ---------------------------------------------------------------------- #
# Engine snapshots
# ---------------------------------------------------------------------- #


def _encode_result(state: Dict[str, object]) -> Dict[str, object]:
    heap = state["heap"]
    return {
        "k": int(state["k"]),  # type: ignore[arg-type]
        "heap": [[float(score), int(doc_id)] for score, doc_id in heap],  # type: ignore[union-attr]
    }


def _encode_expiration(state: Dict[str, object]) -> Dict[str, object]:
    return {
        "horizon": float(state["horizon"]),  # type: ignore[arg-type]
        "live": [encode_document(doc) for doc in state["live"]],  # type: ignore[union-attr]
    }


def _decode_expiration(encoded: Dict[str, object]) -> Dict[str, object]:
    return {
        "horizon": float(encoded["horizon"]),  # type: ignore[arg-type]
        "live": [decode_document(doc) for doc in encoded["live"]],  # type: ignore[union-attr]
    }


def encode_monitor_state(state: Dict[str, object]) -> Dict[str, object]:
    """Encode a monitor/engine snapshot dict (the PR-2 ``snapshot()`` shape).

    Accepts the capture of :meth:`ContinuousMonitor.snapshot` /
    :meth:`StreamAlgorithm.snapshot` — queries, per-query result heaps,
    decay, counters, stream clock, plus the live expiration window when
    present — and returns plain JSON-able data.  Queries and results are
    sorted by query id so the encoding is deterministic.
    """
    queries: List[Query] = state["queries"]  # type: ignore[assignment]
    results: Dict[int, Dict[str, object]] = state["results"]  # type: ignore[assignment]
    encoded: Dict[str, object] = {
        "version": CODEC_VERSION,
        "algorithm": state.get("algorithm"),
        "queries": [
            encode_query(query) for query in sorted(queries, key=lambda q: q.query_id)
        ],
        "results": [
            [int(query_id), _encode_result(result_state)]
            for query_id, result_state in sorted(results.items())
        ],
        "decay": dict(state["decay"]),  # type: ignore[arg-type]
        "counters": dict(state["counters"]),  # type: ignore[arg-type]
        "last_arrival": state["last_arrival"],
    }
    if "expiration" in state:
        encoded["expiration"] = _encode_expiration(state["expiration"])  # type: ignore[arg-type]
    if "structures" in state:
        # Algorithm-specific structure capture; already plain JSON-able by
        # the _snapshot_structures contract, embedded verbatim.
        encoded["structures"] = state["structures"]
    return encoded


def decode_monitor_state(encoded: Dict[str, object]) -> Dict[str, object]:
    """Invert :func:`encode_monitor_state` into a ``restore()``-ready dict."""
    version = encoded.get("version")
    if version != CODEC_VERSION:
        raise PersistenceError(
            f"snapshot codec version {version!r} is not supported "
            f"(this build reads version {CODEC_VERSION})"
        )
    state: Dict[str, object] = {
        "algorithm": encoded.get("algorithm"),
        "queries": [decode_query(query) for query in encoded["queries"]],  # type: ignore[union-attr]
        "results": {
            int(query_id): {
                "k": int(result_state["k"]),
                "heap": [(float(score), int(doc_id)) for score, doc_id in result_state["heap"]],
            }
            for query_id, result_state in encoded["results"]  # type: ignore[union-attr]
        },
        "decay": {key: float(value) for key, value in encoded["decay"].items()},  # type: ignore[union-attr]
        "counters": dict(encoded["counters"]),  # type: ignore[arg-type]
        "last_arrival": encoded["last_arrival"],
    }
    if "expiration" in encoded:
        state["expiration"] = _decode_expiration(encoded["expiration"])  # type: ignore[arg-type]
    if "structures" in encoded:
        state["structures"] = encoded["structures"]
    return state


# ---------------------------------------------------------------------- #
# WAL record payloads
# ---------------------------------------------------------------------- #


def document_record(document: Document) -> Tuple[str, Dict[str, object]]:
    """A WAL record for one per-event arrival."""
    return KIND_DOCUMENT, {"doc": encode_document(document)}


def batch_record(documents: Sequence[Document]) -> Tuple[str, Dict[str, object]]:
    """A WAL record for one arrival-ordered ingestion batch."""
    return KIND_BATCH, {"docs": [encode_document(doc) for doc in documents]}


def register_record(
    query: Query, shard: Optional[int] = None
) -> Tuple[str, Dict[str, object]]:
    """A WAL record for a query registration (``shard`` = routed owner)."""
    data: Dict[str, object] = {"query": encode_query(query)}
    if shard is not None:
        data["shard"] = int(shard)
    return KIND_REGISTER, data


def unregister_record(
    query_id: int, shard: Optional[int] = None
) -> Tuple[str, Dict[str, object]]:
    """A WAL record for a query unregistration."""
    data: Dict[str, object] = {"query_id": int(query_id)}
    if shard is not None:
        data["shard"] = int(shard)
    return KIND_UNREGISTER, data


def renormalize_record(new_origin: float) -> Tuple[str, Dict[str, object]]:
    """A WAL record for an *explicit* decay rebase through the facade API.

    Renormalizations triggered implicitly while processing a document are
    deterministic consequences of the event sequence and are regenerated by
    replay; only direct ``renormalize()`` calls need their own record.
    """
    return KIND_RENORMALIZE, {"origin": float(new_origin)}


# ---------------------------------------------------------------------- #
# Wire frames (worker pipes, shared-memory slots)
# ---------------------------------------------------------------------- #
#
# The process-resident shard executor speaks this codec on its worker
# pipes instead of pickle, so the bytes crossing a process boundary are
# the same family the WAL and the checkpoints store.  One *frame* is:
#
#   [u32 header length] [header: one pack_line record] [padding] [tail]
#
# The header is exactly a WAL line — CRC-framed canonical JSON — and the
# optional *tail* carries bulk numeric sections (document batches, result
# updates) as packed little-endian int64/float64 arrays that the receiver
# reads zero-copy through ``memoryview.cast``.  The padding aligns the
# tail to 8 bytes so those casts never copy.  Values inside a header are
# encoded by :func:`encode_value`: plain JSON scalars pass through, and
# containers / library objects are wrapped in small tag dicts, so one
# encoder covers the whole worker command surface.

#: Tail sections are 8-byte aligned (int64/float64 elements).
_FRAME_ALIGN = 8

_FRAME_LEN = struct.Struct(">I")


class TailWriter:
    """Accumulates the binary tail of one frame; every block stays 8-aligned."""

    __slots__ = ("_chunks", "_size")

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._size = 0

    def add(self, data: bytes) -> int:
        """Append one block; returns its offset from the start of the tail."""
        offset = self._size
        self._chunks.append(data)
        self._size += len(data)
        if self._size % _FRAME_ALIGN:
            pad = _FRAME_ALIGN - self._size % _FRAME_ALIGN
            self._chunks.append(b"\x00" * pad)
            self._size += pad
        return offset

    @property
    def size(self) -> int:
        return self._size

    def take(self) -> bytes:
        return b"".join(self._chunks)


def pack_frame(header: object, tail: bytes = b"") -> bytes:
    """Frame ``header`` (+ optional binary tail) as one length-prefixed record."""
    line = pack_line(header)
    pad = -(_FRAME_LEN.size + len(line)) % _FRAME_ALIGN
    return b"".join((_FRAME_LEN.pack(len(line) + pad), line, b" " * pad, tail))


def unpack_frame(data: Union[bytes, memoryview]) -> Tuple[object, memoryview]:
    """Split one frame into its decoded header and a zero-copy tail view."""
    view = memoryview(data)
    if len(view) < _FRAME_LEN.size:
        raise CorruptRecordError("frame is shorter than its length prefix")
    (header_len,) = _FRAME_LEN.unpack(view[: _FRAME_LEN.size])
    end = _FRAME_LEN.size + header_len
    if len(view) < end:
        raise CorruptRecordError("frame is shorter than its declared header")
    header = unpack_line(bytes(view[_FRAME_LEN.size : end]).rstrip(b" "))
    return header, view[end:]


# ---------------------------------------------------------------------- #
# Tagged value encoding (the worker command/reply surface)
# ---------------------------------------------------------------------- #
#
# Scalars (None/bool/int/float/str) are themselves.  Everything else is a
# ``{"_": tag, ...}`` dict; a *plain* dict is tagged too, so any dict the
# decoder sees is a tag.  Lists of the hot result types are diverted into
# binary tail sections when a :class:`TailWriter` is supplied.

_INT64 = "q"
_FLOAT64 = "d"


def _pack_array(typecode: str, values) -> bytes:
    return array(typecode, values).tobytes()


def _cast(tail: memoryview, offset: int, count: int, typecode: str) -> memoryview:
    return tail[offset : offset + 8 * count].cast(typecode)


def _encode_result_updates(updates: Sequence[ResultUpdate], tail: TailWriter) -> Dict[str, object]:
    qids = array(_INT64)
    docs = array(_INT64)
    scores = array(_FLOAT64)
    evicted = array(_INT64)
    for update in updates:
        qids.append(update[0])
        docs.append(update[1])
        scores.append(update[2])
        evicted.append(-1 if update[3] is None else update[3])
    offset = tail.add(qids.tobytes())
    tail.add(docs.tobytes())
    tail.add(scores.tobytes())
    tail.add(evicted.tobytes())
    return {"_": "rus", "o": offset, "n": len(updates)}


def _decode_result_updates(encoded: Dict[str, object], tail: memoryview) -> List[ResultUpdate]:
    offset = encoded["o"]
    n = encoded["n"]
    # .tolist() converts each packed section at C speed; per-element
    # memoryview indexing would dominate the decode otherwise.
    qids = _cast(tail, offset, n, _INT64).tolist()
    docs = _cast(tail, offset + 8 * n, n, _INT64).tolist()
    scores = _cast(tail, offset + 16 * n, n, _FLOAT64).tolist()
    evicted = _cast(tail, offset + 24 * n, n, _INT64).tolist()
    new = tuple.__new__
    update_cls = ResultUpdate
    return [
        new(update_cls, (qids[i], docs[i], scores[i], None if evicted[i] < 0 else evicted[i]))
        for i in range(n)
    ]


def _encode_batch_updates(updates: Sequence[BatchUpdate], tail: TailWriter) -> Dict[str, object]:
    qids = array(_INT64, [u[0] for u in updates])
    entry_counts = array(_INT64, [len(u[1]) for u in updates])
    entry_docs = array(_INT64, [e[0] for u in updates for e in u[1]])
    entry_scores = array(_FLOAT64, [e[1] for u in updates for e in u[1]])
    evict_counts = array(_INT64, [len(u[2]) for u in updates])
    evict_docs = array(_INT64, [d for u in updates for d in u[2]])
    offset = tail.add(qids.tobytes())
    tail.add(entry_counts.tobytes())
    tail.add(entry_docs.tobytes())
    tail.add(entry_scores.tobytes())
    tail.add(evict_counts.tobytes())
    tail.add(evict_docs.tobytes())
    return {
        "_": "bus",
        "o": offset,
        "n": len(updates),
        "e": len(entry_docs),
        "v": len(evict_docs),
    }


def _aligned(size: int) -> int:
    return size + (-size % _FRAME_ALIGN)


def _decode_batch_updates(encoded: Dict[str, object], tail: memoryview) -> List[BatchUpdate]:
    offset = encoded["o"]
    n = encoded["n"]
    total_entries = encoded["e"]
    total_evicted = encoded["v"]
    qids = _cast(tail, offset, n, _INT64).tolist()
    offset += _aligned(8 * n)
    entry_counts = _cast(tail, offset, n, _INT64).tolist()
    offset += _aligned(8 * n)
    entry_docs = _cast(tail, offset, total_entries, _INT64).tolist()
    offset += _aligned(8 * total_entries)
    entry_scores = _cast(tail, offset, total_entries, _FLOAT64).tolist()
    offset += _aligned(8 * total_entries)
    evict_counts = _cast(tail, offset, n, _INT64).tolist()
    offset += _aligned(8 * n)
    evict_docs = _cast(tail, offset, total_evicted, _INT64).tolist()
    updates: List[BatchUpdate] = []
    append = updates.append
    # ``tuple.__new__(ResultEntry, pair)`` skips the generated NamedTuple
    # ``__new__`` (a Python-level function) — with ~3-4k entries per reply
    # that construction dominates the decode otherwise.  The shared zip /
    # iter sources are carved per-update with islice, avoiding slice
    # copies of the flat sections.
    new = tuple.__new__
    entry_cls = ResultEntry
    update_cls = BatchUpdate
    entry_pairs = zip(entry_docs, entry_scores)
    evict_iter = iter(evict_docs)
    for i in range(n):
        entries = tuple([new(entry_cls, p) for p in islice(entry_pairs, entry_counts[i])])
        evicted = tuple(islice(evict_iter, evict_counts[i]))
        append(new(update_cls, (qids[i], entries, evicted)))
    return updates


def _encode_result_entries(entries: Sequence[ResultEntry], tail: TailWriter) -> Dict[str, object]:
    docs = array(_INT64)
    scores = array(_FLOAT64)
    for entry in entries:
        docs.append(entry[0])
        scores.append(entry[1])
    offset = tail.add(docs.tobytes())
    tail.add(scores.tobytes())
    return {"_": "res", "o": offset, "n": len(entries)}


def _decode_result_entries(encoded: Dict[str, object], tail: memoryview) -> List[ResultEntry]:
    offset = encoded["o"]
    n = encoded["n"]
    docs = _cast(tail, offset, n, _INT64).tolist()
    scores = _cast(tail, offset + _aligned(8 * n), n, _FLOAT64).tolist()
    new = tuple.__new__
    entry_cls = ResultEntry
    return [new(entry_cls, pair) for pair in zip(docs, scores)]


def _encode_exception(exc: BaseException) -> Dict[str, object]:
    cls = type(exc)
    encoded: Dict[str, object] = {
        "_": "x",
        "m": cls.__module__,
        "n": cls.__qualname__,
        "s": str(exc),
    }
    try:
        args = [encode_value(arg) for arg in exc.args]
        canonical_dumps(args)  # probe: every arg must survive the wire
        encoded["a"] = args
    except Exception:  # noqa: BLE001 - unencodable args fall back to str(exc)
        pass
    return encoded


def _decode_exception(encoded: Dict[str, object]) -> BaseException:
    from repro.exceptions import WorkerError

    name = encoded.get("n", "Exception")
    message = encoded.get("s", "")
    target: object = None
    try:
        module = encoded["m"]
        target = sys.modules.get(module) or importlib.import_module(module)
        for part in str(name).split("."):
            target = getattr(target, part)
    except Exception:  # noqa: BLE001 - unresolvable type falls back below
        target = None
    if not (isinstance(target, type) and issubclass(target, BaseException)):
        return WorkerError(f"{name}: {message}")
    args = encoded.get("a")
    if args is not None:
        try:
            return target(*[decode_value(arg) for arg in args])
        except Exception:  # noqa: BLE001 - signature mismatch falls back
            pass
    try:
        return target(message)
    except Exception:  # noqa: BLE001 - constructor needs args we don't have
        return WorkerError(f"{name}: {message}")


def encode_value(value: object, tail: Optional[TailWriter] = None) -> object:
    """Encode one command/reply value for the wire (see the frame docstring).

    With a :class:`TailWriter`, homogeneous lists of the hot result types
    (:class:`ResultUpdate`, :class:`BatchUpdate`, :class:`ResultEntry`)
    become packed binary tail sections — one frame per reply regardless of
    how many updates a batch produced.
    """
    kind = type(value)
    if value is None or kind is bool or kind is int or kind is float or kind is str:
        return value
    if kind is list:
        if value and tail is not None:
            first = type(value[0])
            if first is BatchUpdate and all(type(item) is BatchUpdate for item in value):
                return _encode_batch_updates(value, tail)  # type: ignore[arg-type]
            if first is ResultUpdate and all(type(item) is ResultUpdate for item in value):
                return _encode_result_updates(value, tail)  # type: ignore[arg-type]
            if first is ResultEntry and all(type(item) is ResultEntry for item in value):
                return _encode_result_entries(value, tail)  # type: ignore[arg-type]
        return [encode_value(item, tail) for item in value]
    if kind is ResultEntry:
        return {"_": "re", "v": [value[0], value[1]]}
    if kind is ResultUpdate:
        return {"_": "ru", "v": [value[0], value[1], value[2], value[3]]}
    if kind is BatchUpdate:
        return {
            "_": "bu",
            "v": [
                value[0],
                [[entry[0], entry[1]] for entry in value[1]],
                list(value[2]),
            ],
        }
    if kind is tuple:
        return {"_": "t", "v": [encode_value(item, tail) for item in value]}
    if kind is dict:
        return {
            "_": "d",
            "v": [
                [encode_value(key, tail), encode_value(item, tail)]
                for key, item in value.items()
            ],
        }
    if kind is bytes:
        return {"_": "b", "v": value.decode("latin-1")}
    if kind is Document:
        return {"_": "doc", "v": encode_document(value)}
    if kind is Query:
        return {"_": "qy", "v": encode_query(value)}
    if isinstance(value, BaseException):
        return _encode_exception(value)
    raise PersistenceError(
        f"value of type {kind.__name__} cannot cross the worker pipe"
    )


_EMPTY_TAIL = memoryview(b"")


def decode_value(encoded: object, tail: memoryview = _EMPTY_TAIL) -> object:
    """Invert :func:`encode_value` (``tail`` resolves binary sections)."""
    kind = type(encoded)
    if kind is list:
        return [decode_value(item, tail) for item in encoded]
    if kind is not dict:
        return encoded
    tag = encoded["_"]
    if tag == "bus":
        return _decode_batch_updates(encoded, tail)
    if tag == "rus":
        return _decode_result_updates(encoded, tail)
    if tag == "res":
        return _decode_result_entries(encoded, tail)
    if tag == "d":
        return {
            decode_value(key, tail): decode_value(value, tail)
            for key, value in encoded["v"]
        }
    if tag == "t":
        return tuple(decode_value(item, tail) for item in encoded["v"])
    if tag == "b":
        return encoded["v"].encode("latin-1")
    if tag == "re":
        return ResultEntry(*encoded["v"])
    if tag == "ru":
        return ResultUpdate(*encoded["v"])
    if tag == "bu":
        qid, entries, gone = encoded["v"]
        return BatchUpdate(
            qid,
            tuple(ResultEntry(doc, score) for doc, score in entries),
            tuple(gone),
        )
    if tag == "doc":
        return decode_document(encoded["v"])
    if tag == "qy":
        return decode_query(encoded["v"])
    if tag == "x":
        return _decode_exception(encoded)
    raise CorruptRecordError(f"unknown wire value tag {tag!r}")


# ---------------------------------------------------------------------- #
# Document-batch payload (the zero-copy fan-out unit)
# ---------------------------------------------------------------------- #
#
# One ingestion batch is encoded ONCE into a single frame: a small header
# plus five packed sections — doc ids (int64), arrival times (float64),
# per-document term counts (int64), flattened term ids (int64) and
# flattened weights (float64), each vector's terms in its own iteration
# order (scoring accumulates in that order; see the vector note above).
# The parent writes the frame into the shared-memory ring (or down each
# pipe on the fallback path) and every worker decodes its copy zero-copy
# through memoryview casts.  The header CRC covers only the header line;
# ``crc`` covers the tail, so a slot-reclamation bug that scribbles a
# ring slot is caught before any document reaches an engine.

_DOC_NEW = Document.__new__
_DOC_SET = object.__setattr__


def _trusted_document(doc_id, vector, arrival_time, text) -> Document:
    """Rebuild a document without re-validating it (CRC already vouches)."""
    doc = _DOC_NEW(Document)
    _DOC_SET(doc, "doc_id", doc_id)
    _DOC_SET(doc, "vector", vector)
    _DOC_SET(doc, "arrival_time", arrival_time)
    _DOC_SET(doc, "text", text)
    return doc


def encode_document_batch(documents: Sequence[Document]) -> bytes:
    """One arrival-ordered batch as a single payload frame (encoded once)."""
    if any(document.arrival_time is None for document in documents):
        # Un-streamed documents (no arrival stamp) are rare and never on
        # the hot path; the whole batch falls back to the generic form.
        return pack_frame({"docs": [encode_document(doc) for doc in documents]})
    doc_ids = array(_INT64, [document.doc_id for document in documents])
    arrivals = array(_FLOAT64, [document.arrival_time for document in documents])
    counts = array(_INT64, [len(document.vector) for document in documents])
    terms = array(_INT64)
    weights = array(_FLOAT64)
    for document in documents:
        vector = document.vector
        terms.extend(vector.keys())
        weights.extend(vector.values())
    texts: List[List[object]] = [
        [index, document.text]
        for index, document in enumerate(documents)
        if document.text is not None
    ]
    tail = TailWriter()
    tail.add(doc_ids.tobytes())
    tail.add(arrivals.tobytes())
    tail.add(counts.tobytes())
    tail.add(terms.tobytes())
    tail.add(weights.tobytes())
    body = tail.take()
    header: Dict[str, object] = {
        "n": len(documents),
        "t": len(terms),
        "crc": zlib.crc32(body) & 0xFFFFFFFF,
    }
    if texts:
        header["x"] = texts
    return pack_frame(header, body)


def decode_document_batch(header: Dict[str, object], tail: memoryview) -> List[Document]:
    """Invert :func:`encode_document_batch` from a (possibly shared) buffer."""
    if "docs" in header:
        return [decode_document(doc) for doc in header["docs"]]  # type: ignore[union-attr]
    n = header["n"]
    total = header["t"]
    if zlib.crc32(tail) & 0xFFFFFFFF != header["crc"]:
        raise CorruptRecordError("document batch payload CRC mismatch")
    offset = 0
    doc_ids = _cast(tail, offset, n, _INT64).tolist()
    offset += _aligned(8 * n)
    arrivals = _cast(tail, offset, n, _FLOAT64).tolist()
    offset += _aligned(8 * n)
    counts = _cast(tail, offset, n, _INT64).tolist()
    offset += _aligned(8 * n)
    terms = _cast(tail, offset, total, _INT64).tolist()
    offset += _aligned(8 * total)
    weights = _cast(tail, offset, total, _FLOAT64).tolist()
    texts: Dict[int, object] = {
        int(index): text for index, text in header.get("x", ())  # type: ignore[union-attr]
    }
    documents: List[Document] = []
    append = documents.append
    texts_get = texts.get
    doc_new = _DOC_NEW
    # One zip iterator over the flat term/weight sections; islice carves
    # each vector out of it without materializing intermediate slices.
    # Field assignment goes straight into ``__dict__`` — the frozen
    # dataclass only guards ``__setattr__``, and the CRC already vouches
    # for the values, so the construction stays pure C-level dict stores.
    pairs = zip(terms, weights)
    for i in range(n):
        doc = doc_new(Document)
        fields = doc.__dict__
        fields["doc_id"] = doc_ids[i]
        fields["vector"] = dict(islice(pairs, counts[i]))
        fields["arrival_time"] = arrivals[i]
        fields["text"] = texts_get(i)
        append(doc)
    return documents
