"""Versioned, deterministic serialization of engine state and log records.

Everything the durability subsystem puts on disk goes through this module:
the write-ahead log (:mod:`repro.persistence.wal`), the checkpoint files
(:mod:`repro.persistence.checkpoint`) and the shard-rebalancing path of the
sharded runtime all speak the same encoded form, so there is exactly one
serialization of a query, a document, a result heap or a full engine
snapshot.

The physical format is CRC-framed JSON lines:

* one *record* is one line: an 8-hex-digit CRC-32 of the payload, a space,
  the payload as canonical JSON, a newline;
* canonical JSON means sorted keys, no whitespace, ``NaN``/``Infinity``
  rejected — encoding the same state twice yields identical bytes;
* floats survive exactly: :func:`json.dumps` emits ``repr(float)``, the
  shortest string that round-trips to the same IEEE-754 double, so a
  decoded snapshot restores scores, thresholds and decay origins
  bit-for-bit.

Sparse vectors are encoded as parallel term/weight arrays in the vector's
own iteration order (scoring accumulates in that order, and float addition
is not associative); result stores are encoded as query-id-sorted
``[query_id, state]`` pairs.  :data:`CODEC_VERSION` is embedded in every
snapshot and every WAL record envelope; decoding rejects versions it does
not understand instead of misreading them.
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.documents.document import Document
from repro.exceptions import CorruptRecordError, PersistenceError
from repro.queries.query import Query

#: Version stamped into snapshots and WAL record envelopes.
CODEC_VERSION = 1

#: WAL record kinds (the event types recovery knows how to replay).
KIND_DOCUMENT = "doc"
KIND_BATCH = "batch"
KIND_REGISTER = "register"
KIND_UNREGISTER = "unregister"
KIND_RENORMALIZE = "renorm"

RECORD_KINDS = (
    KIND_DOCUMENT,
    KIND_BATCH,
    KIND_REGISTER,
    KIND_UNREGISTER,
    KIND_RENORMALIZE,
)


# ---------------------------------------------------------------------- #
# Canonical JSON + CRC framing
# ---------------------------------------------------------------------- #


def canonical_dumps(obj: object) -> str:
    """Serialize to canonical JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def pack_line(obj: object) -> bytes:
    """Frame one object as a CRC-checked JSON line (the on-disk record unit)."""
    payload = canonical_dumps(obj).encode("utf-8")
    return b"%08x " % (zlib.crc32(payload) & 0xFFFFFFFF,) + payload + b"\n"


def unpack_line(line: bytes) -> object:
    """Parse and CRC-verify one framed line; raises :class:`CorruptRecordError`.

    A truncated, bit-flipped or garbage line raises — the WAL reader treats
    that as a torn tail when (and only when) it occurs at the end of the
    last segment.
    """
    if len(line) < 10 or line[8:9] != b" ":
        raise CorruptRecordError("malformed record framing")
    try:
        expected = int(line[:8], 16)
    except ValueError as exc:
        raise CorruptRecordError("malformed record CRC field") from exc
    payload = line[9:]
    if payload.endswith(b"\n"):
        payload = payload[:-1]
    else:
        # A record without its newline was cut mid-write.
        raise CorruptRecordError("record is missing its terminating newline")
    if zlib.crc32(payload) & 0xFFFFFFFF != expected:
        raise CorruptRecordError("record CRC mismatch")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptRecordError("record payload is not valid JSON") from exc


# ---------------------------------------------------------------------- #
# Vectors, documents, queries
# ---------------------------------------------------------------------- #


# Sparse vectors are encoded as two parallel flat arrays ("t": term ids,
# "w": weights) in the vector's own iteration order.  Flat arrays serialize
# measurably faster than nested pairs (the document encode is on the hot
# ingestion path), and preserving iteration order is load-bearing: scoring
# accumulates ``sum(w_q * w_d)`` in iteration order and float addition is
# not associative, so a reordered vector could score a future document one
# ulp away from the original.  Values must be plain ints/floats (the
# library's own vectors always are); exotic numeric types fail loudly in
# ``json.dumps``.


def _decode_vector(terms: Sequence[int], weights: Sequence[float]) -> Dict[int, float]:
    return {int(term): float(weight) for term, weight in zip(terms, weights)}


def encode_document(document: Document) -> Dict[str, object]:
    """One document as a JSON-able dict (text kept when present)."""
    encoded: Dict[str, object] = {
        "i": document.doc_id,
        "a": document.arrival_time,
        "t": list(document.vector.keys()),
        "w": list(document.vector.values()),
    }
    if document.text is not None:
        encoded["x"] = document.text
    return encoded


def decode_document(encoded: Dict[str, object]) -> Document:
    arrival = encoded["a"]
    return Document(
        doc_id=int(encoded["i"]),  # type: ignore[arg-type]
        vector=_decode_vector(encoded["t"], encoded["w"]),  # type: ignore[arg-type]
        arrival_time=None if arrival is None else float(arrival),  # type: ignore[arg-type]
        text=encoded.get("x"),  # type: ignore[arg-type]
    )


def encode_query(query: Query) -> Dict[str, object]:
    """One continuous query as a JSON-able dict."""
    encoded: Dict[str, object] = {
        "i": query.query_id,
        "k": query.k,
        "t": list(query.vector.keys()),
        "w": list(query.vector.values()),
    }
    if query.user is not None:
        encoded["u"] = query.user
    return encoded


def decode_query(encoded: Dict[str, object]) -> Query:
    return Query(
        query_id=int(encoded["i"]),  # type: ignore[arg-type]
        vector=_decode_vector(encoded["t"], encoded["w"]),  # type: ignore[arg-type]
        k=int(encoded["k"]),  # type: ignore[arg-type]
        user=encoded.get("u"),  # type: ignore[arg-type]
    )


# ---------------------------------------------------------------------- #
# Engine snapshots
# ---------------------------------------------------------------------- #


def _encode_result(state: Dict[str, object]) -> Dict[str, object]:
    heap = state["heap"]
    return {
        "k": int(state["k"]),  # type: ignore[arg-type]
        "heap": [[float(score), int(doc_id)] for score, doc_id in heap],  # type: ignore[union-attr]
    }


def _encode_expiration(state: Dict[str, object]) -> Dict[str, object]:
    return {
        "horizon": float(state["horizon"]),  # type: ignore[arg-type]
        "live": [encode_document(doc) for doc in state["live"]],  # type: ignore[union-attr]
    }


def _decode_expiration(encoded: Dict[str, object]) -> Dict[str, object]:
    return {
        "horizon": float(encoded["horizon"]),  # type: ignore[arg-type]
        "live": [decode_document(doc) for doc in encoded["live"]],  # type: ignore[union-attr]
    }


def encode_monitor_state(state: Dict[str, object]) -> Dict[str, object]:
    """Encode a monitor/engine snapshot dict (the PR-2 ``snapshot()`` shape).

    Accepts the capture of :meth:`ContinuousMonitor.snapshot` /
    :meth:`StreamAlgorithm.snapshot` — queries, per-query result heaps,
    decay, counters, stream clock, plus the live expiration window when
    present — and returns plain JSON-able data.  Queries and results are
    sorted by query id so the encoding is deterministic.
    """
    queries: List[Query] = state["queries"]  # type: ignore[assignment]
    results: Dict[int, Dict[str, object]] = state["results"]  # type: ignore[assignment]
    encoded: Dict[str, object] = {
        "version": CODEC_VERSION,
        "algorithm": state.get("algorithm"),
        "queries": [
            encode_query(query) for query in sorted(queries, key=lambda q: q.query_id)
        ],
        "results": [
            [int(query_id), _encode_result(result_state)]
            for query_id, result_state in sorted(results.items())
        ],
        "decay": dict(state["decay"]),  # type: ignore[arg-type]
        "counters": dict(state["counters"]),  # type: ignore[arg-type]
        "last_arrival": state["last_arrival"],
    }
    if "expiration" in state:
        encoded["expiration"] = _encode_expiration(state["expiration"])  # type: ignore[arg-type]
    if "structures" in state:
        # Algorithm-specific structure capture; already plain JSON-able by
        # the _snapshot_structures contract, embedded verbatim.
        encoded["structures"] = state["structures"]
    return encoded


def decode_monitor_state(encoded: Dict[str, object]) -> Dict[str, object]:
    """Invert :func:`encode_monitor_state` into a ``restore()``-ready dict."""
    version = encoded.get("version")
    if version != CODEC_VERSION:
        raise PersistenceError(
            f"snapshot codec version {version!r} is not supported "
            f"(this build reads version {CODEC_VERSION})"
        )
    state: Dict[str, object] = {
        "algorithm": encoded.get("algorithm"),
        "queries": [decode_query(query) for query in encoded["queries"]],  # type: ignore[union-attr]
        "results": {
            int(query_id): {
                "k": int(result_state["k"]),
                "heap": [(float(score), int(doc_id)) for score, doc_id in result_state["heap"]],
            }
            for query_id, result_state in encoded["results"]  # type: ignore[union-attr]
        },
        "decay": {key: float(value) for key, value in encoded["decay"].items()},  # type: ignore[union-attr]
        "counters": dict(encoded["counters"]),  # type: ignore[arg-type]
        "last_arrival": encoded["last_arrival"],
    }
    if "expiration" in encoded:
        state["expiration"] = _decode_expiration(encoded["expiration"])  # type: ignore[arg-type]
    if "structures" in encoded:
        state["structures"] = encoded["structures"]
    return state


# ---------------------------------------------------------------------- #
# WAL record payloads
# ---------------------------------------------------------------------- #


def document_record(document: Document) -> Tuple[str, Dict[str, object]]:
    """A WAL record for one per-event arrival."""
    return KIND_DOCUMENT, {"doc": encode_document(document)}


def batch_record(documents: Sequence[Document]) -> Tuple[str, Dict[str, object]]:
    """A WAL record for one arrival-ordered ingestion batch."""
    return KIND_BATCH, {"docs": [encode_document(doc) for doc in documents]}


def register_record(
    query: Query, shard: Optional[int] = None
) -> Tuple[str, Dict[str, object]]:
    """A WAL record for a query registration (``shard`` = routed owner)."""
    data: Dict[str, object] = {"query": encode_query(query)}
    if shard is not None:
        data["shard"] = int(shard)
    return KIND_REGISTER, data


def unregister_record(
    query_id: int, shard: Optional[int] = None
) -> Tuple[str, Dict[str, object]]:
    """A WAL record for a query unregistration."""
    data: Dict[str, object] = {"query_id": int(query_id)}
    if shard is not None:
        data["shard"] = int(shard)
    return KIND_UNREGISTER, data


def renormalize_record(new_origin: float) -> Tuple[str, Dict[str, object]]:
    """A WAL record for an *explicit* decay rebase through the facade API.

    Renormalizations triggered implicitly while processing a document are
    deterministic consequences of the event sequence and are regenerated by
    replay; only direct ``renormalize()`` calls need their own record.
    """
    return KIND_RENORMALIZE, {"origin": float(new_origin)}
