"""Full and incremental checkpoints of encoded engine snapshots.

A checkpoint pins the engine state *as of* one WAL position: restoring the
checkpoint and replaying every WAL record with a larger LSN reproduces the
live state exactly.  Checkpoints are taken from the in-memory snapshot
hooks (PR 2) between events — capturing a snapshot is pure dict/list
assembly, so ingestion is never stopped, only briefly interleaved with the
file write.

Two kinds exist:

* **full** — the whole encoded snapshot;
* **incremental** — a delta against the previous checkpoint (full or
  incremental): queries added/removed, per-query result heaps that
  changed, the always-small decay/counters/clock scalars, and the live
  expiration window as a drop-prefix/append-suffix delta (the window only
  ever expires from the front and grows at the back).

Files are named ``ckpt-<lsn>-<kind>.json``, written atomically (temp file +
``os.replace``) and CRC-framed like WAL records, so a torn checkpoint is
detected and skipped, never half-loaded.  Loading walks the newest valid
chain: the latest full checkpoint plus every consecutive valid incremental
after it.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.exceptions import CorruptRecordError, PersistenceError
from repro.persistence.codec import CODEC_VERSION, pack_line, unpack_line
from repro.persistence.wal import atomic_write

_PREFIX = "ckpt-"
_FULL = "full"
_INCR = "incr"


def _file_name(lsn: int, kind: str) -> str:
    return f"{_PREFIX}{lsn:020d}-{kind}.json"


def _parse_name(name: str) -> Optional[Tuple[int, str]]:
    if not name.startswith(_PREFIX) or not name.endswith(".json"):
        return None
    stem = name[len(_PREFIX) : -len(".json")]
    try:
        lsn_text, kind = stem.split("-", 1)
        return int(lsn_text), kind
    except ValueError:
        return None


def _index_results(encoded_state: Dict[str, object]) -> Dict[int, object]:
    return {int(query_id): result for query_id, result in encoded_state["results"]}  # type: ignore[union-attr]


def _index_queries(encoded_state: Dict[str, object]) -> Dict[int, object]:
    return {int(query["i"]): query for query in encoded_state["queries"]}  # type: ignore[index, union-attr]


def _expiration_delta(
    base: Optional[Dict[str, object]], new: Optional[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """Delta between two encoded expiration windows (None = no window)."""
    if new is None:
        return None
    if base is None:
        return {"full": new}
    base_live: List[object] = base["live"]  # type: ignore[assignment]
    new_live: List[object] = new["live"]  # type: ignore[assignment]
    if not base_live:
        return {"horizon": new["horizon"], "dropped": 0, "appended": new_live}
    if not new_live:
        return {"horizon": new["horizon"], "dropped": len(base_live), "appended": []}
    # The window is a queue: the new window is a suffix of the old one plus
    # newly observed documents.  Locate the old position of the new head.
    head = new_live[0]
    for dropped, doc in enumerate(base_live):
        if doc == head:
            overlap = len(base_live) - dropped
            if new_live[:overlap] == base_live[dropped:]:
                return {
                    "horizon": new["horizon"],
                    "dropped": dropped,
                    "appended": new_live[overlap:],
                }
            break
    # The suffix property did not hold (it always should); fall back to a
    # full window copy rather than guessing.
    return {"full": new}


def _apply_expiration_delta(
    base: Optional[Dict[str, object]], delta: Optional[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    if delta is None:
        return None
    if "full" in delta:
        return delta["full"]  # type: ignore[return-value]
    live: List[object] = [] if base is None else list(base["live"])  # type: ignore[arg-type]
    dropped = int(delta["dropped"])  # type: ignore[arg-type]
    return {
        "horizon": delta["horizon"],
        "live": live[dropped:] + list(delta["appended"]),  # type: ignore[arg-type]
    }


class CheckpointManager:
    """Writes, chains and reloads checkpoints for one engine.

    Example::

        manager = CheckpointManager(directory)
        manager.write(encoded_state, lsn=wal.last_lsn, full=True)
        ...
        loaded = manager.load_latest()
        if loaded is not None:
            encoded_state, lsn = loaded
    """

    def __init__(self, directory: str, fsync: bool = True) -> None:
        self.directory = directory
        #: Whether checkpoint renames are fsynced to survive an OS crash
        #: (matches ``DurabilityConfig.fsync``; file contents always are).
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        #: Encoded state as of the last checkpoint (diff base for the next
        #: incremental); populated by :meth:`write` and :meth:`load_latest`.
        self._last_state: Optional[Dict[str, object]] = None
        self._last_lsn = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    def write(self, encoded_state: Dict[str, object], lsn: int, full: bool) -> str:
        """Persist one checkpoint; returns the file name written.

        The first checkpoint is always written full regardless of ``full``
        (an incremental needs a base).
        """
        if self._last_state is None:
            full = True
        if full:
            payload: Dict[str, object] = {
                "version": CODEC_VERSION,
                "kind": _FULL,
                "lsn": lsn,
                "state": encoded_state,
            }
            name = _file_name(lsn, _FULL)
        else:
            payload = {
                "version": CODEC_VERSION,
                "kind": _INCR,
                "lsn": lsn,
                "base_lsn": self._last_lsn,
                "delta": self._delta(self._last_state, encoded_state),
            }
            name = _file_name(lsn, _INCR)
        atomic_write(
            os.path.join(self.directory, name),
            pack_line(payload),
            fsync_dir=self.fsync,
        )
        self._last_state = encoded_state
        self._last_lsn = lsn
        return name

    def _delta(
        self, base: Optional[Dict[str, object]], new: Dict[str, object]
    ) -> Dict[str, object]:
        assert base is not None
        base_queries = _index_queries(base)
        new_queries = _index_queries(new)
        base_results = _index_results(base)
        new_results = _index_results(new)
        return {
            "algorithm": new.get("algorithm"),
            # Compare by value, not id membership: a query unregistered and
            # re-registered under the same id between checkpoints changes
            # the definition behind an id the base also has.
            "queries_added": [
                query for query_id, query in sorted(new_queries.items())
                if base_queries.get(query_id) != query
            ],
            "queries_removed": sorted(
                query_id for query_id in base_queries if query_id not in new_queries
            ),
            "results_changed": [
                [query_id, result]
                for query_id, result in sorted(new_results.items())
                if base_results.get(query_id) != result
            ]
            + [
                # Engine snapshots omit empty heaps (emptiness is implied by
                # registration), so a heap that *became* empty since the base
                # — expiration can clear results — shows up as an absent key.
                # Spell the transition out; dropping it would resurrect the
                # base's stale entries on recovery.
                [query_id, {"k": new_queries[query_id]["k"], "heap": []}]
                for query_id in sorted(base_results)
                if query_id not in new_results
                and query_id in new_queries
                and base_results[query_id].get("heap")
            ],
            "decay": new["decay"],
            "counters": new["counters"],
            "last_arrival": new["last_arrival"],
            "expiration": _expiration_delta(
                base.get("expiration"), new.get("expiration")  # type: ignore[arg-type]
            ),
            # Structure captures are history, not per-query state: no
            # meaningful delta exists, so they travel whole (absent when the
            # algorithm does not capture structures).
            "structures": new.get("structures"),
        }

    @staticmethod
    def _apply_delta(
        base: Dict[str, object], delta: Dict[str, object]
    ) -> Dict[str, object]:
        queries = _index_queries(base)
        results = _index_results(base)
        for query_id in delta["queries_removed"]:  # type: ignore[union-attr]
            queries.pop(int(query_id), None)
            results.pop(int(query_id), None)
        for query in delta["queries_added"]:  # type: ignore[union-attr]
            queries[int(query["i"])] = query  # type: ignore[index]
        for query_id, result in delta["results_changed"]:  # type: ignore[union-attr]
            results[int(query_id)] = result
        state: Dict[str, object] = {
            "version": CODEC_VERSION,
            "algorithm": delta.get("algorithm", base.get("algorithm")),
            "queries": [query for _, query in sorted(queries.items())],
            "results": [[query_id, result] for query_id, result in sorted(results.items())],
            "decay": delta["decay"],
            "counters": delta["counters"],
            "last_arrival": delta["last_arrival"],
        }
        expiration = _apply_expiration_delta(
            base.get("expiration"), delta["expiration"]  # type: ignore[arg-type]
        )
        if expiration is not None:
            state["expiration"] = expiration
        if delta.get("structures") is not None:
            state["structures"] = delta["structures"]
        return state

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #

    def _entries(self) -> List[Tuple[int, str, str]]:
        """(lsn, kind, file name) of every checkpoint file, LSN order."""
        entries = []
        for name in os.listdir(self.directory):
            parsed = _parse_name(name)
            if parsed is not None and parsed[1] in (_FULL, _INCR):
                entries.append((parsed[0], parsed[1], name))
        entries.sort()
        return entries

    def _read(self, name: str) -> Optional[Dict[str, object]]:
        try:
            with open(os.path.join(self.directory, name), "rb") as handle:
                payload = unpack_line(handle.read())
        except (OSError, CorruptRecordError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CODEC_VERSION:
            raise PersistenceError(
                f"checkpoint codec version {payload.get('version')!r} is not supported"
            )
        return payload

    def load_latest(
        self, max_lsn: Optional[int] = None
    ) -> Optional[Tuple[Dict[str, object], int]]:
        """The newest reconstructible state and its LSN (None when empty).

        Walks backwards to the newest *valid* full checkpoint, then applies
        every consecutive valid incremental after it.  A corrupt or torn
        file ends the chain at the last state that can still be proven
        consistent.  ``max_lsn`` ignores newer checkpoints — the sharded
        facade uses it to hold every shard to the checkpoint round its
        commit marker proves complete.  The loaded state becomes the diff
        base for the next incremental written by this manager.
        """
        entries = self._entries()
        if max_lsn is not None:
            entries = [entry for entry in entries if entry[0] <= max_lsn]
        # Newest valid full checkpoint first.
        base_index = None
        base_payload = None
        for index in range(len(entries) - 1, -1, -1):
            lsn, kind, name = entries[index]
            if kind != _FULL:
                continue
            payload = self._read(name)
            if payload is not None and payload.get("kind") == _FULL:
                base_index = index
                base_payload = payload
                break
        if base_payload is None:
            return None
        state: Dict[str, object] = base_payload["state"]  # type: ignore[assignment]
        last_lsn = int(base_payload["lsn"])  # type: ignore[arg-type]
        assert base_index is not None
        for lsn, kind, name in entries[base_index + 1 :]:
            if kind != _INCR:
                # A newer full would have been picked as the base; an
                # unreadable newer full falls back here and its followers
                # cannot chain onto this base.
                break
            payload = self._read(name)
            if payload is None or int(payload.get("base_lsn", -1)) != last_lsn:  # type: ignore[arg-type]
                break
            state = self._apply_delta(state, payload["delta"])  # type: ignore[arg-type]
            last_lsn = int(payload["lsn"])  # type: ignore[arg-type]
        self._last_state = state
        self._last_lsn = last_lsn
        return state, last_lsn

    # ------------------------------------------------------------------ #
    # Pruning
    # ------------------------------------------------------------------ #

    def purge_newer(self, lsn: int) -> int:
        """Delete checkpoint files with a LSN past ``lsn``; returns count.

        Recovery calls this after it succeeds, with the commit marker's
        LSN: anything newer belongs to a crashed, rolled-back checkpoint
        round.  Left on disk, such an orphan could later splice itself
        into the incremental chain (a new incremental chains off the
        *committed* state, so its ``base_lsn`` skips the orphan, and
        ``load_latest`` would follow the orphan and then reject the real
        successor) — stranding a recovery behind WAL records that a later
        round already compacted away.
        """
        removed = 0
        for entry_lsn, _, name in self._entries():
            if entry_lsn > lsn:
                os.remove(os.path.join(self.directory, name))
                removed += 1
        return removed

    def prune(self) -> int:
        """Drop files older than the previous full checkpoint; returns count.

        Keeps the chain anchored at the newest full checkpoint plus — as a
        safety net against a torn newest full — everything back to the one
        before it.
        """
        entries = self._entries()
        fulls = [lsn for lsn, kind, _ in entries if kind == _FULL]
        if len(fulls) < 2:
            return 0
        cutoff = fulls[-2]
        removed = 0
        for lsn, _, name in entries:
            if lsn < cutoff:
                os.remove(os.path.join(self.directory, name))
                removed += 1
        return removed
