"""WAL-segment streaming and standby replay: the persistence half of replication.

The cluster layer (:mod:`repro.cluster`) ships a primary shard host's WAL to
a hot standby as *raw CRC-framed lines* — the exact bytes the primary
journaled.  This module owns the two persistence-side seams of that flow:

* :func:`iter_segment_lines` streams the durable lines of a live WAL
  (sealed **and** in-progress segments) after a given LSN, in LSN order,
  validating CRC and contiguity as it goes.  The replication sender uses it
  for catch-up when a standby attaches mid-stream.
* :class:`ReplicaApplier` is the standby replay entry point: it applies each
  shipped line through the **normal** recovery path (`process`,
  ``process_batch``, register/unregister/renormalize — the same
  :func:`~repro.persistence.recovery.apply_record` semantics that make crash
  recovery byte-identical), write-through journals the identical bytes into
  the standby's own WAL (so a promoted standby owns a log that *is* the
  durable prefix it applied and can keep journaling at the next LSN), and
  caches recent return values so a redo of an already-replicated command is
  answered from cache instead of being applied twice.

Records are applied strictly in LSN lockstep; a gap or a duplicate raises
:class:`~repro.exceptions.ReplicationError` — a lagging standby is the
sender's problem (bounded by the primary's lag window), never this module's.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.exceptions import CorruptRecordError, ReplicationError
from repro.persistence import codec
from repro.persistence.wal import WalRecord, WriteAheadLog, _segment_first_lsn

#: Cluster-only WAL record kind: a whole encoded shard state moved by the
#: rebalance path (``adopt_encoded``/``restore_encoded``).  Journaled so a
#: standby tracks state movement too; never produced by ``DurableMonitor``
#: and deliberately not understood by :func:`repro.persistence.recovery
#: .apply_record` — a cluster WAL is replayed by :class:`ReplicaApplier`.
KIND_ADOPT = "adopt"


def record_from_envelope(envelope: object) -> WalRecord:
    """Validate one decoded WAL envelope and return its record.

    Module-level twin of the private ``WriteAheadLog`` helper so replication
    code can frame-check shipped lines without holding a log instance.
    """
    if not isinstance(envelope, dict):
        raise CorruptRecordError("WAL record envelope is not an object")
    try:
        version = envelope["v"]
        lsn = envelope["lsn"]
        kind = envelope["kind"]
        data = envelope["data"]
    except KeyError as exc:
        raise CorruptRecordError(f"WAL record envelope missing {exc}") from exc
    if version != codec.CODEC_VERSION:
        raise ReplicationError(
            f"shipped WAL record codec version {version!r} is not supported"
        )
    return WalRecord(lsn=int(lsn), kind=str(kind), data=data)


def iter_segment_lines(
    wal: WriteAheadLog, after_lsn: int = 0
) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(lsn, raw_line)`` for every durable record past ``after_lsn``.

    Streams the segment files in LSN order — sealed segments first, then the
    in-progress one — re-validating each line's CRC so corruption is caught
    on the primary before it is shipped.  The caller must :meth:`flush
    <repro.persistence.wal.WriteAheadLog.flush>` first if the log is being
    appended to (buffered records are not on disk yet).  A torn line at the
    very end of the last segment ends the stream; one anywhere else, or an
    LSN gap between yielded lines, raises.
    """
    names = wal.segments()
    previous_lsn: Optional[int] = None
    for index, name in enumerate(names):
        is_last = index + 1 >= len(names)
        if not is_last and _segment_first_lsn(names[index + 1]) <= after_lsn + 1:
            continue
        path = os.path.join(wal.directory, name)
        with open(path, "rb") as handle:
            for line in handle:
                try:
                    record = record_from_envelope(codec.unpack_line(line))
                except CorruptRecordError:
                    if is_last:
                        return
                    raise CorruptRecordError(
                        f"corrupt record inside non-final WAL segment {name}"
                    )
                if record.lsn <= after_lsn:
                    continue
                if previous_lsn is not None and record.lsn != previous_lsn + 1:
                    raise ReplicationError(
                        f"WAL segment stream gap: lsn {record.lsn} follows "
                        f"{previous_lsn} in {name}"
                    )
                previous_lsn = record.lsn
                yield record.lsn, line


def replay_record_value(target, record: WalRecord, shard_id: Optional[int] = None):
    """Apply one record through the normal ingestion path, keeping its result.

    Same replay semantics as :func:`repro.persistence.recovery.apply_record`
    (which discards return values — recovery only needs the state), but the
    standby must also be able to answer a *redo* of an already-replicated
    command after promotion, so the engine's return value (the update list,
    the unregistered query, the renormalization factor) is handed back for
    the applier's result cache.
    """
    kind, data = record.kind, record.data
    if kind == codec.KIND_DOCUMENT:
        return target.process(codec.decode_document(data["doc"]))
    if kind == codec.KIND_BATCH:
        documents = [codec.decode_document(doc) for doc in data["docs"]]
        return target.process_batch(documents)
    if kind == codec.KIND_REGISTER:
        if shard_id is None or data.get("shard") == shard_id:
            register = getattr(target, "register_query", None) or target.register
            register(codec.decode_query(data["query"]))
        return None
    if kind == codec.KIND_UNREGISTER:
        if shard_id is None or data.get("shard") == shard_id:
            return target.unregister(int(data["query_id"]))
        return None
    if kind == codec.KIND_RENORMALIZE:
        return target.renormalize(float(data["origin"]))
    if kind == KIND_ADOPT:
        if data.get("op") == "restore":
            return target.restore_encoded(data["state"])
        return target.adopt_encoded(data["state"])
    raise ReplicationError(
        f"shipped WAL record {record.lsn} has unknown kind {kind!r}"
    )


_MISS = object()


class ReplicaApplier:
    """Standby-side replay: apply shipped WAL lines in strict LSN order.

    Each line is CRC-validated, write-through journaled into the standby's
    own WAL (identical bytes at the identical LSN — the standby's log is the
    durable prefix it applied), then applied through the normal replay path.
    The last ``cache_size`` return values are kept so that, after promotion,
    a router redo of a command the dead primary already replicated is
    answered from cache instead of being applied a second time (exactly-once
    application with at-least-once delivery).
    """

    def __init__(
        self,
        target,
        wal: Optional[WriteAheadLog] = None,
        shard_id: Optional[int] = None,
        cache_size: int = 1024,
    ) -> None:
        self._target = target
        self._wal = wal
        self._shard_id = shard_id
        self._cache: "OrderedDict[int, object]" = OrderedDict()
        self._cache_size = max(1, cache_size)
        #: LSN of the last applied record (resumes past an existing log).
        self.applied_lsn = wal.last_lsn if wal is not None else 0

    def apply_line(self, line: bytes) -> WalRecord:
        """Journal and apply one shipped line; returns its decoded record."""
        record = record_from_envelope(codec.unpack_line(line))
        if record.lsn != self.applied_lsn + 1:
            raise ReplicationError(
                f"replica received lsn {record.lsn}, expected "
                f"{self.applied_lsn + 1}; the replication stream has a "
                f"{'duplicate' if record.lsn <= self.applied_lsn else 'gap'}"
            )
        if self._wal is not None:
            self._wal.append_line(line, record.lsn)
        value = replay_record_value(self._target, record, shard_id=self._shard_id)
        self.applied_lsn = record.lsn
        self._cache[record.lsn] = value
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return record

    def cached_result(self, lsn: int) -> Tuple[bool, object]:
        """``(True, value)`` if the result of ``lsn`` is still cached."""
        value = self._cache.get(lsn, _MISS)
        if value is _MISS:
            return False, None
        return True, value

    def record_result(self, lsn: int, value: object) -> None:
        """Cache the result of a locally executed record (post-promotion:
        the promoted host keeps feeding the same redo cache it replayed
        into, so a second failover can still answer recent redos)."""
        self._cache[lsn] = value
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
