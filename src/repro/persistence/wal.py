"""Append-only segmented write-ahead log with group commit.

The WAL is a directory of *segments* — files named ``wal-<first_lsn>.log``
holding consecutive CRC-framed records (see :mod:`repro.persistence.codec`).
Every record carries a monotonically increasing *log sequence number* (LSN);
the segment file name is the LSN of its first record, so the segment
covering any LSN is found without opening files.

Durability contract
-------------------

``append`` buffers records in memory and the buffer is written out when it
reaches ``group_commit`` records (or on :meth:`flush`/:meth:`sync`).  A
record is *durable* once its group has been written — crash recovery
restores the longest flushed prefix of the log, never a state in between
two records.  Group commit therefore trades a bounded window of recent
events for amortized write cost, the classic WAL throughput lever.  With
``fsync=True`` every flush is additionally fsynced, extending the guarantee
from "survives the process" to "survives the OS" at a large cost per group.

Torn tails: a crash can cut the last record mid-write.  On open (and on
replay) the reader validates every record; a framing/CRC failure at the end
of the *last* segment truncates the file back to the last valid record,
while a failure anywhere else raises :class:`CorruptRecordError` — that is
real corruption, not a torn write.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.exceptions import CorruptRecordError, PersistenceError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.persistence.codec import CODEC_VERSION, pack_line, unpack_line

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


class WalRecord(NamedTuple):
    """One decoded WAL record: its sequence number, kind and payload."""

    lsn: int
    kind: str
    data: dict


def fsync_directory(path: str) -> None:
    """fsync a directory: file create/rename/remove entries are directory
    *contents* and need their own fsync to survive an OS crash."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: str, data: bytes, fsync_dir: bool = True) -> None:
    """Write a file atomically (and, by default, durably).

    Temp file + fsync + rename + directory fsync: the rename is what makes
    the write atomic, and it is a directory mutation, so the directory
    needs its own fsync — without it a commit marker (sidecar, checkpoint)
    could vanish in an OS crash even though the state it gates was durably
    compacted.  ``fsync_dir=False`` skips that directory round-trip for
    monitors that only promise to survive a killed *process*
    (``DurabilityConfig.fsync=False``), mirroring how the WAL gates its
    own directory syncs.
    """
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    if fsync_dir:
        fsync_directory(os.path.dirname(path) or ".")


def _segment_name(first_lsn: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_lsn:020d}{_SEGMENT_SUFFIX}"


def _segment_first_lsn(name: str) -> int:
    return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])


class WriteAheadLog:
    """An append-only, segmented, CRC-checked event log.

    Example::

        wal = WriteAheadLog(directory, group_commit=64)
        lsn = wal.append("doc", {"doc": encoded})
        wal.sync()                       # force the buffered group out
        for record in wal.replay(after_lsn=checkpoint_lsn):
            apply(record)
    """

    def __init__(
        self,
        directory: str,
        group_commit: int = 64,
        segment_max_bytes: int = 4 * 1024 * 1024,
        fsync: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if group_commit <= 0:
            raise PersistenceError(f"group_commit must be > 0, got {group_commit}")
        if segment_max_bytes <= 0:
            raise PersistenceError(
                f"segment_max_bytes must be > 0, got {segment_max_bytes}"
            )
        self.directory = directory
        self.group_commit = group_commit
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        #: Lap recorder for flush/fsync latency (the shared no-op unless the
        #: owning engine runs with telemetry enabled).
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Bytes removed from the last segment because of a torn tail (set
        #: while opening; recovery reports it).
        self.truncated_bytes = 0
        os.makedirs(directory, exist_ok=True)
        self._buffer: List[bytes] = []
        self._buffered_records = 0
        self._last_lsn = 0
        self._open_tail()
        if self.fsync:
            self._sync_directory()

    # ------------------------------------------------------------------ #
    # Opening and tail repair
    # ------------------------------------------------------------------ #

    def segments(self) -> List[str]:
        """Segment file names in LSN order."""
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
        ]
        names.sort(key=_segment_first_lsn)
        return names

    def _scan_segment(
        self, name: str, is_last: bool
    ) -> Tuple[List[WalRecord], int]:
        """All valid records of one segment and the byte offset they end at.

        A bad record in the last segment marks the torn tail: everything
        from its start on is ignored (and truncated by :meth:`_open_tail`).
        A bad record anywhere else raises.
        """
        path = os.path.join(self.directory, name)
        records: List[WalRecord] = []
        valid_bytes = 0
        with open(path, "rb") as handle:
            for line in handle:
                try:
                    envelope = unpack_line(line)
                    record = self._record_from_envelope(envelope)
                except CorruptRecordError:
                    if is_last:
                        break
                    raise CorruptRecordError(
                        f"corrupt record inside non-final WAL segment {name}"
                    )
                records.append(record)
                valid_bytes += len(line)
        return records, valid_bytes

    def _record_from_envelope(self, envelope: object) -> WalRecord:
        if not isinstance(envelope, dict):
            raise CorruptRecordError("WAL record envelope is not an object")
        try:
            version = envelope["v"]
            lsn = envelope["lsn"]
            kind = envelope["kind"]
            data = envelope["data"]
        except KeyError as exc:
            raise CorruptRecordError(f"WAL record envelope missing {exc}") from exc
        if version != CODEC_VERSION:
            raise PersistenceError(
                f"WAL record codec version {version!r} is not supported"
            )
        return WalRecord(lsn=int(lsn), kind=str(kind), data=data)

    def _open_tail(self) -> None:
        """Find the last durable record, repair a torn tail, position appends."""
        names = self.segments()
        if not names:
            self._active_segment = _segment_name(1)
            path = os.path.join(self.directory, self._active_segment)
            open(path, "ab").close()
            self._active_bytes = 0
            return
        # Earlier segments are validated lazily on replay; only the last can
        # hold a torn tail, and it must be repaired before appending.
        last = names[-1]
        records, valid_bytes = self._scan_segment(last, is_last=True)
        path = os.path.join(self.directory, last)
        total_bytes = os.path.getsize(path)
        if valid_bytes < total_bytes:
            self.truncated_bytes = total_bytes - valid_bytes
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
        if records:
            self._last_lsn = records[-1].lsn
        else:
            # An empty (or fully torn) trailing segment: its name is the LSN
            # its first record will carry, so the sequence resumes right
            # after the sealed/compacted prefix (first segment: 1 - 1 = 0).
            self._last_lsn = _segment_first_lsn(last) - 1
        self._active_segment = last
        self._active_bytes = valid_bytes

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 for an empty log).

        Includes records still sitting in the group-commit buffer; the
        *durable* tail is what :meth:`replay` sees after a crash.
        """
        return self._last_lsn

    def append(self, kind: str, data: dict) -> int:
        """Buffer one record; flushes automatically at the group boundary."""
        lsn = self._last_lsn + 1
        envelope = {"v": CODEC_VERSION, "lsn": lsn, "kind": kind, "data": data}
        return self.append_line(pack_line(envelope), lsn)

    def append_line(self, line: bytes, lsn: int) -> int:
        """Buffer one pre-framed record carrying ``lsn``.

        The fan-out path of a sharded durable monitor encodes each record
        once and hands the identical framed bytes to every shard's WAL —
        the logs advance in lockstep, so the caller-provided LSN must be
        exactly the next one here.
        """
        if lsn != self._last_lsn + 1:
            raise PersistenceError(
                f"append_line lsn {lsn} is not the next sequence number "
                f"({self._last_lsn + 1}); fanned-out WALs went out of lockstep"
            )
        self._last_lsn = lsn
        self._buffer.append(line)
        self._buffered_records += 1
        if self._buffered_records >= self.group_commit:
            self.flush()
        return lsn

    def flush(self) -> None:
        """Write the buffered group to the active segment (fsync if configured)."""
        if not self._buffer:
            return
        chunk = b"".join(self._buffer)
        self._buffer = []
        self._buffered_records = 0
        path = os.path.join(self.directory, self._active_segment)
        timed = self.telemetry.enabled
        started = perf_counter() if timed else 0.0
        with open(path, "ab") as handle:
            handle.write(chunk)
            handle.flush()
            if self.fsync:
                fsync_started = perf_counter() if timed else 0.0
                os.fsync(handle.fileno())
                if timed:
                    self.telemetry.observe("wal.fsync", perf_counter() - fsync_started)
        if timed:
            self.telemetry.observe("wal.flush", perf_counter() - started)
        self._active_bytes += len(chunk)
        if self._active_bytes >= self.segment_max_bytes:
            self.rotate()

    def sync(self) -> None:
        """Flush the buffer and fsync unconditionally.

        The buffered records land in the segment that is active *before*
        the flush — which may seal and rotate it — so that segment is
        fsynced as well as the (possibly new) active one.  The directory
        itself is fsynced too: file contents are worthless after an OS
        crash if the segment's directory entry was never made durable.
        """
        timed = self.telemetry.enabled
        started = perf_counter() if timed else 0.0
        target = self._active_segment
        self.flush()
        for name in {target, self._active_segment}:
            path = os.path.join(self.directory, name)
            if os.path.exists(path):
                with open(path, "ab") as handle:
                    os.fsync(handle.fileno())
        self._sync_directory()
        if timed:
            self.telemetry.observe("wal.sync", perf_counter() - started)

    def _sync_directory(self) -> None:
        """fsync the WAL directory so segment create/remove survives an OS crash."""
        fsync_directory(self.directory)

    def rotate(self) -> None:
        """Seal the active segment and start a new one at the next LSN.

        Sealed segments are what :meth:`compact` can delete; the checkpoint
        path rotates before compacting so the pre-checkpoint records do not
        share a segment with post-checkpoint ones.
        """
        self.flush()
        if self._active_bytes == 0:
            return
        self._active_segment = _segment_name(self._last_lsn + 1)
        path = os.path.join(self.directory, self._active_segment)
        open(path, "ab").close()
        self._active_bytes = 0
        if self.fsync:
            self._sync_directory()

    def truncate(self, up_to_lsn: int) -> int:
        """Physically drop every record with ``lsn > up_to_lsn`` from the tail.

        Sharded recovery clamps all per-shard logs to the shortest durable
        prefix; the clamp must reach the disk, or the logs would reopen at
        different positions — the next lockstep append would fail, and a
        later recovery would replay records past the prefix that was never
        applied.  Returns the number of records dropped (the clamp is
        reported separately from torn-tail repair, which is what
        :attr:`truncated_bytes` counts).
        """
        self.flush()
        if self._last_lsn <= up_to_lsn:
            return 0
        dropped = 0
        for name in reversed(self.segments()):
            path = os.path.join(self.directory, name)
            # Discarded bytes are never decoded — one record is one line, so
            # counting lines suffices, and damage confined to the discarded
            # suffix must not block the clamp that would remove it anyway.
            if _segment_first_lsn(name) > up_to_lsn:
                with open(path, "rb") as handle:
                    dropped += sum(1 for _ in handle)
                os.remove(path)
                continue
            # Boundary segment: keep the byte prefix of records <= up_to_lsn.
            keep_bytes = 0
            with open(path, "rb") as handle:
                for line in handle:
                    record = self._record_from_envelope(unpack_line(line))
                    keep_bytes += len(line)
                    if record.lsn == up_to_lsn:
                        break
                dropped += sum(1 for _ in handle)
            with open(path, "r+b") as handle:
                handle.truncate(keep_bytes)
                if self.fsync:
                    # The shrunk size must be durable before new records are
                    # journaled at the cut LSNs: a crash must never be able
                    # to resurrect the clamped-away tail under them.
                    os.fsync(handle.fileno())
            break
        names = self.segments()
        if names:
            self._active_segment = names[-1]
            self._active_bytes = os.path.getsize(
                os.path.join(self.directory, self._active_segment)
            )
        else:
            self._active_segment = _segment_name(up_to_lsn + 1)
            open(os.path.join(self.directory, self._active_segment), "ab").close()
            self._active_bytes = 0
        self._last_lsn = up_to_lsn
        if self.fsync:
            self._sync_directory()
        return dropped

    def close(self) -> None:
        """Flush any buffered group; the log can be reopened afterwards."""
        self.flush()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def replay(self, after_lsn: int = 0) -> Iterator[WalRecord]:
        """Yield every durable record with ``lsn > after_lsn`` in LSN order.

        Reads the segment files as they are on disk; call :meth:`flush`
        first when replaying a log that is still being appended to.
        """
        names = self.segments()
        for index, name in enumerate(names):
            if index + 1 < len(names):
                # Skip segments that end before the requested position.
                if _segment_first_lsn(names[index + 1]) <= after_lsn + 1:
                    continue
            records, _ = self._scan_segment(name, is_last=(index == len(names) - 1))
            for record in records:
                if record.lsn > after_lsn:
                    yield record

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #

    def compact(self, up_to_lsn: int) -> int:
        """Delete sealed segments whose records are all ``<= up_to_lsn``.

        The active segment is never removed.  Returns the number of
        segments deleted.
        """
        names = self.segments()
        removed = 0
        for index, name in enumerate(names):
            if name == self._active_segment or index + 1 >= len(names):
                continue
            if _segment_first_lsn(names[index + 1]) - 1 <= up_to_lsn:
                os.remove(os.path.join(self.directory, name))
                removed += 1
        return removed

    # ------------------------------------------------------------------ #
    # Context manager
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
