"""Crash recovery: checkpoint load + WAL tail replay + log compaction.

Recovery rebuilds a monitor to the exact state it held at the last durable
WAL record:

1. load the newest valid checkpoint (full + incremental chain) and restore
   it through the PR-2 ``restore()`` hooks;
2. truncate the WAL's torn tail (done by :class:`WriteAheadLog` on open);
3. replay every WAL record past the checkpoint through the *normal*
   ingestion path — ``process``/``process_batch``/register/unregister —
   so decay renormalization, window expiration, threshold propagation and
   work counters are regenerated rather than patched, which is what makes
   the recovered state byte-identical to an uninterrupted run;
4. compact: drop WAL segments wholly covered by the checkpoint.

For a sharded monitor each shard recovers independently from its own WAL
and checkpoint directory (the per-shard logs carry identical record
sequences, so shard recoveries are embarrassingly parallel); the shards are
then clamped to the shortest durable log prefix — the *common LSN* — so a
crash that interrupted the fan-out of one group commit can never leave one
shard a record ahead of another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.exceptions import RecoveryError
from repro.persistence import codec
from repro.persistence.checkpoint import CheckpointManager
from repro.persistence.wal import WalRecord, WriteAheadLog


@dataclass
class RecoveryReport:
    """What one recovery run found, replayed, repaired and reclaimed."""

    #: WAL position of the checkpoint the state was restored from (0 = none).
    checkpoint_lsn: int = 0
    #: WAL position of the recovered state (the last record applied).
    recovered_lsn: int = 0
    #: WAL records replayed through the normal ingestion path.
    replayed_records: int = 0
    #: Stream events (documents) among the replayed records.
    replayed_documents: int = 0
    #: Bytes removed from torn WAL tails.
    truncated_bytes: int = 0
    #: Records cut from longer per-shard WALs to make the clamp to the
    #: common durable prefix physical (sharded recovery only).
    clamped_records: int = 0
    #: WAL segments deleted because the checkpoint covers them.
    compacted_segments: int = 0
    #: Per-shard reports when recovering a sharded monitor.
    shards: List["RecoveryReport"] = field(default_factory=list)

    def merge_shard(self, shard_report: "RecoveryReport") -> None:
        self.shards.append(shard_report)
        self.checkpoint_lsn = max(self.checkpoint_lsn, shard_report.checkpoint_lsn)
        self.recovered_lsn = max(self.recovered_lsn, shard_report.recovered_lsn)
        self.replayed_records += shard_report.replayed_records
        self.replayed_documents = max(
            self.replayed_documents, shard_report.replayed_documents
        )
        self.truncated_bytes += shard_report.truncated_bytes
        self.compacted_segments += shard_report.compacted_segments


def apply_record(target, record: WalRecord, shard_id: Optional[int] = None) -> int:
    """Replay one WAL record against a monitor or engine shard.

    ``target`` needs the normal ingestion surface: ``process``,
    ``process_batch``, ``register_query`` (or ``register``), ``unregister``
    and ``renormalize``.  When ``shard_id`` is given, registration records
    owned by other shards are skipped — every shard's WAL carries the full
    record sequence, but each query belongs to exactly one shard.

    Returns the number of stream events the record contributed.
    """
    kind, data = record.kind, record.data
    if kind == codec.KIND_DOCUMENT:
        target.process(codec.decode_document(data["doc"]))
        return 1
    if kind == codec.KIND_BATCH:
        documents = [codec.decode_document(doc) for doc in data["docs"]]
        target.process_batch(documents)
        return len(documents)
    if kind == codec.KIND_REGISTER:
        if shard_id is None or data.get("shard") == shard_id:
            register = getattr(target, "register_query", None) or target.register
            register(codec.decode_query(data["query"]))
        return 0
    if kind == codec.KIND_UNREGISTER:
        if shard_id is None or data.get("shard") == shard_id:
            target.unregister(int(data["query_id"]))
        return 0
    if kind == codec.KIND_RENORMALIZE:
        target.renormalize(float(data["origin"]))
        return 0
    raise RecoveryError(f"WAL record {record.lsn} has unknown kind {kind!r}")


def recover_engine(
    target,
    wal: WriteAheadLog,
    checkpoints: CheckpointManager,
    shard_id: Optional[int] = None,
    up_to_lsn: Optional[int] = None,
    decode_state: Optional[Callable[[dict], dict]] = None,
    ckpt_max_lsn: Optional[int] = None,
) -> RecoveryReport:
    """Restore ``target`` from its checkpoint and replay its WAL tail.

    ``up_to_lsn`` clamps the replay (the sharded common-prefix rule);
    ``ckpt_max_lsn`` ignores checkpoints newer than the facade's commit
    marker (so a checkpoint round that crashed half-written across shards
    is disregarded as a whole); ``decode_state`` converts the encoded
    checkpoint state into whatever shape ``target.restore`` expects
    (defaults to the flat monitor shape).
    """
    report = RecoveryReport(truncated_bytes=wal.truncated_bytes)
    decode = decode_state or codec.decode_monitor_state
    loaded = checkpoints.load_latest(max_lsn=ckpt_max_lsn)
    start_lsn = 0
    if loaded is not None:
        encoded_state, checkpoint_lsn = loaded
        if up_to_lsn is not None and checkpoint_lsn > up_to_lsn:
            raise RecoveryError(
                f"checkpoint at lsn {checkpoint_lsn} is ahead of the durable "
                f"log prefix (lsn {up_to_lsn}); the WAL was damaged beyond "
                "its torn tail"
            )
        # A committed checkpoint round leaves the WAL positioned at (or
        # past) its LSN — the round flushes first and rotation names the
        # next segment checkpoint_lsn + 1 — so a shorter log means the
        # wal/ directory was lost or emptied.  Recovering anyway would
        # restart LSNs below the checkpoint and every subsequent append
        # would be invisible to later recoveries (replay filters
        # lsn <= checkpoint_lsn): silent data loss, so refuse.
        if wal.last_lsn < checkpoint_lsn:
            raise RecoveryError(
                f"checkpoint at lsn {checkpoint_lsn} is ahead of the WAL "
                f"(last lsn {wal.last_lsn}); the log was lost or emptied "
                "after the checkpoint round"
            )
        target.restore(decode(encoded_state))
        start_lsn = checkpoint_lsn
        report.checkpoint_lsn = checkpoint_lsn
    report.recovered_lsn = start_lsn
    for record in wal.replay(after_lsn=start_lsn):
        if up_to_lsn is not None and record.lsn > up_to_lsn:
            break
        if record.lsn != report.recovered_lsn + 1:
            raise RecoveryError(
                f"WAL replay gap: expected lsn {report.recovered_lsn + 1}, "
                f"found {record.lsn}; records between the checkpoint and the "
                "durable tail are missing (refusing to reconstruct a state "
                "that never existed)"
            )
        report.replayed_documents += apply_record(target, record, shard_id=shard_id)
        report.replayed_records += 1
        report.recovered_lsn = record.lsn
    # The replay must reach the durable tail.  Falling short means records
    # were lost in the middle of the history — e.g. the newest checkpoint is
    # corrupt and the WAL prefix it covered was already compacted away —
    # and the surviving checkpoint + WAL cannot prove the full state.
    tail = wal.last_lsn if up_to_lsn is None else min(wal.last_lsn, up_to_lsn)
    if report.recovered_lsn < tail:
        raise RecoveryError(
            f"recovered state ends at lsn {report.recovered_lsn} but the "
            f"durable log reaches lsn {tail}; the WAL records in between "
            "were compacted against a checkpoint that can no longer be read"
        )
    report.compacted_segments = wal.compact(start_lsn)
    return report


def scan_facade_state(
    wal: WriteAheadLog, after_lsn: int, up_to_lsn: int
) -> Tuple[int, int]:
    """Facade-level facts from ``(after_lsn, up_to_lsn]`` of one WAL.

    Returns ``(documents, next_query_id_floor)``: the stream events recorded
    in the range, and one past the highest query id registered in it.  The
    sharded facade rolls its global event count forward from the sidecar
    with the former; the latter covers queries that were registered and
    unregistered again after the sidecar was written — their ids must not be
    reissued even though no recovered shard hosts them.
    """
    documents = 0
    next_query_id = 0
    for record in wal.replay(after_lsn=after_lsn):
        if record.lsn > up_to_lsn:
            break
        if record.kind == codec.KIND_DOCUMENT:
            documents += 1
        elif record.kind == codec.KIND_BATCH:
            documents += len(record.data["docs"])
        elif record.kind == codec.KIND_REGISTER:
            next_query_id = max(next_query_id, int(record.data["query"]["i"]) + 1)
    return documents, next_query_id
