"""Durability subsystem: write-ahead logging, checkpoints, crash recovery.

The in-memory engines gained ``snapshot()``/``restore()`` hooks for shard
rebalancing in PR 2; this package promotes them into real durability:

* :mod:`repro.persistence.codec` — one versioned, deterministic encoding of
  queries, documents, engine snapshots and per-event log records;
* :mod:`repro.persistence.wal` — an append-only segmented write-ahead log
  with group commit, CRC-framed records and torn-tail repair;
* :mod:`repro.persistence.checkpoint` — full + incremental checkpoints
  taken from the snapshot hooks without stopping ingestion;
* :mod:`repro.persistence.recovery` — checkpoint load + WAL-tail replay
  through the normal processing path, yielding replay-exact state;
* :mod:`repro.persistence.durable` — the :class:`DurableMonitor` facade
  that journals a :class:`~repro.core.monitor.ContinuousMonitor` or a
  :class:`~repro.runtime.sharded.ShardedMonitor` (one WAL per shard).

Quickstart::

    durability = DurabilityConfig(directory=state_dir, group_commit=1)
    monitor = DurableMonitor.open(durability, MonitorConfig(algorithm="mrio"))
    ...
    monitor, report = DurableMonitor.recover(durability)   # after a crash
"""

from repro.persistence.checkpoint import CheckpointManager
from repro.persistence.codec import CODEC_VERSION
from repro.persistence.durable import DurabilityConfig, DurableMonitor
from repro.persistence.recovery import RecoveryReport, recover_engine
from repro.persistence.wal import WalRecord, WriteAheadLog

__all__ = [
    "CODEC_VERSION",
    "CheckpointManager",
    "DurabilityConfig",
    "DurableMonitor",
    "RecoveryReport",
    "WalRecord",
    "WriteAheadLog",
    "recover_engine",
]
