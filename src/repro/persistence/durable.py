"""The durable monitoring facade: a monitor that survives being killed.

:class:`DurableMonitor` wraps a :class:`~repro.core.monitor.ContinuousMonitor`
(or, with ``n_shards > 1``, a :class:`~repro.runtime.sharded.ShardedMonitor`)
and journals every state-changing operation — document arrivals, ingestion
batches, query registration/unregistration, explicit decay rebases — to a
write-ahead log before taking periodic checkpoints from the in-memory
snapshot hooks.  Killing the process at an arbitrary event and calling
:meth:`DurableMonitor.recover` reproduces the state of the longest durable
log prefix *byte-identically*: top-k sets, scores, thresholds, decay origin,
live window and work counters all match an uninterrupted run.

Sharded monitors keep **one WAL and one checkpoint directory per shard**,
each carrying the full record sequence with identical LSNs.  Recovery
restores every shard independently (trivially parallelizable across
processes) and clamps all shards to the shortest durable prefix, so a crash
mid-fan-out can never leave shards at different stream positions.  A tiny
facade sidecar — written atomically after each checkpoint round — serves as
the round's commit marker and carries the facade-level statistics.

On-disk layout under ``DurabilityConfig.directory``::

    meta.json            # immutable identity: mode, shards, engine config
    facade.json          # checkpoint commit marker + facade statistics
    wal/                 # single-monitor WAL segments
    checkpoints/         # single-monitor checkpoints
    shard-0000/wal/ ...  # per-shard WAL + checkpoints (sharded mode)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import MonitorConfig
from repro.core.monitor import ContinuousMonitor
from repro.core.results import BatchUpdate, ResultEntry, ResultUpdate
from repro.documents.document import Document
from repro.exceptions import (
    ConfigurationError,
    CorruptRecordError,
    PersistenceError,
    RecoveryError,
    WorkerError,
)
from repro.metrics.counters import EventCounters
from repro.persistence import codec
from repro.persistence.checkpoint import CheckpointManager
from repro.persistence.recovery import (
    RecoveryReport,
    recover_engine,
    scan_facade_state,
)
from repro.persistence.wal import WriteAheadLog, atomic_write
from repro.queries.query import Query
from repro.runtime.sharded import ShardedMonitor
from repro.types import QueryId, SparseVector

_META_NAME = "meta.json"
_SIDECAR_NAME = "facade.json"

_CONFIG_FIELDS = (
    "algorithm",
    "ub_variant",
    "lam",
    "max_amplification",
    "window_horizon",
    "default_k",
)


@dataclass
class DurabilityConfig:
    """Knobs of the durability subsystem.

    Attributes
    ----------
    directory:
        Root of the on-disk state (created if missing).
    group_commit:
        WAL records buffered per commit group.  1 makes every event durable
        immediately; larger groups amortize the write cost and bound the
        events a crash can lose to the last unflushed group.
    segment_max_bytes:
        WAL segment rotation threshold.
    fsync:
        ``False`` (default) flushes each group to the OS — state survives a
        killed *process*.  ``True`` additionally fsyncs every flush, paying
        a disk round-trip per group to also survive an OS crash.
    checkpoint_interval:
        Events between automatic checkpoints (``None`` disables them;
        :meth:`DurableMonitor.checkpoint` stays available).
    full_checkpoint_every:
        Every Nth checkpoint is written full; the others are incremental
        deltas.  A decay renormalization promotes the next checkpoint to
        full automatically (after a rescale *every* result heap differs, so
        a delta would be a full copy in disguise).
    """

    directory: str
    group_commit: int = 256
    segment_max_bytes: int = 4 * 1024 * 1024
    fsync: bool = False
    checkpoint_interval: Optional[int] = 2000
    full_checkpoint_every: int = 4

    def __post_init__(self) -> None:
        if self.group_commit <= 0:
            raise ConfigurationError(
                f"group_commit must be > 0, got {self.group_commit}"
            )
        if self.segment_max_bytes <= 0:
            raise ConfigurationError(
                f"segment_max_bytes must be > 0, got {self.segment_max_bytes}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval must be > 0 or None, got {self.checkpoint_interval}"
            )
        if self.full_checkpoint_every <= 0:
            raise ConfigurationError(
                f"full_checkpoint_every must be > 0, got {self.full_checkpoint_every}"
            )


def _decode_shard_state(encoded: Dict[str, object]) -> Dict[str, object]:
    """Encoded checkpoint -> the nested shape ``EngineShard.restore`` takes."""
    state = codec.decode_monitor_state(encoded)
    wrapped: Dict[str, object] = {}
    if "expiration" in state:
        wrapped["expiration"] = state.pop("expiration")
    wrapped["engine"] = state
    return wrapped


class _WorkerWal:
    """Drives a per-shard WAL owned by the shard's worker process.

    With the ``"processes"`` executor each shard lives in a worker; its WAL
    is opened and appended **worker-side** (the ``wal_*`` commands of the
    shard protocol), so journal I/O runs in parallel with the shard work
    instead of serializing in the parent.  This proxy exposes the slice of
    the :class:`WriteAheadLog` surface the durable facade drives during
    normal operation; recovery — which must *read* the log — always runs
    against parent-side :class:`WriteAheadLog` objects before ownership is
    handed to the workers (:meth:`DurableMonitor._activate_worker_wals`).

    The durable LSN cursor is tracked parent-side: the parent issues every
    LSN, and a worker that dies between commands simply loses its buffered
    group — the same crash window an in-process shard's WAL has.
    """

    def __init__(self, handle, directory: str, durability: "DurabilityConfig") -> None:
        self._handle = handle
        self.directory = directory
        self._last_lsn = int(
            handle.wal_open(
                directory,
                durability.group_commit,
                durability.segment_max_bytes,
                durability.fsync,
            )
        )

    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    def append_line(self, line: bytes, lsn: int) -> int:
        self._handle.wal_append(line, lsn)
        self._last_lsn = lsn
        return lsn

    def flush(self) -> None:
        self._handle.wal_flush()

    def sync(self) -> None:
        self._handle.wal_sync()

    # Split-phase halves of append/flush/sync: the durable facade submits
    # one command to *every* worker before collecting any ack
    # (``DurableMonitor._pipelined_wal_op``), so journal I/O overlaps
    # across shards instead of paying one blocking round trip per shard
    # per record.

    def submit(self, command: str, *args: object) -> None:
        self._handle.submit(command, *args)

    def collect(self) -> None:
        self._handle.collect()

    def note_appended(self, lsn: int) -> None:
        """Advance the parent-side LSN cursor after a pipelined append."""
        self._last_lsn = lsn

    def rotate(self) -> None:
        self._handle.wal_rotate()

    def compact(self, up_to_lsn: int) -> int:
        return self._handle.wal_compact(up_to_lsn)

    def close(self) -> None:
        try:
            self._handle.wal_close()
        except WorkerError:
            # A dead worker's log is already exactly as durable as its last
            # flush; there is nothing left to close on this side.
            pass


class DurableMonitor:
    """A crash-safe monitor: WAL + checkpoints around the in-memory engine.

    Example::

        durability = DurabilityConfig(directory="/var/lib/repro", group_commit=1)
        monitor = DurableMonitor.open(durability, MonitorConfig(algorithm="mrio"))
        monitor.register_vector({7: 0.8, 9: 0.6}, k=10)
        monitor.process(document)            # applied, then journaled
        # ... kill -9 ...
        monitor, report = DurableMonitor.recover(durability)
    """

    def __init__(
        self,
        durability: DurabilityConfig,
        config: Optional[MonitorConfig] = None,
        n_shards: int = 1,
        policy: str = "hash",
        executor: str = "serial",
        vectorizer=None,
        _recovering: bool = False,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.durability = durability
        self.config = config or MonitorConfig()
        root = durability.directory
        meta_path = os.path.join(root, _META_NAME)
        if not _recovering and os.path.exists(meta_path):
            raise PersistenceError(
                f"{root} already holds durable monitor state; use "
                "DurableMonitor.open() or DurableMonitor.recover()"
            )
        os.makedirs(root, exist_ok=True)

        self._sharded = n_shards > 1
        if self._sharded:
            self._inner: Union[ContinuousMonitor, ShardedMonitor] = ShardedMonitor(
                self.config,
                n_shards=n_shards,
                policy=policy,
                executor=executor,
                vectorizer=vectorizer,
            )
            shard_dirs = [
                os.path.join(root, f"shard-{index:04d}") for index in range(n_shards)
            ]
        else:
            self._inner = ContinuousMonitor(self.config, vectorizer=vectorizer)
            shard_dirs = [root]
        self._wals = [
            WriteAheadLog(
                os.path.join(shard_dir, "wal"),
                group_commit=durability.group_commit,
                segment_max_bytes=durability.segment_max_bytes,
                fsync=durability.fsync,
            )
            for shard_dir in shard_dirs
        ]
        # Router-side WALs report flush/fsync latency into the engine
        # telemetry they journal for.  Shard-resident executors expose
        # handles without a local recorder — their WAL ownership moves into
        # the workers, which wire telemetry up on their own side.
        if self._sharded:
            for wal, shard in zip(self._wals, self._inner.shards):  # type: ignore[union-attr]
                telemetry = getattr(shard, "telemetry", None)
                if telemetry is not None:
                    wal.telemetry = telemetry
        else:
            for wal in self._wals:
                wal.telemetry = self._inner.telemetry  # type: ignore[union-attr]
        self._checkpoints = [
            CheckpointManager(
                os.path.join(shard_dir, "checkpoints"), fsync=durability.fsync
            )
            for shard_dir in shard_dirs
        ]
        #: True once per-shard WAL ownership moved into the shard workers
        #: (sharded + processes executor); the journaling fan-out is then
        #: pipelined over the worker pipes.
        self._worker_walled = False
        self._events_since_checkpoint = 0
        self._checkpoints_taken = 0
        self._force_full_checkpoint = False
        #: LSN the most recent committed checkpoint round covers (0 = none);
        #: ``close(checkpoint=True)`` skips its final round when the WAL has
        #: not advanced past this.
        self._last_checkpoint_lsn = 0
        self._closed = False
        self._failed = False
        #: Per-event journaling seconds, aligned with the *tail* of the
        #: engine's own response_times (replayed events have no journal
        #: cost); see :attr:`response_times`.
        self._journal_times: List[float] = []
        self._last_journal_seconds = 0.0
        if not _recovering:
            self._write_meta(meta_path)
            self._activate_worker_wals()
            self._attach_renormalize_listener()

    # ------------------------------------------------------------------ #
    # Construction: open / recover
    # ------------------------------------------------------------------ #

    @classmethod
    def open(
        cls,
        durability: DurabilityConfig,
        config: Optional[MonitorConfig] = None,
        **kwargs,
    ) -> "DurableMonitor":
        """Recover an existing durable monitor, or create a fresh one.

        Accepts the constructor's keyword arguments, so the create-or-
        recover call looks the same on every start.  When the directory
        already holds state, the topology (``n_shards``, ``policy``) is
        read back from its metadata; passing either merely cross-checks
        it against the stored value (a mismatch raises — the on-disk
        record sequence only replays under the original topology).
        """
        if not os.path.exists(os.path.join(durability.directory, _META_NAME)):
            return cls(durability, config, **kwargs)
        meta = cls._read_meta(durability.directory)
        stored_shards = int(meta["n_shards"])  # type: ignore[arg-type]
        requested_shards = kwargs.pop("n_shards", None)
        if requested_shards is not None and requested_shards != stored_shards:
            raise RecoveryError(
                f"topology mismatch on 'n_shards': directory was written "
                f"with {stored_shards!r}, caller supplied {requested_shards!r}"
            )
        requested_policy = kwargs.pop("policy", None)
        # A single-shard monitor has no router; the constructor ignored the
        # policy at creation, so the identical call must keep working here.
        if (
            requested_policy is not None
            and stored_shards > 1
            and requested_policy != str(meta["policy"])
        ):
            raise RecoveryError(
                f"topology mismatch on 'policy': directory was written "
                f"with {meta['policy']!r}, caller supplied {requested_policy!r}"
            )
        monitor, _ = cls.recover(durability, config, **kwargs)
        return monitor

    @classmethod
    def recover(
        cls,
        durability: DurabilityConfig,
        config: Optional[MonitorConfig] = None,
        executor: str = "serial",
        vectorizer=None,
    ) -> Tuple["DurableMonitor", RecoveryReport]:
        """Rebuild a monitor from its directory; returns it with a report.

        The engine configuration and topology are read back from the
        directory's metadata; passing ``config`` merely cross-checks it
        against what the state was written with (a mismatch raises — the
        on-disk scores are only meaningful under the original scoring
        configuration).
        """
        meta = cls._read_meta(durability.directory)
        stored_config = MonitorConfig(**meta["config"])  # type: ignore[arg-type]
        if config is not None:
            for field_name in _CONFIG_FIELDS:
                if getattr(config, field_name) != getattr(stored_config, field_name):
                    raise RecoveryError(
                        f"config mismatch on {field_name!r}: directory was written "
                        f"with {getattr(stored_config, field_name)!r}, caller "
                        f"supplied {getattr(config, field_name)!r}"
                    )
        monitor = cls(
            durability,
            stored_config,
            n_shards=int(meta["n_shards"]),  # type: ignore[arg-type]
            policy=str(meta["policy"]),
            executor=executor,
            vectorizer=vectorizer,
            _recovering=True,
        )
        report = monitor._recover_state()
        monitor._activate_worker_wals()
        monitor._attach_renormalize_listener()
        return monitor, report

    def _recover_state(self) -> RecoveryReport:
        sidecar = self._read_sidecar()
        self._last_checkpoint_lsn = int(sidecar["lsn"])
        if not self._sharded:
            # The sidecar gates checkpoints in single mode too: a crash
            # between the checkpoint write and the sidecar write must roll
            # the round back, or the replay would start past register/
            # unregister records whose ids the stale sidecar cannot prove
            # retired (and could therefore reissue).
            report = recover_engine(
                self._inner,
                self._wals[0],
                self._checkpoints[0],
                ckpt_max_lsn=int(sidecar["lsn"]),
            )
            self._checkpoints[0].purge_newer(int(sidecar["lsn"]))
            self._inner.ensure_next_query_id(int(sidecar["next_query_id"]))
            return report
        inner: ShardedMonitor = self._inner  # type: ignore[assignment]
        report = RecoveryReport()
        # Clamp every shard to the shortest durable prefix: a crash while a
        # commit group fanned out may have reached only some of the WALs.
        common_lsn = min(wal.last_lsn for wal in self._wals)
        sidecar_lsn = int(sidecar["lsn"])
        for shard, wal, checkpoints in zip(
            inner.shards, self._wals, self._checkpoints
        ):
            report.merge_shard(
                recover_engine(
                    shard,
                    wal,
                    checkpoints,
                    shard_id=shard.shard_id,
                    up_to_lsn=common_lsn,
                    decode_state=_decode_shard_state,
                    ckpt_max_lsn=sidecar_lsn,
                )
            )
        # Every shard recovered: make the clamp physical.  Records past the
        # common prefix are cut from the longer logs so appends resume in
        # lockstep from the same LSN everywhere and no later recovery can
        # replay records the clamped state never applied.  Deliberately
        # *after* the per-shard recoveries — a recovery that is going to
        # fail (a checkpoint ahead of a damaged log, say) must not destroy
        # the healthy shards' tails first; until this point the clamp is
        # only the logical ``up_to_lsn`` bound, so a failed recover() leaves
        # the directory exactly as the crash did and can be retried after
        # repair.
        report.clamped_records = sum(
            wal.truncate(common_lsn) for wal in self._wals
        )
        # Same deferral for checkpoints: orphans of a rolled-back round
        # (newer than the commit marker) must not splice into a future
        # incremental chain.
        for manager in self._checkpoints:
            manager.purge_newer(sidecar_lsn)
        inner.rebuild_router()
        replayed_documents, next_query_id_floor = scan_facade_state(
            self._wals[0], after_lsn=sidecar_lsn, up_to_lsn=common_lsn
        )
        documents = int(sidecar["documents_processed"]) + replayed_documents
        retired = EventCounters()
        retired.restore(sidecar["retired_counters"])  # type: ignore[arg-type]
        inner.adopt_statistics(documents, retired)
        # The floor from the WAL covers ids of queries registered and
        # unregistered again after the sidecar (no shard hosts them, the
        # replay targets shards directly); the sidecar covers everything
        # before it.
        inner.ensure_next_query_id(
            max(int(sidecar["next_query_id"]), next_query_id_floor)
        )
        return report

    def _activate_worker_wals(self) -> None:
        """Hand per-shard WAL ownership to the shard workers.

        Only applies to a sharded monitor whose executor is shard-resident
        (``"processes"``).  The parent-side :class:`WriteAheadLog` objects
        did the open-time work that needs *reading* — torn-tail repair and,
        on recovery, replay and the physical common-prefix clamp — and are
        then closed; from here on each worker appends to the log it owns,
        where its shard lives.  Recovery rehydrates workers first, then
        calls this, so appends resume worker-side from the recovered LSN.
        """
        if not self._sharded:
            return
        if not getattr(self._inner.executor, "shard_resident", False):  # type: ignore[union-attr]
            return
        activated: List[_WorkerWal] = []
        for shard, wal in zip(self._inner.shards, self._wals):  # type: ignore[union-attr]
            wal.close()
            activated.append(_WorkerWal(shard, wal.directory, self.durability))
        self._wals = activated  # type: ignore[assignment]
        self._worker_walled = True

    # ------------------------------------------------------------------ #
    # Metadata and sidecar
    # ------------------------------------------------------------------ #

    def _write_meta(self, path: str) -> None:
        meta = {
            "version": codec.CODEC_VERSION,
            "mode": "sharded" if self._sharded else "single",
            "n_shards": self._inner.n_shards if self._sharded else 1,  # type: ignore[union-attr]
            "policy": self._inner.router.policy.name if self._sharded else "hash",  # type: ignore[union-attr]
            "config": {
                field_name: getattr(self.config, field_name)
                for field_name in _CONFIG_FIELDS
            },
        }
        atomic_write(path, codec.pack_line(meta), fsync_dir=self.durability.fsync)

    @staticmethod
    def _read_meta(root: str) -> Dict[str, object]:
        path = os.path.join(root, _META_NAME)
        try:
            with open(path, "rb") as handle:
                meta = codec.unpack_line(handle.read())
        except FileNotFoundError as exc:
            raise RecoveryError(f"{root} holds no durable monitor state") from exc
        except CorruptRecordError as exc:
            raise RecoveryError(f"{path} is corrupt: {exc}") from exc
        if not isinstance(meta, dict) or meta.get("version") != codec.CODEC_VERSION:
            raise RecoveryError(f"{path} has an unsupported format version")
        return meta

    def _sidecar_path(self) -> str:
        return os.path.join(self.durability.directory, _SIDECAR_NAME)

    def _write_sidecar(self, lsn: int) -> None:
        if self._sharded:
            inner: ShardedMonitor = self._inner  # type: ignore[assignment]
            # statistics.documents is the facade's own event count; the
            # retired counters are facade-internal (rebalancing history).
            documents = inner.statistics.documents
            retired = inner._retired_counters.snapshot()
        else:
            documents = 0
            retired = EventCounters().snapshot()
        sidecar = {
            "version": codec.CODEC_VERSION,
            "lsn": lsn,
            "next_query_id": self._inner.next_query_id,
            "documents_processed": documents,
            "retired_counters": retired,
        }
        atomic_write(
            self._sidecar_path(), codec.pack_line(sidecar),
            fsync_dir=self.durability.fsync,
        )

    def _read_sidecar(self) -> Dict[str, object]:
        try:
            with open(self._sidecar_path(), "rb") as handle:
                sidecar = codec.unpack_line(handle.read())
        except FileNotFoundError:
            return {
                "lsn": 0,
                "next_query_id": 0,
                "documents_processed": 0,
                "retired_counters": EventCounters().snapshot(),
            }
        except CorruptRecordError as exc:
            raise RecoveryError(f"facade sidecar is corrupt: {exc}") from exc
        if not isinstance(sidecar, dict):
            raise RecoveryError("facade sidecar is malformed")
        if sidecar.get("version") != codec.CODEC_VERSION:
            raise RecoveryError(
                f"facade sidecar format version {sidecar.get('version')!r} "
                "is not supported"
            )
        return sidecar

    def _attach_renormalize_listener(self) -> None:
        # All shards renormalize identically; one listener suffices.  The
        # shard-level hook covers process-resident shards too (the worker
        # ships rebase notifications back with its replies).
        if self._sharded:
            self._inner.shards[0].add_renormalize_listener(self._on_renormalize)  # type: ignore[union-attr]
        else:
            self._inner.algorithm.add_renormalize_listener(self._on_renormalize)  # type: ignore[union-attr]

    def _on_renormalize(self, new_origin: float, factor: float) -> None:
        # A rescale touches every stored score; an incremental checkpoint
        # after it would be a full copy in disguise, so promote the next one.
        self._force_full_checkpoint = True

    # ------------------------------------------------------------------ #
    # Journaling
    # ------------------------------------------------------------------ #

    def _ensure_usable(self) -> None:
        if self._failed:
            raise PersistenceError(
                "durable monitor is failed: journaling raised after the "
                "in-memory state was mutated, so memory and log have "
                "diverged; discard this object and recover() from disk"
            )

    def _apply_inner(self, method: str, *args: object, **kwargs: object):
        """Run one state-changing op on the wrapped monitor.

        A :class:`WorkerError` out of the fan-out poisons the monitor: the
        dead shard's task failed, but per the executor contract its sibling
        shards ran to completion — they *applied* the event while nothing
        was journaled, so live reads would serve state the log cannot prove
        and recovery will discard.  Same divergence as a failed append,
        handled the same way.  Uniform engine-side rejections (a stale
        arrival, a duplicate query id) mutate nothing anywhere and pass
        through without poisoning.
        """
        try:
            return getattr(self._inner, method)(*args, **kwargs)
        except WorkerError:
            self._failed = True
            raise

    def _append(self, record: Tuple[str, Dict[str, object]]) -> int:
        """Journal one record on every WAL (encoded and framed exactly once).

        The per-shard logs advance in lockstep, so the envelope — including
        its LSN — is identical everywhere; only the buffered bytes fan out.

        The engine has already applied the operation by the time it is
        journaled, so a write failure here leaves the in-memory state ahead
        of the log: the monitor is marked failed and refuses every further
        state-changing call — silently journaling *later* events on top of
        the gap would make recovery reconstruct a different history.
        """
        kind, data = record
        started = time.perf_counter()
        lsn = self._wals[0].last_lsn + 1
        line = codec.pack_line(
            {"v": codec.CODEC_VERSION, "lsn": lsn, "kind": kind, "data": data}
        )
        try:
            if self._worker_walled:
                self._pipelined_wal_op("wal_append", line, lsn)
                for wal in self._wals:
                    wal.note_appended(lsn)  # type: ignore[attr-defined]
            else:
                for wal in self._wals:
                    wal.append_line(line, lsn)
        except Exception:
            self._failed = True
            raise
        self._last_journal_seconds = time.perf_counter() - started
        return lsn

    def _pipelined_wal_op(self, command: str, *args: object) -> None:
        """One WAL command on every worker-owned log: submit all, then collect.

        The submit loop finishes before any ack is awaited, so the journal
        I/O of all shards overlaps — this is what makes worker-side WALs
        parallel rather than n_shards sequential round trips.  Delegated to
        the process executor's ``run_shards`` fan-out (each
        :class:`_WorkerWal` exposes the ``submit``/``collect`` halves it
        drives), so the failure contract — collect every reply, raise the
        first failure in shard order — lives in exactly one place.
        """
        self._inner.executor.run_shards(self._wals, command, args)  # type: ignore[union-attr]

    def _after_events(self, count: int) -> None:
        self._events_since_checkpoint += count
        interval = self.durability.checkpoint_interval
        if interval is not None and self._events_since_checkpoint >= interval:
            self.checkpoint()

    def _log_register(self, query: Query) -> None:
        shard = None
        if self._sharded:
            shard = self._inner.router.shard_of(query.query_id)  # type: ignore[union-attr]
        self._append(codec.register_record(query, shard))

    # ------------------------------------------------------------------ #
    # Query registration (monitor-compatible, journaled)
    # ------------------------------------------------------------------ #

    def register_query(self, query: Query) -> Query:
        self._ensure_usable()
        registered = self._apply_inner("register_query", query)
        self._log_register(registered)
        return registered

    def register_queries(self, queries: Iterable[Query]) -> List[Query]:
        return [self.register_query(query) for query in queries]

    def register_vector(
        self, vector: SparseVector, k: Optional[int] = None, user: Optional[str] = None
    ) -> Query:
        self._ensure_usable()
        query = self._apply_inner("register_vector", vector, k=k, user=user)
        self._log_register(query)
        return query

    def register_keywords(
        self,
        keywords: Iterable[str],
        k: Optional[int] = None,
        user: Optional[str] = None,
    ) -> Query:
        self._ensure_usable()
        query = self._apply_inner("register_keywords", keywords, k=k, user=user)
        self._log_register(query)
        return query

    def unregister(self, query_id: QueryId) -> Query:
        self._ensure_usable()
        shard = None
        if self._sharded:
            shard = self._inner.router.shard_of(query_id)  # type: ignore[union-attr]
        query = self._apply_inner("unregister", query_id)
        self._append(codec.unregister_record(query_id, shard))
        return query

    @property
    def num_queries(self) -> int:
        return self._inner.num_queries

    # ------------------------------------------------------------------ #
    # Stream processing (journaled)
    # ------------------------------------------------------------------ #

    def process(self, document: Document) -> List[ResultUpdate]:
        """Process one stream event and journal it.

        The engine applies the event first (its stream-order validation
        must reject a bad event *before* anything is logged), then the
        record joins the current commit group; it becomes durable when the
        group flushes.
        """
        self._ensure_usable()
        updates = self._apply_inner("process", document)
        self._append(codec.document_record(document))
        self._journal_times.append(self._last_journal_seconds)
        self._after_events(1)
        return updates

    def process_text(self, doc_id: int, text: str, arrival_time: float) -> List[ResultUpdate]:
        vectorizer = self._inner.vectorizer
        if vectorizer is None:
            raise ConfigurationError(
                "process_text requires a Vectorizer; pass one to the monitor"
            )
        vector = vectorizer.vectorize_text(text)
        if not vector:
            return []
        document = Document(
            doc_id=doc_id, vector=vector, arrival_time=arrival_time, text=text
        )
        return self.process(document)

    def process_stream(
        self, documents: Iterable[Document], limit: Optional[int] = None
    ) -> List[ResultUpdate]:
        updates: List[ResultUpdate] = []
        for count, document in enumerate(documents):
            if limit is not None and count >= limit:
                break
            updates.extend(self.process(document))
        return updates

    def process_batch(self, documents: Sequence[Document]) -> List[BatchUpdate]:
        """Process an arrival-ordered batch as one unit and one WAL record."""
        self._ensure_usable()
        docs = documents if isinstance(documents, list) else list(documents)
        updates = self._apply_inner("process_batch", docs)
        if docs:
            self._append(codec.batch_record(docs))
            # Mean-preserving per-event attribution, mirroring how the
            # engine attributes batch processing time.
            per_event = self._last_journal_seconds / len(docs)
            self._journal_times.extend([per_event] * len(docs))
            self._after_events(len(docs))
        return updates

    def process_batches(
        self, batches: Iterable[Sequence[Document]]
    ) -> List[BatchUpdate]:
        updates: List[BatchUpdate] = []
        for batch in batches:
            updates.extend(self.process_batch(batch))
        return updates

    def renormalize(self, new_origin: float) -> float:
        """Explicitly rebase the decay origin; journaled as its own record."""
        self._ensure_usable()
        factor = self._apply_inner("renormalize", new_origin)
        self._append(codec.renormalize_record(new_origin))
        return factor

    # ------------------------------------------------------------------ #
    # Durability control
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Force the current commit group out on every WAL."""
        self._ensure_usable()
        try:
            if self._worker_walled:
                self._pipelined_wal_op("wal_flush")
            else:
                for wal in self._wals:
                    wal.flush()
        except Exception:
            # A failed flush drops a buffered group whose LSNs were already
            # issued — same divergence as a failed append.
            self._failed = True
            raise

    def sync(self) -> None:
        """Flush and fsync every WAL (durable even across an OS crash)."""
        self._ensure_usable()
        try:
            if self._worker_walled:
                self._pipelined_wal_op("wal_sync")
            else:
                for wal in self._wals:
                    wal.sync()
        except Exception:
            self._failed = True
            raise

    def checkpoint(self, full: Optional[bool] = None) -> int:
        """Capture the engine state(s) at the current WAL position.

        Returns the LSN the checkpoint covers.  ``full`` forces the kind;
        by default every ``full_checkpoint_every``-th checkpoint is full
        and the rest are incremental (a renormalization since the last
        checkpoint also forces full).  The WAL prefix a successful
        checkpoint round covers is rotated and compacted away.
        """
        self._ensure_usable()
        if full is None:
            full = (
                self._force_full_checkpoint
                or self._checkpoints_taken % self.durability.full_checkpoint_every == 0
            )
        # The WAL must be durable through the captured state's position
        # before the checkpoint claims to cover it.
        if self.durability.fsync:
            self.sync()
        else:
            self.flush()
        lsn = self._wals[0].last_lsn
        if self._sharded:
            # One state-capture path for local and process-resident shards:
            # the codec-encoded form the shard vends (worker-side encoded
            # when the shard lives in a worker) is written verbatim.  The
            # capture fans out through the executor, so process-resident
            # shards encode their states concurrently instead of one
            # blocking round trip at a time.
            inner: ShardedMonitor = self._inner  # type: ignore[assignment]
            encoded_states = inner.executor.run_shards(
                inner.shards, "snapshot_encoded", ()
            )
            for manager, encoded in zip(self._checkpoints, encoded_states):
                manager.write(encoded, lsn, full)  # type: ignore[arg-type]
        else:
            state = self._inner.snapshot()  # type: ignore[union-attr]
            self._checkpoints[0].write(codec.encode_monitor_state(state), lsn, full)
        # The sidecar is the commit marker of the whole round: recovery
        # ignores newer per-shard checkpoints until it exists.
        self._write_sidecar(lsn)
        if self._worker_walled:
            self._pipelined_wal_op("wal_rotate")
            self._pipelined_wal_op("wal_compact", lsn)
        else:
            for wal in self._wals:
                wal.rotate()
                wal.compact(lsn)
        for manager in self._checkpoints:
            manager.prune()
        self._events_since_checkpoint = 0
        self._checkpoints_taken += 1
        self._force_full_checkpoint = False
        self._last_checkpoint_lsn = lsn
        return lsn

    def close(self, checkpoint: bool = False) -> None:
        """Flush outstanding commit groups and release the engine.

        ``checkpoint=True`` takes one final checkpoint round before closing
        (skipped when the monitor is failed or has journaled nothing since
        the last round) — a graceful shutdown then restarts from a
        checkpoint instead of replaying the whole WAL tail.  Idempotent.
        """
        if self._closed:
            return
        checkpoint_failure: Optional[BaseException] = None
        if checkpoint and not self._failed and self.last_lsn > self._last_checkpoint_lsn:
            try:
                self.checkpoint()
            except Exception as exc:
                # A failed final checkpoint must not leave the WAL handles
                # open: mark the monitor failed, finish the close, and
                # re-raise — the WAL still holds the full record sequence,
                # so recovery replays the tail instead of loading the
                # checkpoint that never committed.
                self._failed = True
                checkpoint_failure = exc
        self._closed = True
        for wal in self._wals:
            wal.close()
        self._inner.close()
        if checkpoint_failure is not None:
            raise checkpoint_failure

    def __enter__(self) -> "DurableMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Results and diagnostics (delegated)
    # ------------------------------------------------------------------ #

    @property
    def monitor(self) -> Union[ContinuousMonitor, ShardedMonitor]:
        """The wrapped in-memory monitor (read-mostly escape hatch)."""
        return self._inner

    @property
    def last_lsn(self) -> int:
        """WAL position of the most recently journaled record."""
        return self._wals[0].last_lsn

    @property
    def next_query_id(self) -> int:
        """The id the next ``register_vector``/``register_keywords`` will use."""
        return self._inner.next_query_id

    def top_k(self, query_id: QueryId) -> List[ResultEntry]:
        return self._inner.top_k(query_id)

    def threshold(self, query_id: QueryId) -> float:
        return self._inner.threshold(query_id)

    def all_results(self) -> Dict[QueryId, List[ResultEntry]]:
        return self._inner.all_results()

    def add_update_listener(self, listener) -> None:
        self._inner.add_update_listener(listener)

    @property
    def statistics(self) -> EventCounters:
        return self._inner.statistics

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The wrapped monitor's merged telemetry (empty when disabled).

        ``wal.flush``/``wal.fsync`` laps land here too: every WAL of this
        facade reports into the engine telemetry it journals for.
        """
        return self._inner.telemetry_snapshot()

    @property
    def response_times(self) -> List[float]:
        """Per-event seconds *including* journaling.

        The engine's own samples cover the processing work; the journaling
        cost of events that went through this facade is added onto the tail
        (events replayed by recovery carry engine time only — their journal
        cost was paid before the crash).
        """
        samples = list(self._inner.response_times)
        journal = self._journal_times[-len(samples) :] if samples else []
        offset = len(samples) - len(journal)
        for index, extra in enumerate(journal):
            samples[offset + index] += extra
        return samples

    def reset_statistics(self) -> None:
        """Zero counters and timing samples (e.g. after a warm-up phase)."""
        self._journal_times.clear()
        if self._sharded:
            self._inner.reset_statistics()  # type: ignore[union-attr]
        else:
            algorithm = self._inner.algorithm  # type: ignore[union-attr]
            algorithm.counters.reset()
            algorithm.response_times.clear()
            algorithm.batch_response_times.clear()

    @property
    def live_window_size(self) -> Optional[int]:
        return self._inner.live_window_size

    @property
    def last_arrival(self) -> Optional[float]:
        """Arrival time of the most recent event (``None`` before the first)."""
        return self._inner.last_arrival

    def describe(self) -> Dict[str, object]:
        info = self._inner.describe()
        info["durability"] = {
            "directory": self.durability.directory,
            "group_commit": self.durability.group_commit,
            "fsync": self.durability.fsync,
            "checkpoint_interval": self.durability.checkpoint_interval,
            "last_lsn": self.last_lsn,
        }
        return info
