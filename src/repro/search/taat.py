"""Term-at-a-time (TAAT) top-k evaluation over the document index."""

from __future__ import annotations

from typing import Dict, List

from repro.index.doc_index import DocumentIndex
from repro.search.topk_heap import SearchHit, TopKHeap
from repro.types import SparseVector


def taat_search(index: DocumentIndex, query_vector: SparseVector, k: int) -> List[SearchHit]:
    """Score accumulators term by term, then rank the accumulated documents.

    Simple and exact; its cost is proportional to the total number of
    postings of the query terms.
    """
    accumulators: Dict[int, float] = {}
    for term_id, query_weight in query_vector.items():
        plist = index.get(term_id)
        if plist is None:
            continue
        for doc_id, doc_weight in plist.iter_live():
            accumulators[doc_id] = accumulators.get(doc_id, 0.0) + query_weight * doc_weight
    heap = TopKHeap(k)
    for doc_id, score in accumulators.items():
        heap.offer(doc_id, score)
    return heap.hits()
