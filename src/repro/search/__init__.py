"""Static top-k search substrate over a document inverted file.

The paper's introduction contrasts the streaming problem with classical
top-k retrieval over static collections, where the standard tool is an
ID-ordered inverted file traversed term-at-a-time (TAAT),
document-at-a-time (DAAT) or with WAND-style pruning.  These evaluators are
implemented here; the expiration re-evaluation path and one benchmark use
them directly.
"""

from repro.search.topk_heap import TopKHeap, SearchHit
from repro.search.taat import taat_search
from repro.search.daat import daat_search
from repro.search.wand import wand_search
from repro.search.engine import SearchEngine

__all__ = [
    "TopKHeap",
    "SearchHit",
    "taat_search",
    "daat_search",
    "wand_search",
    "SearchEngine",
]
