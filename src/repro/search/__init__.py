"""Static top-k search substrate over a *document* inverted file.

This package is the classical-retrieval counterpart of the streaming engine
in :mod:`repro.core`: where MRIO indexes the **queries** and probes each
arriving document against that index, the evaluators here index the
**documents** (:class:`repro.index.doc_index.DocumentIndex`) and answer one
ad-hoc query at a time — the setting the paper's introduction contrasts the
streaming problem with.  The standard strategies over an ID-ordered
inverted file are provided: term-at-a-time (:func:`taat_search`),
document-at-a-time (:func:`daat_search`) and WAND-style dynamic pruning
(:func:`wand_search`), wrapped by the :class:`SearchEngine` facade.

Inside the monitoring system the window-expiration manager
(:mod:`repro.core.expiration`) re-evaluates affected queries over the same
:class:`~repro.index.doc_index.DocumentIndex` with a specialized TAAT
accumulation, and ``benchmarks/bench_static_search.py`` measures the three
strategies here head-to-head.
"""

from repro.search.topk_heap import TopKHeap, SearchHit
from repro.search.taat import taat_search
from repro.search.daat import daat_search
from repro.search.wand import wand_search
from repro.search.engine import SearchEngine

__all__ = [
    "TopKHeap",
    "SearchHit",
    "taat_search",
    "daat_search",
    "wand_search",
    "SearchEngine",
]
