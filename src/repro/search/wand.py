"""WAND top-k evaluation (Broder et al.) over the document index.

WAND is the classical ID-ordering pruning technique for static collections;
RIO adapts the same paradigm to a *query* index probed by documents.  Having
the original here both exercises the document index substrate and lets tests
confirm that the reversed variant inherits the pruning invariants.
"""

from __future__ import annotations

from typing import List

from repro.index.doc_index import DocumentIndex
from repro.search.daat import _ListCursor
from repro.search.topk_heap import SearchHit, TopKHeap
from repro.types import SparseVector


def wand_search(index: DocumentIndex, query_vector: SparseVector, k: int) -> List[SearchHit]:
    """Top-k retrieval with WAND pivoting over ID-ordered posting lists."""
    cursors = []
    upper_bounds = {}
    for term_id, query_weight in query_vector.items():
        plist = index.get(term_id)
        if plist is not None and len(plist) > 0:
            cursor = _ListCursor(plist, query_weight)
            cursors.append(cursor)
            upper_bounds[id(cursor)] = query_weight * plist.max_weight()
    heap = TopKHeap(k)
    while True:
        active = [c for c in cursors if not c.exhausted]
        if not active:
            break
        active.sort(key=lambda c: c.current_doc)
        threshold = heap.threshold
        accumulated = 0.0
        pivot_index = None
        for i, cursor in enumerate(active):
            accumulated += upper_bounds[id(cursor)]
            if accumulated > threshold:
                pivot_index = i
                break
        if pivot_index is None:
            # Even the sum of all upper bounds cannot beat the k-th score.
            break
        pivot_doc = active[pivot_index].current_doc
        first_doc = active[0].current_doc
        if pivot_doc == first_doc:
            score = 0.0
            for cursor in active:
                if cursor.exhausted or cursor.current_doc != pivot_doc:
                    continue
                score += cursor.query_weight * cursor.current_weight
                cursor.advance()
            heap.offer(pivot_doc, score)
        else:
            for cursor in active[:pivot_index]:
                cursor.seek(pivot_doc)
    return heap.hits()
