"""Bounded top-k heap used by the static search evaluators."""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

from repro.types import DocId


@dataclass(frozen=True)
class SearchHit:
    """One search result: a document id and its score."""

    doc_id: DocId
    score: float


class TopKHeap:
    """Keeps the ``k`` highest-scoring documents seen so far.

    Ties are broken towards lower doc ids (deterministic results across
    evaluation strategies, which the differential tests rely on).
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        self.k = k
        # Min-heap of (score, -doc_id) so the weakest kept hit is at the root
        # and ties prefer keeping the smaller doc id.
        self._heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Score needed to enter the heap (0 while it is not yet full)."""
        return self._heap[0][0] if self.full else 0.0

    def offer(self, doc_id: DocId, score: float) -> bool:
        """Consider a candidate; returns True if it was kept."""
        if score <= 0.0:
            return False
        entry = (score, -doc_id)
        if not self.full:
            heapq.heappush(self._heap, entry)
            return True
        # Strictly-greater acceptance keeps the heap consistent with the
        # pruning rule of WAND-style evaluators (candidates whose upper bound
        # equals the threshold may be skipped safely).
        if score > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def would_accept(self, score: float) -> bool:
        """True when a hit with ``score`` would (possibly) be kept."""
        return not self.full or score > self.threshold

    def hits(self) -> List[SearchHit]:
        """The kept hits, best first."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], -entry[1]))
        return [SearchHit(doc_id=-neg_id, score=score) for score, neg_id in ordered]
