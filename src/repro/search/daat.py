"""Document-at-a-time (DAAT) top-k evaluation over the document index."""

from __future__ import annotations

from typing import List

from repro.index.doc_index import DocumentIndex
from repro.index.postings import DocPostingList
from repro.search.topk_heap import SearchHit, TopKHeap
from repro.types import SparseVector


class _ListCursor:
    """Cursor over the live entries of one document posting list."""

    __slots__ = ("plist", "query_weight", "pos")

    def __init__(self, plist: DocPostingList, query_weight: float) -> None:
        self.plist = plist
        self.query_weight = query_weight
        self.pos = 0
        self._skip_deleted()

    def _skip_deleted(self) -> None:
        while (
            self.pos < len(self.plist.doc_ids)
            and self.plist.doc_ids[self.pos] in self.plist._deleted
        ):
            self.pos += 1

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.plist.doc_ids)

    @property
    def current_doc(self) -> int:
        return self.plist.doc_ids[self.pos]

    @property
    def current_weight(self) -> float:
        return self.plist.weights[self.pos]

    def advance(self) -> None:
        self.pos += 1
        self._skip_deleted()

    def seek(self, doc_id: int) -> None:
        self.pos = self.plist.first_geq(doc_id, start=self.pos)
        self._skip_deleted()


def daat_search(index: DocumentIndex, query_vector: SparseVector, k: int) -> List[SearchHit]:
    """Merge the query's posting lists in doc-id order, scoring each doc once."""
    cursors = []
    for term_id, query_weight in query_vector.items():
        plist = index.get(term_id)
        if plist is not None and len(plist) > 0:
            cursors.append(_ListCursor(plist, query_weight))
    heap = TopKHeap(k)
    while True:
        active = [c for c in cursors if not c.exhausted]
        if not active:
            break
        current = min(c.current_doc for c in active)
        score = 0.0
        for cursor in active:
            if cursor.current_doc == current:
                score += cursor.query_weight * cursor.current_weight
                cursor.advance()
        heap.offer(current, score)
    return heap.hits()


__all__ = ["daat_search", "_ListCursor"]
