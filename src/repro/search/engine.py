"""Facade bundling the document index with a pluggable evaluation strategy."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.documents.document import Document
from repro.exceptions import ConfigurationError
from repro.index.doc_index import DocumentIndex
from repro.search.daat import daat_search
from repro.search.taat import taat_search
from repro.search.topk_heap import SearchHit
from repro.search.wand import wand_search
from repro.types import SparseVector

_STRATEGIES: Dict[str, Callable[[DocumentIndex, SparseVector, int], List[SearchHit]]] = {
    "taat": taat_search,
    "daat": daat_search,
    "wand": wand_search,
}


class SearchEngine:
    """Static top-k search over an in-memory document collection.

    Example
    -------
    >>> engine = SearchEngine(strategy="wand")
    >>> for doc in documents:
    ...     engine.add(doc)
    >>> hits = engine.search({term_id: 1.0}, k=10)
    """

    def __init__(self, strategy: str = "wand") -> None:
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown search strategy {strategy!r}; expected one of "
                f"{sorted(_STRATEGIES)}"
            )
        self.strategy = strategy
        self.index = DocumentIndex()

    def add(self, document: Document) -> None:
        """Index one document."""
        self.index.add(document)

    def add_all(self, documents: Iterable[Document]) -> None:
        for document in documents:
            self.add(document)

    def remove(self, doc_id: int) -> bool:
        """Remove a document from the collection."""
        return self.index.remove(doc_id)

    def search(self, query_vector: SparseVector, k: int) -> List[SearchHit]:
        """Return the top-``k`` documents for ``query_vector`` (cosine order)."""
        evaluator = _STRATEGIES[self.strategy]
        return evaluator(self.index, query_vector, k)

    @property
    def num_documents(self) -> int:
        return self.index.num_documents

    @staticmethod
    def available_strategies() -> List[str]:
        return sorted(_STRATEGIES)
