"""The streamed document model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import DocumentError
from repro.text.similarity import is_normalized
from repro.types import DocId, SparseVector


@dataclass(frozen=True)
class Document:
    """A stream document.

    Attributes
    ----------
    doc_id:
        Unique identifier assigned by the producer (corpus / stream).
    vector:
        L2-normalized sparse term vector (term id -> weight).  The
        monitoring algorithms rely on normalization so the cosine similarity
        with a normalized query vector is a plain dot product.
    arrival_time:
        The stream timestamp ``τ_d`` used by the exponential decay term of
        the scoring function.  Assigned by the stream when the document is
        emitted; documents not yet streamed carry ``None``.
    text:
        Optional raw text the vector was derived from (kept for examples and
        debugging; the algorithms never look at it).
    """

    doc_id: DocId
    vector: SparseVector
    arrival_time: Optional[float] = None
    text: Optional[str] = None

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise DocumentError(f"doc_id must be >= 0, got {self.doc_id}")
        if not self.vector:
            raise DocumentError(f"document {self.doc_id} has an empty vector")
        for term_id, weight in self.vector.items():
            if weight <= 0.0:
                raise DocumentError(
                    f"document {self.doc_id} has non-positive weight {weight!r} "
                    f"for term {term_id}"
                )
        if not is_normalized(self.vector, tolerance=1e-6):
            raise DocumentError(
                f"document {self.doc_id} vector is not L2-normalized"
            )

    def with_arrival_time(self, arrival_time: float) -> "Document":
        """Return a copy of this document stamped with ``arrival_time``."""
        return Document(
            doc_id=self.doc_id,
            vector=self.vector,
            arrival_time=arrival_time,
            text=self.text,
        )

    @property
    def num_terms(self) -> int:
        """Number of distinct terms in the document vector."""
        return len(self.vector)

    def terms(self) -> list[int]:
        """The distinct term ids of the document."""
        return list(self.vector.keys())

    def weight(self, term_id: int) -> float:
        """The weight of ``term_id`` in this document (0 if absent)."""
        return self.vector.get(term_id, 0.0)
