"""Sliding-window store of live documents.

The paper notes that old documents eventually become "too stale".  With the
order-preserving decay this happens implicitly (new arrivals out-score old
documents), but deployments often also want a hard horizon after which a
document may no longer appear in any result.  The window store keeps the set
of *live* documents, reports expirations, and backs the re-evaluation path in
:mod:`repro.core.expiration`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.documents.document import Document
from repro.exceptions import StreamError
from repro.types import DocId
from repro.utils.validation import require_positive


class SlidingWindowStore:
    """Keeps documents whose age is at most ``horizon`` time units.

    Documents must be added in non-decreasing arrival-time order (which the
    stream guarantees).  ``expire(now)`` pops and returns every document whose
    arrival time is older than ``now - horizon``.
    """

    def __init__(self, horizon: float) -> None:
        require_positive(horizon, "horizon")
        self.horizon = horizon
        self._docs: "OrderedDict[DocId, Document]" = OrderedDict()
        self._last_arrival: Optional[float] = None

    def add(self, document: Document) -> None:
        """Insert a freshly arrived document."""
        if document.arrival_time is None:
            raise StreamError("cannot store a document without an arrival time")
        if self._last_arrival is not None and document.arrival_time < self._last_arrival:
            raise StreamError(
                "documents must be added in non-decreasing arrival-time order"
            )
        self._last_arrival = document.arrival_time
        self._docs[document.doc_id] = document

    def expire(self, now: float) -> List[Document]:
        """Remove and return every document older than ``now - horizon``."""
        cutoff = now - self.horizon
        expired: List[Document] = []
        while self._docs:
            doc_id, doc = next(iter(self._docs.items()))
            assert doc.arrival_time is not None
            if doc.arrival_time < cutoff:
                self._docs.popitem(last=False)
                expired.append(doc)
            else:
                break
        return expired

    def get(self, doc_id: DocId) -> Optional[Document]:
        return self._docs.get(doc_id)

    def live_documents(self) -> List[Document]:
        """All currently live documents in arrival order."""
        return list(self._docs.values())

    def __contains__(self, doc_id: DocId) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._docs.values())
