"""Document model, synthetic corpus generator, stream simulator and decay."""

from repro.documents.document import Document
from repro.documents.corpus import SyntheticCorpus, CorpusConfig
from repro.documents.stream import BatchingStream, DocumentStream, StreamConfig
from repro.documents.decay import ExponentialDecay
from repro.documents.window import SlidingWindowStore

__all__ = [
    "Document",
    "SyntheticCorpus",
    "CorpusConfig",
    "DocumentStream",
    "BatchingStream",
    "StreamConfig",
    "ExponentialDecay",
    "SlidingWindowStore",
]
