"""Order-preserving exponential time decay (Eq. 1 of the paper).

The paper scores a document as ``S(q, d) = c(q, d) / exp(-λ·τ_d)``, i.e. the
cosine similarity *amplified* by ``exp(λ·τ_d)`` where ``τ_d`` is the arrival
time.  Because the amplification is fixed at arrival and strictly increases
with time, newer documents dominate older ones of equal similarity and —
crucially — the relative order of already-scored documents never changes, so
query results only need updating when new documents arrive.

The amplification grows without bound, so the engine periodically
*renormalizes*: it divides every stored score by a common factor and shifts
the time origin.  Rankings are unaffected because every amplified score is
scaled by the same factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import require_non_negative, require_positive


@dataclass
class ExponentialDecay:
    """Computes the amplification factor ``exp(λ · (τ - origin))``.

    Attributes
    ----------
    lam:
        The decay parameter λ (>= 0).  λ = 0 disables recency preference.
    origin:
        Time origin subtracted from every timestamp before exponentiation;
        maintained by renormalization.
    max_amplification:
        When the amplification for an arriving document exceeds this bound
        the engine should renormalize (see :meth:`needs_renormalization`).
    """

    lam: float = 1e-3
    origin: float = 0.0
    max_amplification: float = 1e60

    def __post_init__(self) -> None:
        require_non_negative(self.lam, "lam")
        require_positive(self.max_amplification, "max_amplification")

    def amplification(self, arrival_time: float) -> float:
        """The factor ``1 / exp(-λ·Δτ)`` for a document arriving at ``arrival_time``."""
        return math.exp(self.lam * (arrival_time - self.origin))

    def score(self, similarity: float, arrival_time: float) -> float:
        """The amplified score ``S(q, d)`` for a given similarity value."""
        return similarity * self.amplification(arrival_time)

    def needs_renormalization(self, arrival_time: float) -> bool:
        """True when scores produced at ``arrival_time`` exceed the safe range."""
        if self.lam == 0.0:
            return False
        return self.amplification(arrival_time) > self.max_amplification

    def renormalization_factor(self, new_origin: float) -> float:
        """Factor by which existing amplified scores must be divided when the
        origin moves to ``new_origin``.

        Shifting the origin from ``o`` to ``o'`` divides every *future*
        amplification by ``exp(λ·(o' - o))``; dividing the already-stored
        scores by the same factor keeps past and future scores comparable.
        """
        return math.exp(self.lam * (new_origin - self.origin))

    def rebase(self, new_origin: float) -> float:
        """Move the origin to ``new_origin`` and return the division factor."""
        factor = self.renormalization_factor(new_origin)
        self.origin = new_origin
        return factor

    def half_life(self) -> float:
        """The time span after which an old document loses half its advantage."""
        if self.lam == 0.0:
            return math.inf
        return math.log(2.0) / self.lam

    # ------------------------------------------------------------------ #
    # Snapshot / restore (shard rebalancing)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, float]:
        """The full decay state as a plain dict (see :meth:`restore`)."""
        return {
            "lam": self.lam,
            "origin": self.origin,
            "max_amplification": self.max_amplification,
        }

    def restore(self, state: Dict[str, float]) -> None:
        """Restore state captured by :meth:`snapshot`.

        Stored scores elsewhere are only comparable under the origin they
        were amplified against, so a restore must always carry the origin
        together with the results it accompanies.
        """
        self.lam = float(state["lam"])
        self.origin = float(state["origin"])
        self.max_amplification = float(state["max_amplification"])
        self.__post_init__()
