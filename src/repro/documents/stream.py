"""Document stream simulator and batching adapter.

:class:`DocumentStream` wraps any document source (typically
:class:`SyntheticCorpus`) and assigns monotonically increasing arrival
timestamps, either on a fixed grid (one event per ``interval``) or with
exponentially distributed inter-arrival times (Poisson arrivals at a given
``rate``).

:class:`BatchingStream` groups any stamped document iterable into
arrival-ordered batches for the ``process_batch`` fast path, flushing on a
size cap and, optionally, on a stream-time horizon (so a batch never spans
more simulated time than a latency budget allows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.documents.corpus import SyntheticCorpus
from repro.documents.document import Document
from repro.exceptions import ConfigurationError, StreamError
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive


@dataclass
class StreamConfig:
    """Arrival-process configuration.

    Exactly one of the two modes is used:

    * ``interval`` (default): deterministic arrivals every ``interval`` time
      units — the simplest setting and the one the benchmarks use so that
      response-time measurements are not confounded by arrival jitter;
    * ``rate``: Poisson arrivals with the given expected events per time unit
      (set ``poisson=True``).
    """

    interval: float = 1.0
    rate: float = 1.0
    poisson: bool = False
    start_time: float = 0.0
    seed: Optional[int] = 11

    def __post_init__(self) -> None:
        require_positive(self.interval, "interval")
        require_positive(self.rate, "rate")


class DocumentStream:
    """Stamps documents from a source with arrival times and yields them."""

    def __init__(
        self,
        source: Iterable[Document] | SyntheticCorpus,
        config: Optional[StreamConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        self.config = config or StreamConfig()
        self._rng = make_rng(self.config.seed if seed is None else seed)
        if isinstance(source, SyntheticCorpus):
            self._source: Iterator[Document] = source.iter_documents()
        else:
            self._source = iter(source)
        #: Cheap skip hook: a source exposing ``skip_documents(count)`` (the
        #: synthetic corpus, or any duck-typed equivalent) promises that
        #: skipping advances the *same* underlying document sequence as
        #: iterating, without the per-document construction cost.
        self._skip_source = getattr(source, "skip_documents", None)
        self._clock = self.config.start_time
        self._emitted = 0
        self._last_arrival: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Arrival process
    # ------------------------------------------------------------------ #

    def _next_arrival_time(self) -> float:
        if self.config.poisson:
            gap = float(self._rng.exponential(1.0 / self.config.rate))
        else:
            gap = self.config.interval
        self._clock += gap
        return self._clock

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #

    def __iter__(self) -> Iterator[Document]:
        return self

    def __next__(self) -> Document:
        raw = next(self._source)
        arrival = self._next_arrival_time()
        if self._last_arrival is not None and arrival < self._last_arrival:
            raise StreamError(
                f"non-monotone arrival time {arrival} after {self._last_arrival}"
            )
        self._last_arrival = arrival
        self._emitted += 1
        return raw.with_arrival_time(arrival)

    def take(self, count: int) -> List[Document]:
        """Return the next ``count`` stamped documents as a list."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        result = []
        for _ in range(count):
            try:
                result.append(next(self))
            except StopIteration:
                break
        return result

    def fast_forward(self, count: int) -> int:
        """Advance past ``count`` events without returning them.

        Consumes the source documents *and* their arrival-time draws, so the
        events emitted afterwards are byte-identical to what an uninterrupted
        stream would have produced.  A recovered monitor uses this to resume
        a deterministic stream right after its last durable event.  Returns
        the number of events actually skipped (less than ``count`` only when
        the source runs dry).

        When the source offers a ``skip_documents`` hook (the synthetic
        corpus does), skipped events are never tokenized or vectorized —
        only their RNG draws are consumed — so fast-forwarding a recovered
        stream over a long WAL tail costs a fraction of re-analyzing every
        discarded document.  The fallback path fully generates and discards
        each event.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if self._skip_source is not None:
            skipped = int(self._skip_source(count))
            for _ in range(skipped):
                # Consume the arrival draw exactly as __next__ would; the
                # monotonicity check is skipped with the document (the
                # arrival process itself never goes backwards).
                self._next_arrival_time()
            if skipped:
                self._last_arrival = self._clock
            self._emitted += skipped
            return skipped
        skipped = 0
        for _ in range(count):
            try:
                next(self)
            except StopIteration:
                break
            skipped += 1
        return skipped

    @property
    def emitted(self) -> int:
        """Number of documents emitted so far."""
        return self._emitted

    @property
    def clock(self) -> float:
        """The current simulated stream time."""
        return self._clock


class BatchingStream:
    """Groups a stamped document stream into batches for ``process_batch``.

    A batch is flushed when it holds ``max_batch`` documents, or — when a
    ``horizon`` is set — before admitting a document that would stretch the
    batch's arrival-time span beyond the horizon (so consumers never wait
    longer than the horizon for the events already buffered).  The final,
    possibly short batch is flushed when the source is exhausted; empty
    batches are never yielded.

    Example::

        stream = DocumentStream(corpus)
        for batch in BatchingStream(stream, max_batch=64, horizon=10.0):
            monitor.process_batch(batch)
    """

    def __init__(
        self,
        source: Iterable[Document],
        max_batch: int = 64,
        horizon: Optional[float] = None,
    ) -> None:
        require_positive(max_batch, "max_batch")
        if horizon is not None:
            require_positive(horizon, "horizon")
        self.max_batch = int(max_batch)
        self.horizon = horizon
        self._source = iter(source)
        self._pending: Optional[Document] = None
        self._batches_emitted = 0

    def __iter__(self) -> Iterator[List[Document]]:
        return self

    def __next__(self) -> List[Document]:
        batch: List[Document] = []
        if self._pending is not None:
            batch.append(self._pending)
            self._pending = None
        horizon = self.horizon
        for document in self._source:
            if horizon is not None:
                if document.arrival_time is None:
                    raise StreamError(
                        f"document {document.doc_id} has no arrival time; "
                        "horizon-based batching needs stamped documents"
                    )
                if batch:
                    first_arrival = batch[0].arrival_time
                    assert first_arrival is not None
                    if document.arrival_time - first_arrival > horizon:
                        self._pending = document
                        self._batches_emitted += 1
                        return batch
            batch.append(document)
            if len(batch) >= self.max_batch:
                self._batches_emitted += 1
                return batch
        if batch:
            self._batches_emitted += 1
            return batch
        raise StopIteration

    def take(self, count: int) -> List[List[Document]]:
        """Return the next ``count`` batches as a list."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        batches: List[List[Document]] = []
        for _ in range(count):
            try:
                batches.append(next(self))
            except StopIteration:
                break
        return batches

    @property
    def batches_emitted(self) -> int:
        """Number of batches yielded so far."""
        return self._batches_emitted
