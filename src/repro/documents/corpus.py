"""Synthetic Wikipedia-like corpus generator.

The paper streams 7,012,610 real Wikipedia pages.  That corpus is not
available offline, so this module builds the closest synthetic equivalent
that exercises the same code paths (see DESIGN.md §5):

* a Zipf-distributed vocabulary (natural-language term-frequency skew),
* *topics*: clusters of terms that tend to co-occur inside a document, which
  is what gives the "Connected" query workload its meaning,
* log-normally distributed document lengths,
* log-TF weighting and L2 normalization, exactly what the real pipeline in
  :mod:`repro.text` produces from raw text.

Documents can be generated either directly as sparse vectors (fast path used
by benchmarks) or as raw text routed through the full analysis pipeline
(``emit_text=True``), which keeps the text substrate honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.documents.document import Document
from repro.text.similarity import l2_normalize
from repro.text.vocabulary import Vocabulary
from repro.types import SparseVector
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require, require_positive, require_probability
from repro.utils.zipf import zipf_weights


@dataclass
class CorpusConfig:
    """Configuration of the synthetic corpus generator.

    Attributes
    ----------
    vocabulary_size:
        Number of distinct terms in the dictionary.
    num_topics:
        Number of topical term clusters.  Documents draw most of their terms
        from one topic, which creates the co-occurrence structure the
        Connected workload exploits.
    terms_per_topic:
        Size of each topic's focus-term pool.
    topic_affinity:
        Probability that a token is drawn from the document's topic pool
        rather than from the global Zipf distribution.
    zipf_exponent:
        Skew of the global term distribution.
    mean_tokens / sigma_tokens:
        Parameters of the log-normal distribution of document token counts.
    min_tokens / max_tokens:
        Hard bounds on the token count of a document.
    """

    vocabulary_size: int = 20_000
    num_topics: int = 50
    terms_per_topic: int = 200
    topic_affinity: float = 0.7
    zipf_exponent: float = 1.05
    mean_tokens: float = 180.0
    sigma_tokens: float = 0.6
    min_tokens: int = 20
    max_tokens: int = 2_000
    seed: Optional[int] = 7

    def __post_init__(self) -> None:
        require_positive(self.vocabulary_size, "vocabulary_size")
        require_positive(self.num_topics, "num_topics")
        require_positive(self.terms_per_topic, "terms_per_topic")
        require_probability(self.topic_affinity, "topic_affinity")
        require_positive(self.mean_tokens, "mean_tokens")
        require_positive(self.sigma_tokens, "sigma_tokens")
        require_positive(self.min_tokens, "min_tokens")
        require(
            self.max_tokens >= self.min_tokens,
            "max_tokens must be >= min_tokens",
        )
        require(
            self.terms_per_topic <= self.vocabulary_size,
            "terms_per_topic must not exceed vocabulary_size",
        )


class SyntheticCorpus:
    """Generates a stream of synthetic, topically structured documents."""

    def __init__(self, config: Optional[CorpusConfig] = None, seed: SeedLike = None):
        self.config = config or CorpusConfig()
        self._rng = make_rng(self.config.seed if seed is None else seed)
        self.vocabulary = Vocabulary.synthetic(self.config.vocabulary_size)
        self.vocabulary.freeze()

        # Global Zipf term distribution.
        self._global_probs = zipf_weights(
            self.config.vocabulary_size, self.config.zipf_exponent
        )
        self._global_cdf = np.cumsum(self._global_probs)
        self._global_cdf[-1] = 1.0

        # Topic structure: each topic owns a pool of focus terms biased
        # towards frequent terms (so topics overlap realistically) plus a
        # per-topic internal Zipf over that pool.
        self._topic_terms: List[np.ndarray] = []
        self._topic_cdfs: List[np.ndarray] = []
        self._build_topics()

        self._next_doc_id = 0

    # ------------------------------------------------------------------ #
    # Topic construction
    # ------------------------------------------------------------------ #

    def _build_topics(self) -> None:
        cfg = self.config
        vocab_ids = np.arange(cfg.vocabulary_size)
        for _ in range(cfg.num_topics):
            pool = self._rng.choice(
                vocab_ids,
                size=cfg.terms_per_topic,
                replace=False,
                p=self._global_probs,
            )
            self._topic_terms.append(np.sort(pool))
            internal = zipf_weights(cfg.terms_per_topic, exponent=0.8)
            # Shuffle the internal ranks so the topic-internal frequency
            # ordering is not identical to the global one.
            self._rng.shuffle(internal)
            internal = internal / internal.sum()
            cdf = np.cumsum(internal)
            cdf[-1] = 1.0
            self._topic_cdfs.append(cdf)

    @property
    def num_topics(self) -> int:
        return self.config.num_topics

    def topic_term_ids(self, topic: int) -> List[int]:
        """The focus-term pool of ``topic`` (used by the Connected workload)."""
        if not 0 <= topic < self.num_topics:
            raise ValueError(f"topic must be in [0, {self.num_topics}), got {topic}")
        return [int(t) for t in self._topic_terms[topic]]

    @property
    def term_probabilities(self) -> np.ndarray:
        """Global Zipf probability of each term id."""
        return self._global_probs.copy()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _sample_global_terms(self, count: int) -> np.ndarray:
        u = self._rng.random(count)
        return np.searchsorted(self._global_cdf, u, side="left")

    def _sample_topic_terms(self, topic: int, count: int) -> np.ndarray:
        u = self._rng.random(count)
        positions = np.searchsorted(self._topic_cdfs[topic], u, side="left")
        return self._topic_terms[topic][positions]

    def _sample_num_tokens(self) -> int:
        cfg = self.config
        mu = math.log(cfg.mean_tokens) - 0.5 * cfg.sigma_tokens**2
        value = int(round(self._rng.lognormal(mean=mu, sigma=cfg.sigma_tokens)))
        return int(min(max(value, cfg.min_tokens), cfg.max_tokens))

    def _sample_token_ids(self, topic: int) -> np.ndarray:
        num_tokens = self._sample_num_tokens()
        from_topic = self._rng.random(num_tokens) < self.config.topic_affinity
        n_topic = int(from_topic.sum())
        n_global = num_tokens - n_topic
        parts = []
        if n_topic:
            parts.append(self._sample_topic_terms(topic, n_topic))
        if n_global:
            parts.append(self._sample_global_terms(n_global))
        return np.concatenate(parts) if parts else np.empty(0, dtype=int)

    @staticmethod
    def _log_tf_vector(token_ids: np.ndarray) -> SparseVector:
        counts: Dict[int, int] = {}
        for term_id in token_ids:
            key = int(term_id)
            counts[key] = counts.get(key, 0) + 1
        weighted = {t: 1.0 + math.log(c) for t, c in counts.items()}
        return l2_normalize(weighted)

    # ------------------------------------------------------------------ #
    # Public generation API
    # ------------------------------------------------------------------ #

    def generate_document(self, topic: Optional[int] = None) -> Document:
        """Generate a single document (no arrival time yet)."""
        if topic is None:
            topic = int(self._rng.integers(0, self.num_topics))
        token_ids = self._sample_token_ids(topic)
        while token_ids.size == 0:  # pragma: no cover - defensive, min_tokens >= 1
            token_ids = self._sample_token_ids(topic)
        vector = self._log_tf_vector(token_ids)
        doc = Document(doc_id=self._next_doc_id, vector=vector)
        self._next_doc_id += 1
        return doc

    def generate_documents(self, count: int) -> List[Document]:
        """Generate ``count`` documents."""
        return [self.generate_document() for _ in range(count)]

    def skip_documents(self, count: int) -> int:
        """Advance past ``count`` documents without building their vectors.

        Performs *exactly* the RNG draws :meth:`generate_document` performs
        — topic choice, token count, per-token source flips, topic/global
        term samples — so the generator state after skipping ``n``
        documents is bit-identical to generating them; only the
        deterministic, RNG-free tail (log-TF aggregation, normalization,
        :class:`Document` construction) is skipped.  That tail dominates
        the per-document cost, which is what makes fast-forwarding a
        recovered stream over a long WAL tail cheap
        (:meth:`DocumentStream.fast_forward`).  Returns ``count`` (the
        synthetic corpus never runs dry).
        """
        for _ in range(count):
            topic = int(self._rng.integers(0, self.num_topics))
            token_ids = self._sample_token_ids(topic)
            while token_ids.size == 0:  # pragma: no cover - min_tokens >= 1
                token_ids = self._sample_token_ids(topic)
            self._next_doc_id += 1
        return count

    def iter_documents(self, count: Optional[int] = None) -> Iterator[Document]:
        """Yield documents; endless when ``count`` is ``None``."""
        produced = 0
        while count is None or produced < count:
            yield self.generate_document()
            produced += 1

    def generate_text(self, topic: Optional[int] = None) -> str:
        """Generate the raw text of a synthetic document.

        Token ids are rendered through the vocabulary so the output can be
        fed to the full text-analysis pipeline (examples / pipeline tests).
        """
        if topic is None:
            topic = int(self._rng.integers(0, self.num_topics))
        token_ids = self._sample_token_ids(topic)
        terms = [self.vocabulary.term_of(int(t)) for t in token_ids]
        return " ".join(terms)

    def reset(self, seed: SeedLike = None) -> None:
        """Reset document-id numbering and optionally reseed the generator."""
        self._next_doc_id = 0
        if seed is not None:
            self._rng = make_rng(seed)
