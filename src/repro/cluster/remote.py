"""Remote shard execution: the router's side of the cluster.

:class:`RemoteShardExecutor` (``executor="remote"``) is the socket twin of
:class:`~repro.runtime.procpool.ProcessShardExecutor`: it spawns one
*shard-host* process per partition (plus ``replicas`` hot standbys each),
connects to them over loopback/TCP, and fans commands out with the same
pipelined submit-all-then-collect discipline and the same failure contract.
Document batches are encoded once and the identical frame is written to
every host's socket — the socket transport's equivalent of the shared pipe
frame (there is no cross-machine shared memory).

:class:`RemoteShardHandle` is the *stable* per-partition proxy the sharded
facade holds: failover happens inside the handle, so a promoted standby
transparently replaces its dead primary for every subsequent call.  The
handle implements the cluster's at-least-once/exactly-once split:

* every mutating command gets the partition's next LSN and is kept in a
  **redo queue** until the primary reports it standby-acked (the ``rl``
  reply field trims the queue; the bounded replication lag bounds the
  queue).  A command the shard *rejects* is withdrawn from the queue and
  its speculative LSN is reused — the host journals only applied commands;
* on primary death (send failure, EOF, request timeout) the handle promotes
  the next standby, learns its applied LSN — the durable prefix — replays
  the redo suffix *in order at the same LSNs*, and answers the in-flight
  command either from the replay or from the standby's replica result cache
  (when the record had already been shipped before the crash: redone
  delivery, applied exactly once);
* health checks: :meth:`RemoteShardExecutor.check_health` pings every
  primary (the heartbeat); a dead one fails over immediately instead of at
  the next stream event.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.config import MonitorConfig
from repro.core.results import BatchUpdate
from repro.documents.document import Document
from repro.exceptions import ConfigurationError, WorkerError
from repro.persistence import codec
from repro.cluster.host import (
    MUTATING_COMMANDS,
    ROLE_CONTROL,
    HostOptions,
)
from repro.cluster.transport import DEFAULT_MAX_FRAME_BYTES, FrameSocket
from repro.runtime.executors import ShardExecutor, raise_first_failure, run_serially
from repro.runtime.procpool import ProcessShardHandle, TransportStats

_OK = "ok"
_ERR = "err"


def _shard_host_main(conn, shard_id, config, options, bind_host) -> None:
    """Process entry point: run the shard-host role, report the bound port."""
    from repro.service.server import serve_shard_host

    def report(address) -> None:
        conn.send(address)
        conn.close()

    serve_shard_host(
        shard_id, config, options=options, host=bind_host, on_ready=report
    )


class _TransportDead(Exception):
    """Internal marker: the *connection* failed (vs. an error the shard
    raised over a healthy connection, which must not trigger failover)."""


class HostClient:
    """One spawned shard-host process and the control socket into it."""

    __slots__ = ("process", "host", "port", "socket")

    def __init__(self, process, address: Tuple[str, int], sock: FrameSocket) -> None:
        self.process = process
        self.host, self.port = address
        self.socket = sock

    @property
    def alive(self) -> bool:
        return self.process is None or self.process.is_alive()

    def send_shutdown(self) -> None:
        try:
            self.socket.send_bytes(codec.pack_frame({"c": "shutdown"}))
        except Exception:  # noqa: BLE001 - dead hosts cannot be told
            pass

    def destroy(self, grace: float = 5.0) -> None:
        try:
            self.socket.close()
        except Exception:  # noqa: BLE001
            pass
        if self.process is not None:
            self.process.join(timeout=grace)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=grace)


class _Pending(NamedTuple):
    """One in-flight command (``lsn`` is None for non-mutating ones)."""

    command: str
    frame: bytes
    lsn: Optional[int]


class RemoteShardHandle(ProcessShardHandle):
    """Stable proxy for one partition: a primary host + its hot standbys.

    Inherits the full :class:`EngineShard` mirror from
    :class:`ProcessShardHandle`; only the protocol plumbing is replaced —
    frames ride a :class:`FrameSocket`, mutating commands feed the redo
    queue, and a dead primary is replaced by a promoted standby inside
    :meth:`collect` instead of surfacing as a :class:`WorkerError`
    (that is raised only when no standby remains).
    """

    def __init__(
        self,
        shard_id: int,
        primary: HostClient,
        standbys: Sequence[HostClient],
        stats: Optional[TransportStats] = None,
        journaling: bool = False,
        repl_options: Tuple[int, int, float] = (0, 256, 10.0),
    ) -> None:
        self.shard_id = shard_id
        self._primary_client = primary
        self._standbys: List[HostClient] = list(standbys)
        self._stats = stats if stats is not None else TransportStats()
        self._capture_raw = False
        self._raw_buffer: List[object] = []
        self._renormalize_listeners: List[object] = []
        self._journaling = journaling
        self._repl_options = repl_options
        self._pending: Optional[_Pending] = None
        self._send_error: Optional[BaseException] = None
        self._redo: Deque[Tuple[int, bytes]] = deque()
        #: LSN of the last journaled command this handle issued.
        self.wal_lsn = 0
        #: Lowest standby-acked LSN the primary last reported.
        self.replicated_lsn = 0
        #: Standby promotions this handle performed.
        self.failovers = 0

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    @property
    def process(self):
        return self._primary_client.process

    @property
    def _conn(self):
        return self._primary_client.socket

    @property
    def primary(self) -> HostClient:
        return self._primary_client

    @property
    def standbys(self) -> List[HostClient]:
        return list(self._standbys)

    @property
    def clients(self) -> List[HostClient]:
        return [self._primary_client] + self._standbys

    @property
    def alive(self) -> bool:
        return self._primary_client.alive

    # ------------------------------------------------------------------ #
    # Protocol plumbing (replaces the pipe path of the parent class)
    # ------------------------------------------------------------------ #

    def submit(self, command: str, *args: object) -> None:
        tail = codec.TailWriter()
        header: Dict[str, object] = {"c": command}
        if args:
            header["a"] = [codec.encode_value(arg, tail) for arg in args]
        frame = codec.pack_frame(header, tail.take())
        self._stats.control_bytes += len(frame)
        self.submit_prepacked(command, frame)

    def submit_prepacked(self, command: str, frame: bytes) -> None:
        """Ship one prebuilt frame (byte accounting is the caller's job).

        Send failures are deferred to :meth:`collect` — that is where the
        failover lives, and it keeps the executor's submit loop non-raising.
        """
        if self._pending is not None:
            raise WorkerError(
                f"shard host handle {self.shard_id} already has a request in "
                "flight (submit without collect)"
            )
        lsn: Optional[int] = None
        if self._journaling and command in MUTATING_COMMANDS:
            lsn = self.wal_lsn + 1
            self._redo.append((lsn, frame))
        self._pending = _Pending(command, frame, lsn)
        try:
            self._primary_client.socket.send_bytes(frame)
        except Exception as exc:  # noqa: BLE001 - deferred to collect()
            self._send_error = exc

    def send_frame(self, frame: bytes) -> None:
        raise WorkerError(
            "RemoteShardHandle routes frames through submit_prepacked()"
        )  # pragma: no cover - guards against parent-class plumbing leaks

    def process_batch(self, documents: Sequence[Document]) -> List[BatchUpdate]:
        payload = codec.encode_document_batch(
            documents if isinstance(documents, list) else list(documents)
        )
        frame = codec.pack_frame({"c": "batch_commit"}, payload)
        self._stats.control_bytes += len(frame) - len(payload)
        self._stats.payload_pipe_bytes += len(payload)
        self._stats.batches += 1
        self._stats.events += len(documents)
        self.submit_prepacked("batch_commit", frame)
        return self.collect()  # type: ignore[return-value]

    def collect(self) -> object:
        pending, self._pending = self._pending, None
        if pending is None:
            raise WorkerError(
                f"shard host handle {self.shard_id}: collect without submit"
            )
        if self._send_error is not None:
            cause, self._send_error = self._send_error, None
            return self._failover(pending, cause)
        try:
            value, header = self._collect_reply(self._primary_client)
        except _TransportDead as dead:
            return self._failover(pending, dead.__cause__ or dead)
        except Exception:
            # The shard rejected the command over a healthy connection: the
            # host journaled nothing (apply-then-journal), so the LSN this
            # handle speculatively assigned is withdrawn with the command.
            if (
                pending.lsn is not None
                and self._redo
                and self._redo[-1][0] == pending.lsn
            ):
                self._redo.pop()
            raise
        self._after_reply(pending, header)
        return value

    def _collect_reply(
        self, client: HostClient, dispatch_events: bool = True
    ) -> Tuple[object, Dict[str, object]]:
        """One reply off ``client``; shard errors re-raise as themselves,
        connection death raises :class:`_TransportDead`."""
        try:
            data = client.socket.recv_bytes()
        except (EOFError, OSError) as exc:
            raise _TransportDead(
                f"shard host {self.shard_id} died (connection lost before reply)"
            ) from exc
        self._stats.reply_bytes += len(data)
        try:
            header, tail = codec.unpack_frame(data)
            events = header.get("e") or {}
            raw = events.get("r")
            renorms = events.get("n", ())
            status = header["s"]
            value = codec.decode_value(header.get("v"), tail)
        except Exception as exc:  # noqa: BLE001 - the stream can't be trusted
            raise _TransportDead(
                f"shard host {self.shard_id} sent an undecodable reply"
            ) from exc
        if dispatch_events:
            if raw is not None:
                self._raw_buffer.extend(codec.decode_value(raw, tail))
            for origin, factor in renorms:
                for listener in self._renormalize_listeners:
                    listener(origin, factor)
        if status == _ERR:
            if isinstance(value, BaseException):
                raise value
            raise WorkerError(str(value))  # pragma: no cover - defensive
        return value, header

    def _client_call(self, client: HostClient, command: str, *args: object) -> object:
        """Direct command on a specific host (failover bookkeeping bypass)."""
        tail = codec.TailWriter()
        header: Dict[str, object] = {"c": command}
        if args:
            header["a"] = [codec.encode_value(arg, tail) for arg in args]
        frame = codec.pack_frame(header, tail.take())
        self._stats.control_bytes += len(frame)
        try:
            client.socket.send_bytes(frame)
        except Exception as exc:  # noqa: BLE001
            raise _TransportDead(
                f"shard host {self.shard_id} is gone (send failed)"
            ) from exc
        value, _ = self._collect_reply(client, dispatch_events=False)
        return value

    def _after_reply(self, pending: _Pending, header: Dict[str, object]) -> None:
        if pending.lsn is None:
            return
        lsn = header.get("l")
        if lsn is None:
            # The host is not journaling (replicas=0 spawns no WAL): no redo
            # bookkeeping to maintain.
            self._redo.clear()
            return
        if lsn != pending.lsn:
            raise WorkerError(
                f"shard host {self.shard_id} journaled {pending.command!r} at "
                f"lsn {lsn}, router expected {pending.lsn}; the partition's "
                "log and redo queue are out of lockstep"
            )
        self.wal_lsn = int(lsn)
        replicated = int(header.get("rl", lsn))  # type: ignore[arg-type]
        self.replicated_lsn = replicated
        while self._redo and self._redo[0][0] <= replicated:
            self._redo.popleft()

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #

    def heartbeat(self) -> bool:
        """Ping the primary; on death, fail over now.  Returns True when the
        partition is healthy (possibly on a freshly promoted primary)."""
        try:
            self._client_call(self._primary_client, "ping")
            return True
        except _TransportDead as dead:
            self._failover(None, dead.__cause__ or dead)
            return True

    def _failover(self, pending: Optional[_Pending], cause: BaseException) -> object:
        """Promote the next standby, replay the redo suffix, answer ``pending``.

        Tries standbys in order; a standby that fails mid-promotion is
        discarded and the next one is tried.  With none left the partition
        is lost and the original failure surfaces as a
        :class:`WorkerError` — the executor's normal failure contract.
        """
        dead_primary = self._primary_client
        while self._standbys:
            client = self._standbys.pop(0)
            try:
                value = self._promote_and_replay(client, pending)
            except Exception as exc:  # noqa: BLE001 - try the next standby
                client.destroy()
                cause = exc
                continue
            self._primary_client = client
            self.failovers += 1
            dead_primary.destroy()
            return value
        if isinstance(cause, WorkerError):
            raise cause
        raise WorkerError(
            f"shard host {self.shard_id} died and no standby remains"
        ) from cause

    def _promote_and_replay(
        self, client: HostClient, pending: Optional[_Pending]
    ) -> object:
        applied = int(self._client_call(client, "promote"))  # type: ignore[arg-type]
        if self._capture_raw:
            self._client_call(client, "set_capture_raw", True)
        min_replicas, max_lag, repl_timeout = self._repl_options
        for standby in self._standbys:
            self._client_call(
                client,
                "repl_start",
                standby.host,
                standby.port,
                min_replicas,
                max_lag,
                repl_timeout,
            )
        value: object = None
        answered = False
        last_lsn = applied
        for lsn, frame in list(self._redo):
            if lsn <= applied:
                continue
            is_pending = pending is not None and pending.lsn == lsn
            try:
                client.socket.send_bytes(frame)
            except Exception as exc:  # noqa: BLE001
                raise _TransportDead(
                    f"shard host {self.shard_id} redo send failed"
                ) from exc
            # Only the in-flight command's events reach the listeners: the
            # other redo entries were already collected (and their events
            # dispatched) against the dead primary.
            redo_value, header = self._collect_reply(
                client, dispatch_events=is_pending
            )
            if header.get("l") != lsn:
                raise WorkerError(
                    f"shard host {self.shard_id} redo journaled at lsn "
                    f"{header.get('l')}, expected {lsn}"
                )
            last_lsn = lsn
            if is_pending:
                value, answered = redo_value, True
        if pending is not None and not answered:
            if pending.lsn is not None:
                # The dead primary had already shipped the record: the
                # standby applied it through replication, so fetch the
                # cached result instead of applying it twice.
                value = self._client_call(client, "redo_result", pending.lsn)
            else:
                try:
                    client.socket.send_bytes(pending.frame)
                except Exception as exc:  # noqa: BLE001
                    raise _TransportDead(
                        f"shard host {self.shard_id} retry send failed"
                    ) from exc
                value, _ = self._collect_reply(client)
        self.wal_lsn = max(self.wal_lsn, last_lsn)
        self.replicated_lsn = min(self.replicated_lsn, applied)
        return value


class RemoteShardExecutor(ShardExecutor):
    """Hosts every shard in a socket-served host process (name ``"remote"``).

    Topology per partition: one primary plus ``replicas`` hot standbys, all
    spawned locally (loopback) by default — the deployment shape is real,
    the processes just happen to share a box; ``bind_host`` exists for
    actual remote binds.  ``replicas=0`` skips journaling entirely and is
    the pure remote-execution mode.

    ``min_replicas`` > 0 makes every mutating ack wait until that many
    standbys applied the record; otherwise standbys may trail by at most
    ``max_lag_records`` records (the bounded replication lag).

    Example::

        monitor = ShardedMonitor(
            config, n_shards=4,
            executor=RemoteShardExecutor(4, replicas=1),
        )
        monitor.process_batch(batch)   # fans out over sockets
        monitor.close()                # shuts the host fleet down
    """

    name = "remote"
    shard_resident = True

    def __init__(
        self,
        n_shards: int,
        replicas: int = 1,
        min_replicas: int = 0,
        max_lag_records: int = 256,
        request_timeout: float = 30.0,
        replication_timeout: float = 10.0,
        base_dir: Optional[str] = None,
        bind_host: str = "127.0.0.1",
        group_commit: int = 16,
        segment_max_bytes: int = 4 * 1024 * 1024,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        spawn_timeout: float = 30.0,
        mp_context=None,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        if replicas < 0:
            raise ConfigurationError(f"replicas must be >= 0, got {replicas}")
        if not 0 <= min_replicas <= replicas:
            raise ConfigurationError(
                f"min_replicas must be within [0, replicas={replicas}], "
                f"got {min_replicas}"
            )
        if max_lag_records < 0:
            raise ConfigurationError(
                f"max_lag_records must be >= 0, got {max_lag_records}"
            )
        self.n_shards = n_shards
        self.replicas = replicas
        self.min_replicas = min_replicas
        self.max_lag_records = max_lag_records
        self.request_timeout = request_timeout
        self.replication_timeout = replication_timeout
        self.bind_host = bind_host
        self.group_commit = group_commit
        self.segment_max_bytes = segment_max_bytes
        self.max_frame_bytes = max_frame_bytes
        self.spawn_timeout = spawn_timeout
        self.stats = TransportStats()
        self._ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        self._base_dir = base_dir
        self._owns_base = False
        self._active_base: Optional[str] = None
        self._handles: Optional[List[RemoteShardHandle]] = None
        self._clients: List[HostClient] = []

    # ------------------------------------------------------------------ #
    # Host fleet lifecycle
    # ------------------------------------------------------------------ #

    @property
    def handles(self) -> List[RemoteShardHandle]:
        if self._handles is None:
            raise ConfigurationError(
                "remote executor has no hosts; spawn_shards() was not called"
            )
        return list(self._handles)

    @property
    def transport_active(self) -> Optional[str]:
        """``"socket"`` while the host fleet is live, ``None`` before."""
        return "socket" if self._handles is not None else None

    def spawn_shards(self, config: MonitorConfig) -> List[RemoteShardHandle]:
        """Start the host fleet; returns the stable handles in shard order."""
        if self._handles is not None:
            raise ConfigurationError("remote executor already owns live hosts")
        journaling = self.replicas > 0
        if journaling:
            self._active_base = self._base_dir
            if self._active_base is None:
                self._active_base = tempfile.mkdtemp(prefix="repro-cluster-")
                self._owns_base = True
        handles: List[RemoteShardHandle] = []
        self._handles = handles
        repl_options = (
            self.min_replicas,
            self.max_lag_records,
            self.replication_timeout,
        )
        try:
            for shard_id in range(self.n_shards):
                clients: List[HostClient] = []
                for replica_index in range(self.replicas + 1):
                    wal_dir = None
                    if journaling:
                        wal_dir = os.path.join(
                            self._active_base,  # type: ignore[arg-type]
                            f"shard-{shard_id:03d}",
                            "primary" if replica_index == 0 else f"standby-{replica_index}",
                        )
                    clients.append(
                        self._spawn_host(
                            shard_id, config, wal_dir, standby=replica_index > 0
                        )
                    )
                handle = RemoteShardHandle(
                    shard_id,
                    clients[0],
                    clients[1:],
                    stats=self.stats,
                    journaling=journaling,
                    repl_options=repl_options,
                )
                handle.call("ping")
                for standby in clients[1:]:
                    handle._client_call(
                        clients[0],
                        "repl_start",
                        standby.host,
                        standby.port,
                        *repl_options,
                    )
                handles.append(handle)
        except Exception:
            self.close()
            raise
        return handles

    def _spawn_host(
        self,
        shard_id: int,
        config: MonitorConfig,
        wal_dir: Optional[str],
        standby: bool,
    ) -> HostClient:
        options = HostOptions(
            wal_dir=wal_dir,
            standby=standby,
            group_commit=self.group_commit,
            segment_max_bytes=self.segment_max_bytes,
            max_frame_bytes=self.max_frame_bytes,
            result_cache=max(1024, 4 * self.max_lag_records),
        )
        receiver, sender = self._ctx.Pipe(duplex=False)
        role = "standby" if standby else "primary"
        process = self._ctx.Process(
            target=_shard_host_main,
            args=(sender, shard_id, config, options, self.bind_host),
            name=f"repro-host-{shard_id}-{role}",
            daemon=True,
        )
        process.start()
        sender.close()
        try:
            if not receiver.poll(self.spawn_timeout):
                raise WorkerError(
                    f"shard host {shard_id} ({role}) did not report its "
                    f"address within {self.spawn_timeout}s"
                )
            address = tuple(receiver.recv())
        except (EOFError, OSError) as exc:
            process.terminate()
            process.join(timeout=5.0)
            raise WorkerError(
                f"shard host {shard_id} ({role}) died during startup"
            ) from exc
        finally:
            receiver.close()
        sock = FrameSocket.connect(
            address, timeout=self.spawn_timeout, max_frame_bytes=self.max_frame_bytes
        )
        sock.settimeout(self.request_timeout)
        sock.send_bytes(codec.pack_frame({"r": ROLE_CONTROL}))
        client = HostClient(process, address, sock)
        self._clients.append(client)
        return client

    def resize(self, n_shards: int, config: MonitorConfig) -> List[RemoteShardHandle]:
        """Replace the host fleet with ``n_shards`` fresh partitions."""
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.close()
        self.n_shards = n_shards
        return self.spawn_shards(config)

    def close(self) -> None:
        """Shut the whole fleet down (primaries, standbys, promoted hosts)."""
        self._handles = None
        clients, self._clients = self._clients, []
        for client in clients:
            client.send_shutdown()
        for client in clients:
            client.destroy()
        if self._owns_base and self._active_base is not None:
            shutil.rmtree(self._active_base, ignore_errors=True)
        self._owns_base = False
        self._active_base = None

    # ------------------------------------------------------------------ #
    # Health / replication observability
    # ------------------------------------------------------------------ #

    def check_health(self) -> Dict[int, bool]:
        """Heartbeat every partition; dead primaries fail over here and now.

        Returns shard_id -> healthy.  Raises :class:`WorkerError` for a
        partition whose primary is dead with no standby left.
        """
        return {handle.shard_id: handle.heartbeat() for handle in self.handles}

    @property
    def replication_summary(self) -> Optional[Dict[str, object]]:
        """Router-side replication facts (no extra round trips)."""
        if self._handles is None:
            return None
        return {
            "replicas": self.replicas,
            "min_replicas": self.min_replicas,
            "max_lag_records": self.max_lag_records,
            "failovers": sum(handle.failovers for handle in self._handles),
            "applied_lsn": {
                handle.shard_id: handle.replicated_lsn for handle in self._handles
            },
            "replication_lag_records": {
                handle.shard_id: handle.wal_lsn - handle.replicated_lsn
                for handle in self._handles
            },
        }

    def replication_health(self) -> Dict[int, Dict[str, object]]:
        """Live per-partition ``repl_status`` (one round trip per primary)."""
        return {
            handle.shard_id: handle.call("repl_status")  # type: ignore[misc]
            for handle in self.handles
        }

    def telemetry_gauges(self) -> Dict[str, float]:
        """Router-side cluster gauges folded into the merged telemetry
        snapshot (no extra round trips; {} before the fleet is live)."""
        if self._handles is None:
            return {}
        return {
            "cluster.failovers": float(
                sum(handle.failovers for handle in self._handles)
            ),
            "cluster.replication_lag_records": float(
                max(
                    (
                        handle.wal_lsn - handle.replicated_lsn
                        for handle in self._handles
                    ),
                    default=0,
                )
            ),
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, tasks):
        """Opaque thunks run on the calling thread (closures cannot cross
        the wire); the parallel path is :meth:`run_shards`."""
        return run_serially(tasks)

    def run_shards(
        self, shards: Sequence[object], method: str, args: Tuple[object, ...]
    ) -> List[object]:
        """Pipeline one command to every host, then collect every reply.

        Identical discipline and failure contract to the process executor;
        the batch fan-out encodes the payload once and writes the same
        frame to every socket.
        """
        if (
            method == "process_batch"
            and len(args) == 1
            and self._handles is not None
            and len(shards) == len(self._handles)
            and all(a is b for a, b in zip(shards, self._handles))
        ):
            return self._fan_out_batch(args[0])  # type: ignore[arg-type]
        for shard in shards:
            shard.submit(method, *args)  # type: ignore[attr-defined]
        outcomes: List[Tuple[Optional[object], Optional[BaseException]]] = []
        for shard in shards:
            try:
                outcomes.append((shard.collect(), None))  # type: ignore[attr-defined]
            except Exception as exc:  # noqa: BLE001 - collect-all contract
                outcomes.append((None, exc))
        return raise_first_failure(outcomes)

    def _fan_out_batch(self, documents: Sequence[Document]) -> List[List[BatchUpdate]]:
        handles = self._handles or []
        docs = documents if isinstance(documents, list) else list(documents)
        payload = codec.encode_document_batch(docs)
        frame = codec.pack_frame({"c": "batch_commit"}, payload)
        control_len = len(frame) - len(payload)
        self.stats.batches += 1
        self.stats.events += len(docs)
        for handle in handles:
            self.stats.control_bytes += control_len
            self.stats.payload_pipe_bytes += len(payload)
            handle.submit_prepacked("batch_commit", frame)
        outcomes: List[Tuple[Optional[object], Optional[BaseException]]] = []
        for handle in handles:
            try:
                outcomes.append((handle.collect(), None))
            except Exception as exc:  # noqa: BLE001 - collect-all contract
                outcomes.append((None, exc))
        return raise_first_failure(outcomes)  # type: ignore[return-value]
