"""Cluster layer: remote shard hosts, WAL shipping, router failover.

Composes the existing pieces — the procpool command surface, the codec
frames, the per-shard WAL — into a distributed deployment:

* :class:`~repro.cluster.remote.RemoteShardExecutor` (``executor="remote"``)
  fans a :class:`~repro.runtime.sharded.ShardedMonitor` out to shard-host
  *processes* reached over loopback/network sockets instead of pipes;
* each partition is a primary host plus optional hot standbys kept current
  by WAL-segment shipping (:class:`~repro.cluster.replication
  .ReplicationSender`) with a bounded replication lag;
* on primary death the partition's :class:`~repro.cluster.remote
  .RemoteShardHandle` promotes a standby, resumes from the durable prefix
  and redoes the unreplicated suffix — recovered state is byte-identical to
  a single-engine replay.
"""

from repro.cluster.remote import RemoteShardExecutor, RemoteShardHandle
from repro.cluster.replication import ReplicationSender
from repro.cluster.transport import FrameSocket

__all__ = [
    "FrameSocket",
    "RemoteShardExecutor",
    "RemoteShardHandle",
    "ReplicationSender",
]
