"""The shard-host role: one `EngineShard` served over codec frames on a socket.

A shard host is the cluster-process twin of :func:`repro.runtime.procpool
._shard_worker_main`: it owns one :class:`~repro.runtime.shard.EngineShard`
and answers the identical command surface — same ``{"c": command, "a": args}``
request frames, same ``{"s", "v", "e"}`` replies — but listens on a TCP
socket (so the router can live on another box) and adds the durability and
replication duties a cluster member has:

* **Apply-then-journal.**  The engine runs every mutating command first;
  only an *accepted* command is appended to the host's WAL and offered to
  its replication senders.  A rejected command (say, a stale document) thus
  leaves no trace — no LSN hole, no record a standby would choke on — so
  the WAL holds exactly the record sequence a single engine would replay.
  The apply→journal window is crash-equivalent to dying before the apply:
  a primary killed inside it loses the un-journaled state change with its
  memory, and the router's redo replays the command on the promoted
  standby at the same LSN.  Replies to journaled commands carry ``"l"``
  (the record's LSN) and ``"rl"`` (the lowest standby-acked LSN) so the
  router can trim its redo queue.
* **Hot-standby mode.**  A host started with ``standby=True`` refuses
  mutating commands and instead applies the primary's shipped WAL lines
  (connections that greet with role ``"wal"``) through
  :class:`~repro.persistence.replication.ReplicaApplier` — the normal
  recovery path, which is what makes a promoted standby byte-identical to
  a single-engine replay.  ``promote`` flips it to primary at a record
  boundary and returns the applied LSN (the durable prefix).
* **Bounded lag / min-replicas acks.**  The journal path optionally blocks
  until every live standby is within ``max_lag_records`` of the new record
  (or, with ``min_replicas`` >= 1, until that many standbys acked it), so
  replication lag is a configuration, not an accident.

Connections declare a role in their first frame: ``{"r": "ctl"}`` for the
command surface, ``{"r": "wal"}`` for a replication subscription.  The
``fail_next`` command is deliberate fault injection for the failover tests
(``before_journal`` dies before the record exists anywhere;
``after_replicate`` dies after the standby acked it — the two edges of the
crash window).
"""

from __future__ import annotations

import os
import socket
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import MonitorConfig
from repro.exceptions import WorkerError
from repro.persistence import codec
from repro.persistence.replication import KIND_ADOPT, ReplicaApplier
from repro.persistence.wal import WriteAheadLog
from repro.cluster.replication import ReplicationSender
from repro.cluster.transport import DEFAULT_MAX_FRAME_BYTES, FrameSocket
from repro.runtime.procpool import (
    _SHARD_METHODS,
    _SHARD_PROPERTIES,
    _decode_batch_payload,
)
from repro.runtime.shard import EngineShard

_OK = "ok"
_ERR = "err"

#: Connection roles (the first frame of every connection names one).
ROLE_CONTROL = "ctl"
ROLE_WAL = "wal"

#: Commands that change shard state and are therefore journaled/replicated.
MUTATING_COMMANDS = (
    "process",
    "process_batch",
    "batch_commit",
    "register",
    "unregister",
    "renormalize",
    "adopt_encoded",
    "restore_encoded",
)

#: Fault-injection windows understood by ``fail_next``.
CRASH_MODES = ("before_journal", "after_replicate")


@dataclass
class HostOptions:
    """Everything a shard-host process needs beyond the monitor config.

    Picklable on purpose: the executor passes one across the process spawn.
    """

    wal_dir: Optional[str] = None
    standby: bool = False
    group_commit: int = 16
    segment_max_bytes: int = 4 * 1024 * 1024
    fsync: bool = False
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    result_cache: int = 1024


class ShardHost:
    """One shard served on a socket; primary or hot standby."""

    def __init__(
        self, shard_id: int, config: MonitorConfig, options: Optional[HostOptions] = None
    ) -> None:
        self.shard_id = shard_id
        self.options = options or HostOptions()
        self._shard = EngineShard(shard_id, config)
        self._shard.capture_renorms = True
        # One lock serializes shard + WAL access across control connections,
        # the replication receive loop and promotion.
        self._lock = threading.RLock()
        self._wal: Optional[WriteAheadLog] = None
        self._applier: Optional[ReplicaApplier] = None
        if self.options.wal_dir is not None:
            self._wal = WriteAheadLog(
                self.options.wal_dir,
                group_commit=self.options.group_commit,
                segment_max_bytes=self.options.segment_max_bytes,
                fsync=self.options.fsync,
                telemetry=self._shard.telemetry,
            )
            self._applier = ReplicaApplier(
                self._shard,
                wal=self._wal,
                shard_id=shard_id,
                cache_size=self.options.result_cache,
            )
        self._primary = not self.options.standby
        self._senders: List[ReplicationSender] = []
        self._min_replicas = 0
        self._max_lag = 0
        self._repl_timeout = 10.0
        self._crash_next: Optional[str] = None
        self._running = True
        self._listener: Optional[socket.socket] = None

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        on_ready: Optional[Callable[[Tuple[str, int]], None]] = None,
    ) -> None:
        """Bind, report the bound address, accept connections until shutdown."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(16)
        self._listener = listener
        if on_ready is not None:
            on_ready(listener.getsockname()[:2])
        try:
            while self._running:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    break  # listener closed by shutdown
                frame_socket = FrameSocket(
                    conn, max_frame_bytes=self.options.max_frame_bytes
                )
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(frame_socket,),
                    name=f"shard-host-{self.shard_id}-conn",
                    daemon=True,
                )
                thread.start()
        finally:
            self._teardown()

    def _teardown(self) -> None:
        with self._lock:
            for sender in self._senders:
                sender.stop()
            self._senders = []
            if self._wal is not None:
                try:
                    self._wal.close()
                except Exception:  # noqa: BLE001 - best-effort final flush
                    pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def _shutdown(self) -> None:
        self._running = False
        listener = self._listener
        if listener is not None:
            # close() alone does not reliably wake a thread blocked in
            # accept() on Linux; shutting the listening socket down does.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass

    def _serve_connection(self, frame_socket: FrameSocket) -> None:
        try:
            header, _ = codec.unpack_frame(frame_socket.recv_bytes())
            role = header.get("r") if isinstance(header, dict) else None
            if role == ROLE_WAL:
                self._serve_replication(frame_socket)
            elif role == ROLE_CONTROL:
                self._serve_control(frame_socket)
        except (EOFError, OSError):
            pass
        finally:
            frame_socket.close()

    # ------------------------------------------------------------------ #
    # Control connections (the procpool command surface + cluster commands)
    # ------------------------------------------------------------------ #

    def _serve_control(self, frame_socket: FrameSocket) -> None:
        while self._running:
            try:
                request = frame_socket.recv_bytes()
            except (EOFError, OSError):
                return
            status = _OK
            value: object = None
            extra: Dict[str, object] = {}
            raw: List[object] = []
            renorms: List[Tuple[float, float]] = []
            command = "?"
            try:
                header, tail = codec.unpack_frame(request)
                command = header["c"]
                with self._lock:
                    value, extra = self._execute(command, header, tail)
                    raw = self._shard.drain_raw_updates()
                    renorms = self._shard.drain_renormalizations()
            except Exception as exc:  # noqa: BLE001 - every error crosses back
                status, value = _ERR, exc
            fallback = WorkerError(
                f"shard host {self.shard_id}: reply to {command!r} could not "
                "be encoded"
            )
            sent = False
            for reply_status, reply_value in ((status, value), (_ERR, fallback)):
                tail_writer = codec.TailWriter()
                try:
                    events: Dict[str, object] = {}
                    if raw:
                        events["r"] = codec.encode_value(raw, tail_writer)
                    if renorms:
                        events["n"] = [[origin, factor] for origin, factor in renorms]
                    reply_header: Dict[str, object] = {
                        "s": reply_status,
                        "v": codec.encode_value(reply_value, tail_writer),
                        "e": events,
                    }
                    reply_header.update(extra)
                    reply = codec.pack_frame(reply_header, tail_writer.take())
                    frame_socket.send_bytes(reply)
                    sent = True
                    break
                except Exception:  # noqa: BLE001 - try the fallback reply
                    continue
            if not sent:
                return
            if command == "shutdown":
                self._shutdown()
                return

    def _execute(
        self, command: str, header: Dict[str, object], tail
    ) -> Tuple[object, Dict[str, object]]:
        """Run one command under the host lock; returns (value, reply extras)."""
        shard = self._shard
        if command == "ping":
            return os.getpid(), {}
        if command == "shutdown":
            return None, {}
        if command == "set_capture_raw":
            shard.capture_raw = bool(header["a"][0])  # type: ignore[index]
            return None, {}
        if command == "queries":
            return dict(shard.queries), {}
        if command == "counters":
            return shard.counters.snapshot(), {}
        if command == "telemetry":
            return shard.telemetry_snapshot(), {}
        if command == "response_times":
            return list(shard.response_times), {}
        if command == "promote":
            return self._promote(), {}
        if command == "repl_start":
            args = self._decode_args(header, tail)
            return self._repl_start(*args), {}
        if command == "repl_status":
            return self._repl_status(), {}
        if command == "applied_lsn":
            return (self._applier.applied_lsn if self._applier else 0), {}
        if command == "redo_result":
            args = self._decode_args(header, tail)
            return self._redo_result(int(args[0])), {}
        if command == "fail_next":
            args = self._decode_args(header, tail)
            if args[0] not in CRASH_MODES:
                raise WorkerError(
                    f"unknown crash mode {args[0]!r}; expected one of {CRASH_MODES}"
                )
            self._crash_next = args[0]
            return None, {}
        if command.startswith("wal_"):
            raise WorkerError(
                f"shard host {self.shard_id}: {command!r} is not served — a "
                "cluster host owns its WAL (DurableMonitor journaling does "
                "not compose with executor='remote')"
            )
        if command == "batch_commit":
            documents = _decode_batch_payload(header, tail, None)
            self._mutation_guard()
            value = shard.process_batch(documents)
            extra = self._journal_mutation("batch_commit", (), documents)
            self._record_result(extra, value)
            self._wait_replication(extra)
            return value, extra
        if command in _SHARD_METHODS:
            args = self._decode_args(header, tail)
            if command not in MUTATING_COMMANDS:
                return getattr(shard, command)(*args), {}
            self._mutation_guard()
            value = getattr(shard, command)(*args)
            extra = self._journal_mutation(command, args, None)
            self._record_result(extra, value)
            self._wait_replication(extra)
            return value, extra
        if command in _SHARD_PROPERTIES:
            return getattr(shard, command), {}
        raise WorkerError(
            f"shard host {self.shard_id}: unknown command {command!r}"
        )

    @staticmethod
    def _decode_args(header: Dict[str, object], tail) -> List[object]:
        return [codec.decode_value(arg, tail) for arg in header.get("a", ())]

    # ------------------------------------------------------------------ #
    # Apply-then-journal
    # ------------------------------------------------------------------ #

    def _mutation_guard(self) -> None:
        """Pre-apply checks: split-brain refusal and fault injection.

        Runs *before* the engine does — the router only ever mutates the
        primary, so a mutation on a standby must be refused without
        touching its state, and the ``before_journal`` crash window means
        "the record exists nowhere, not even in memory".
        """
        if not self._primary:
            raise WorkerError(
                f"shard host {self.shard_id} is a standby; it only accepts "
                "mutations through replication (promote it first)"
            )
        if self._crash_next == "before_journal":
            os._exit(137)

    def _journal_mutation(
        self, command: str, args: Tuple[object, ...], documents
    ) -> Dict[str, object]:
        """Journal one *applied* mutating command and ship it to every sender.

        Called only after the engine accepted the command, so the log never
        contains a record whose replay would fail.  Returns the reply
        extras (``l``/``rl``) — empty when the host is not journaling.
        """
        if self._wal is None:
            return {}
        telemetry = self._shard.telemetry
        started = perf_counter() if telemetry.enabled else 0.0
        if command == "process":
            kind, data = codec.document_record(args[0])
        elif command == "process_batch":
            kind, data = codec.batch_record(args[0])
        elif command == "batch_commit":
            kind, data = codec.batch_record(documents)
        elif command == "register":
            kind, data = codec.register_record(args[0], shard=self.shard_id)
        elif command == "unregister":
            kind, data = codec.unregister_record(int(args[0]), shard=self.shard_id)
        elif command == "renormalize":
            kind, data = codec.renormalize_record(float(args[0]))
        else:  # adopt_encoded / restore_encoded
            op = "restore" if command == "restore_encoded" else "adopt"
            kind, data = KIND_ADOPT, {"op": op, "state": args[0]}
        lsn = self._wal.last_lsn + 1
        line = codec.pack_line(
            {"v": codec.CODEC_VERSION, "lsn": lsn, "kind": kind, "data": data}
        )
        self._wal.append_line(line, lsn)
        for sender in self._senders:
            sender.offer(lsn, line)
        if self._crash_next == "after_replicate":
            for sender in self._senders:
                sender.wait_for(lsn, self._repl_timeout)
            os._exit(137)
        if telemetry.enabled:
            telemetry.observe("cluster.journal", perf_counter() - started)
        return {"l": lsn, "rl": self._replicated_lsn(lsn)}

    def _record_result(self, extra: Dict[str, object], value: object) -> None:
        if extra and self._applier is not None:
            self._applier.record_result(int(extra["l"]), value)  # type: ignore[arg-type]
            self._applier.applied_lsn = int(extra["l"])  # type: ignore[arg-type]

    def _replicated_lsn(self, lsn: int) -> int:
        """Lowest acked LSN across senders (``lsn`` itself with none attached).

        Failed senders keep their last ack in the minimum on purpose: the
        router must not trim redo entries a stale standby never received.
        """
        if not self._senders:
            return lsn
        return min(sender.acked_lsn for sender in self._senders)

    def _wait_replication(self, extra: Dict[str, object]) -> None:
        """Bounded lag: block the ack until the standbys are close enough."""
        if not extra or not self._senders:
            return
        telemetry = self._shard.telemetry
        started = perf_counter() if telemetry.enabled else 0.0
        lsn = int(extra["l"])  # type: ignore[arg-type]
        if self._min_replicas > 0:
            needed = min(self._min_replicas, len(self._senders))
            acked = 0
            for sender in self._senders:
                if acked >= needed:
                    break
                if sender.wait_for(lsn, self._repl_timeout):
                    acked += 1
        elif self._max_lag >= 0:
            floor = lsn - self._max_lag
            if floor > 0:
                for sender in self._senders:
                    sender.wait_for(floor, self._repl_timeout)
        if telemetry.enabled:
            telemetry.observe("cluster.replication_ack", perf_counter() - started)
        extra["rl"] = self._replicated_lsn(lsn)

    # ------------------------------------------------------------------ #
    # Cluster commands
    # ------------------------------------------------------------------ #

    def _promote(self) -> int:
        """Standby -> primary at a record boundary; returns the applied LSN.

        Idempotent: promoting a primary returns its journal position.  The
        replication receive loop checks ``_primary`` under the same lock, so
        records still buffered in the subscription socket are never applied
        after this returns — the router redoes them instead, at the same
        LSNs, which is what keeps the promoted log byte-identical.
        """
        if self._wal is None:
            raise WorkerError(
                f"shard host {self.shard_id} has no WAL; nothing to promote"
            )
        if not self._primary:
            self._primary = True
            # Event buffers accumulated while *applying* replicated records
            # belong to replies the dead primary already delivered (or never
            # will); flushing them into the next reply would double-notify.
            self._shard.drain_raw_updates()
            self._shard.drain_renormalizations()
        self._wal.flush()
        return self._applier.applied_lsn if self._applier else self._wal.last_lsn

    def _repl_start(
        self,
        host: str,
        port: int,
        min_replicas: int,
        max_lag: int,
        repl_timeout: float,
    ) -> int:
        """Attach one standby; streams the durable suffix, then live records."""
        if self._wal is None:
            raise WorkerError(
                f"shard host {self.shard_id} has no WAL; replication needs "
                "journaling (spawn the host with a wal_dir)"
            )
        if not self._primary:
            raise WorkerError(
                f"shard host {self.shard_id} is a standby; only a primary "
                "streams its WAL"
            )
        self._min_replicas = int(min_replicas)
        self._max_lag = int(max_lag)
        self._repl_timeout = float(repl_timeout)
        self._wal.flush()
        sender = ReplicationSender(
            self._wal,
            (host, int(port)),
            max_frame_bytes=self.options.max_frame_bytes,
            connect_timeout=self._repl_timeout,
        )
        sender.start()
        self._senders = [s for s in self._senders if not s.failed]
        self._senders.append(sender)
        return self._wal.last_lsn

    def _repl_status(self) -> Dict[str, object]:
        return {
            "primary": self._primary,
            "last_lsn": self._wal.last_lsn if self._wal is not None else 0,
            "applied_lsn": self._applier.applied_lsn if self._applier else 0,
            "replicas": [
                {"acked_lsn": sender.acked_lsn, "failed": sender.failed}
                for sender in self._senders
            ],
        }

    def _redo_result(self, lsn: int) -> object:
        if self._applier is None:
            raise WorkerError(
                f"shard host {self.shard_id} has no replica cache (no WAL)"
            )
        found, value = self._applier.cached_result(lsn)
        if not found:
            raise WorkerError(
                f"shard host {self.shard_id}: result of lsn {lsn} is not "
                "cached (the redo window was exceeded)"
            )
        return value

    # ------------------------------------------------------------------ #
    # Replication subscriptions (standby side)
    # ------------------------------------------------------------------ #

    def _serve_replication(self, frame_socket: FrameSocket) -> None:
        if self._applier is None:
            return  # no WAL: cannot subscribe; closing refuses the sender
        with self._lock:
            applied = self._applier.applied_lsn
        frame_socket.send_bytes(codec.pack_frame({"k": "sub", "a": applied}))
        while self._running:
            try:
                data = frame_socket.recv_bytes()
            except (EOFError, OSError):
                return
            header, tail = codec.unpack_frame(data)
            if not isinstance(header, dict) or header.get("k") != "rec":
                return
            with self._lock:
                if self._primary:
                    # Promoted between records: anything still buffered in
                    # this socket is redone by the router at the same LSNs.
                    return
                self._applier.apply_line(bytes(tail))
                # A standby has no reply to carry event buffers away;
                # discard them so replication cannot grow memory unboundedly.
                self._shard.drain_raw_updates()
                self._shard.drain_renormalizations()
                applied = self._applier.applied_lsn
            frame_socket.send_bytes(codec.pack_frame({"k": "ack", "l": applied}))
