"""Length-prefixed codec frames over a TCP socket.

The procpool wire format (:func:`repro.persistence.codec.pack_frame`) is not
self-delimiting — a pipe delivers it as one message, a byte stream does not —
so the cluster layer adds the same 4-byte big-endian length prefix the
service protocol uses.  :class:`FrameSocket` mirrors the
``send_bytes``/``recv_bytes`` surface of a :class:`multiprocessing
.connection.Connection`, which lets :class:`~repro.cluster.remote
.RemoteShardHandle` reuse the pipe handle's protocol plumbing unchanged:
EOF raises :class:`EOFError`, a timeout surfaces as :class:`socket.timeout`
(an :class:`OSError` subclass), and both are mapped to
:class:`~repro.exceptions.WorkerError` by the caller exactly like a dead
pipe.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional, Tuple

from repro.exceptions import ProtocolError

_HEADER = struct.Struct(">I")

#: Shard replies coalesce a whole batch into one frame; allow generous room.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameSocket:
    """One blocking, length-prefixed frame stream over a connected socket."""

    def __init__(
        self, sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    ) -> None:
        self._sock = sock
        self._max_frame_bytes = max_frame_bytes
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (tests may pass a socketpair)

    @classmethod
    def connect(
        cls,
        address: Tuple[str, int],
        timeout: Optional[float] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "FrameSocket":
        sock = socket.create_connection(address, timeout=timeout)
        sock.settimeout(None)
        return cls(sock, max_frame_bytes=max_frame_bytes)

    def settimeout(self, timeout: Optional[float]) -> None:
        """Bound every subsequent ``recv_bytes`` (the request timeout)."""
        self._sock.settimeout(timeout)

    def send_bytes(self, data: bytes) -> None:
        size = len(data)
        if size > self._max_frame_bytes:
            raise ProtocolError(
                f"outgoing frame of {size} bytes exceeds the "
                f"{self._max_frame_bytes}-byte limit"
            )
        header = _HEADER.pack(size)
        # sendmsg avoids concatenating header + a multi-megabyte payload.
        if hasattr(self._sock, "sendmsg"):
            sent = self._sock.sendmsg([header, data])
            total = len(header) + size
            if sent < total:
                remainder = (header + data)[sent:] if sent < 4 else data[sent - 4 :]
                self._sock.sendall(remainder)
        else:  # pragma: no cover - all posix sockets have sendmsg
            self._sock.sendall(header)
            if data:
                self._sock.sendall(data)

    def recv_bytes(self) -> bytes:
        header = self._recv_exact(_HEADER.size)
        (size,) = _HEADER.unpack(header)
        if size > self._max_frame_bytes:
            raise ProtocolError(
                f"incoming frame of {size} bytes exceeds the "
                f"{self._max_frame_bytes}-byte limit"
            )
        return self._recv_exact(size)

    def _recv_exact(self, size: int) -> bytes:
        if size == 0:
            return b""
        buffer = bytearray(size)
        view = memoryview(buffer)
        received = 0
        while received < size:
            count = self._sock.recv_into(view[received:], size - received)
            if count == 0:
                raise EOFError("peer closed the connection")
            received += count
        return bytes(buffer)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "FrameSocket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
