"""WAL shipping: one primary shard host streaming to one hot standby.

A :class:`ReplicationSender` owns a single subscriber connection.  The
standby greets with its applied LSN; the sender first streams the durable
segment suffix past that position (:func:`repro.persistence.replication
.iter_segment_lines` — the catch-up), then live-journaled lines handed to
:meth:`ReplicationSender.offer` by the host's journal path.  The standby
acks every applied record with its new applied LSN; :meth:`wait_for` is the
primitive the host's bounded-lag window and ``min_replicas`` waits build on.

Wire format (frames are length-prefixed codec frames, see
:mod:`repro.cluster.transport`):

* standby → sender: ``{"k": "sub", "a": <applied_lsn>}`` once, then
  ``{"k": "ack", "l": <applied_lsn>}`` after each applied record;
* sender → standby: ``{"k": "rec", "l": <lsn>}`` with the raw CRC-framed
  WAL line as the frame tail — the identical bytes the primary journaled.

A sender that hits any socket or stream error marks itself *failed*, wakes
every waiter, and stays failed: the primary keeps serving unreplicated
(surfaced through ``repl_status``) rather than blocking the ingest path on
a dead standby.
"""

from __future__ import annotations

import queue
import threading
from typing import Optional, Tuple

from repro.persistence import codec
from repro.persistence.replication import iter_segment_lines
from repro.persistence.wal import WriteAheadLog
from repro.cluster.transport import FrameSocket

_STOP = object()


class ReplicationSender:
    """Streams one WAL to one standby; tracks the standby's acked LSN."""

    def __init__(
        self,
        wal: WriteAheadLog,
        address: Tuple[str, int],
        max_frame_bytes: int,
        connect_timeout: float = 10.0,
    ) -> None:
        self._wal = wal
        self.address = address
        self._max_frame_bytes = max_frame_bytes
        self._connect_timeout = connect_timeout
        self._socket: Optional[FrameSocket] = None
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._lock = threading.Lock()
        self._acked = threading.Condition(self._lock)
        self._acked_lsn = 0
        self._failed = False
        self._switch_lsn = 0
        self._writer: Optional[threading.Thread] = None
        self._reader: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle (both called under the host lock)
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Connect, read the standby's position, begin streaming.

        The caller must hold the journal lock and have flushed the WAL:
        every line <= ``wal.last_lsn`` is then on disk (the catch-up range)
        and every later line reaches :meth:`offer` before any journal write
        that follows, so the stream is gapless by construction.
        """
        self._socket = FrameSocket.connect(
            self.address,
            timeout=self._connect_timeout,
            max_frame_bytes=self._max_frame_bytes,
        )
        self._socket.settimeout(self._connect_timeout)
        self._socket.send_bytes(codec.pack_frame({"r": "wal"}))
        header, _ = codec.unpack_frame(self._socket.recv_bytes())
        if not isinstance(header, dict) or header.get("k") != "sub":
            raise EOFError(f"standby greeting was not a subscribe frame: {header!r}")
        self._socket.settimeout(None)
        with self._lock:
            self._acked_lsn = int(header["a"])
        self._switch_lsn = self._wal.last_lsn
        self._writer = threading.Thread(
            target=self._write_loop, name="repl-send", daemon=True
        )
        self._reader = threading.Thread(
            target=self._ack_loop, name="repl-ack", daemon=True
        )
        self._writer.start()
        self._reader.start()

    def stop(self) -> None:
        self._queue.put(_STOP)
        self._fail()
        for thread in (self._writer, self._reader):
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=2.0)

    # ------------------------------------------------------------------ #
    # Journal-path surface
    # ------------------------------------------------------------------ #

    def offer(self, lsn: int, line: bytes) -> None:
        """Queue one live-journaled line (called under the host lock)."""
        if not self._failed:
            self._queue.put((lsn, line))

    def wait_for(self, lsn: int, timeout: Optional[float]) -> bool:
        """Block until the standby acked ``lsn`` (True) or the sender
        failed / the timeout elapsed (False)."""
        with self._acked:
            return self._acked.wait_for(
                lambda: self._failed or self._acked_lsn >= lsn, timeout=timeout
            ) and not self._failed and self._acked_lsn >= lsn

    @property
    def acked_lsn(self) -> int:
        with self._lock:
            return self._acked_lsn

    @property
    def failed(self) -> bool:
        return self._failed

    # ------------------------------------------------------------------ #
    # Threads
    # ------------------------------------------------------------------ #

    def _write_loop(self) -> None:
        try:
            start_after = self._acked_lsn
            for lsn, line in iter_segment_lines(self._wal, after_lsn=start_after):
                if lsn > self._switch_lsn:
                    break  # the live queue covers the rest
                self._send_record(lsn, line)
            while True:
                item = self._queue.get()
                if item is _STOP:
                    return
                lsn, line = item  # type: ignore[misc]
                if lsn <= self._switch_lsn:
                    continue  # already shipped by the catch-up scan
                self._send_record(lsn, line)
        except Exception:
            self._fail()

    def _send_record(self, lsn: int, line: bytes) -> None:
        assert self._socket is not None
        self._socket.send_bytes(codec.pack_frame({"k": "rec", "l": lsn}, line))

    def _ack_loop(self) -> None:
        try:
            while True:
                assert self._socket is not None
                header, _ = codec.unpack_frame(self._socket.recv_bytes())
                if not isinstance(header, dict) or header.get("k") != "ack":
                    raise EOFError(f"standby sent a non-ack frame: {header!r}")
                with self._acked:
                    self._acked_lsn = max(self._acked_lsn, int(header["l"]))
                    self._acked.notify_all()
        except Exception:
            self._fail()

    def _fail(self) -> None:
        with self._acked:
            self._failed = True
            self._acked.notify_all()
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
