"""ID-ordered posting lists.

Two flavours exist:

* :class:`QueryPostingList` — the per-term list of the *query* inverted file
  used by RIO/MRIO.  Entries are ``(query id, preference weight)`` sorted by
  query id, which is what enables the cursor "jumps" of the ID-ordering
  paradigm.
* :class:`DocPostingList` — the per-term list of the *document* inverted file
  used by the static search substrate and the expiration re-evaluation path.
  Entries are ``(doc id, weight)`` sorted by doc id with lazy deletion.

Both store their columns in :mod:`array` arrays rather than Python lists:
ids are packed 8-byte integers (``"q"``) and weights packed doubles
(``"d"``), an order of magnitude less memory than lists of boxed objects and
contiguous in memory, which keeps the binary searches (:meth:`first_geq`)
and the batched cursor walks of ``process_batch`` cache-friendly.  Appends
remain amortized O(1).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterator, Optional, Tuple

from repro.exceptions import IndexError_
from repro.types import DocId, QueryId

#: Array type codes of the id and weight columns (8-byte int / double).
ID_TYPECODE = "q"
WEIGHT_TYPECODE = "d"


class QueryPostingList:
    """Per-term, query-id-ordered posting list of the query index.

    The two parallel packed arrays keep memory compact and make
    position-based access (needed by the range-max bound structures)
    trivial.
    """

    __slots__ = ("term_id", "qids", "weights")

    def __init__(self, term_id: int) -> None:
        self.term_id = term_id
        self.qids: array = array(ID_TYPECODE)
        self.weights: array = array(WEIGHT_TYPECODE)

    def __len__(self) -> int:
        return len(self.qids)

    def __iter__(self) -> Iterator[Tuple[QueryId, float]]:
        return iter(zip(self.qids, self.weights))

    def append(self, query_id: QueryId, weight: float) -> int:
        """Append an entry; query ids must arrive in strictly increasing order.

        Returns the position of the new entry.
        """
        if self.qids and query_id <= self.qids[-1]:
            raise IndexError_(
                f"query id {query_id} appended out of order to term "
                f"{self.term_id} (last id {self.qids[-1]})"
            )
        self.qids.append(query_id)
        self.weights.append(weight)
        return len(self.qids) - 1

    def insert(self, query_id: QueryId, weight: float) -> int:
        """Insert an entry keeping id order (used when ids are not sequential)."""
        pos = bisect_left(self.qids, query_id)
        if pos < len(self.qids) and self.qids[pos] == query_id:
            raise IndexError_(
                f"query id {query_id} already present in term {self.term_id}"
            )
        self.qids.insert(pos, query_id)
        self.weights.insert(pos, weight)
        return pos

    def remove(self, query_id: QueryId) -> bool:
        """Remove the entry of ``query_id``; returns False when absent."""
        pos = self.position_of(query_id)
        if pos is None:
            return False
        del self.qids[pos]
        del self.weights[pos]
        return True

    def position_of(self, query_id: QueryId) -> Optional[int]:
        """Exact position of ``query_id`` in the list, or ``None``."""
        pos = bisect_left(self.qids, query_id)
        if pos < len(self.qids) and self.qids[pos] == query_id:
            return pos
        return None

    def first_geq(self, query_id: QueryId, start: int = 0) -> int:
        """Position of the first entry with id >= ``query_id`` at or after ``start``.

        Returns ``len(self)`` when no such entry exists (exhausted).
        """
        return bisect_left(self.qids, query_id, lo=start)

    def entry(self, position: int) -> Tuple[QueryId, float]:
        return self.qids[position], self.weights[position]

    def max_weight(self) -> float:
        """Largest preference weight in the list (0 when empty)."""
        return max(self.weights) if self.weights else 0.0


class DocPostingList:
    """Per-term, doc-id-ordered posting list of the document index.

    Supports lazy deletion (a tombstone set) so expired documents can be
    dropped without rewriting the arrays on every expiration; ``compact``
    rewrites the arrays once the amount of garbage crosses a threshold.
    """

    __slots__ = ("term_id", "doc_ids", "weights", "_deleted")

    def __init__(self, term_id: int) -> None:
        self.term_id = term_id
        self.doc_ids: array = array(ID_TYPECODE)
        self.weights: array = array(WEIGHT_TYPECODE)
        self._deleted: set[DocId] = set()

    def __len__(self) -> int:
        """Number of live postings."""
        return len(self.doc_ids) - len(self._deleted)

    def append(self, doc_id: DocId, weight: float) -> None:
        if self.doc_ids and doc_id <= self.doc_ids[-1]:
            raise IndexError_(
                f"doc id {doc_id} appended out of order to term {self.term_id}"
            )
        self.doc_ids.append(doc_id)
        self.weights.append(weight)

    def delete(self, doc_id: DocId) -> bool:
        """Mark ``doc_id`` as deleted; returns False if it is not present."""
        pos = bisect_left(self.doc_ids, doc_id)
        if pos >= len(self.doc_ids) or self.doc_ids[pos] != doc_id:
            return False
        if doc_id in self._deleted:
            return False
        self._deleted.add(doc_id)
        return True

    @property
    def garbage_ratio(self) -> float:
        if not self.doc_ids:
            return 0.0
        return len(self._deleted) / len(self.doc_ids)

    def compact(self) -> None:
        """Physically remove tombstoned entries."""
        if not self._deleted:
            return
        deleted = self._deleted
        live_ids = array(ID_TYPECODE)
        live_weights = array(WEIGHT_TYPECODE)
        for doc_id, weight in zip(self.doc_ids, self.weights):
            if doc_id not in deleted:
                live_ids.append(doc_id)
                live_weights.append(weight)
        self.doc_ids = live_ids
        self.weights = live_weights
        self._deleted = set()

    def iter_live(self) -> Iterator[Tuple[DocId, float]]:
        """Iterate over live postings in doc-id order."""
        for doc_id, weight in zip(self.doc_ids, self.weights):
            if doc_id not in self._deleted:
                yield doc_id, weight

    def first_geq(self, doc_id: DocId, start: int = 0) -> int:
        """Position of the first (possibly deleted) entry with id >= ``doc_id``."""
        return bisect_left(self.doc_ids, doc_id, lo=start)

    def is_deleted(self, doc_id: DocId) -> bool:
        return doc_id in self._deleted

    def max_weight(self) -> float:
        """Largest live weight in the list (0 when empty); used by WAND."""
        best = 0.0
        for doc_id, weight in zip(self.doc_ids, self.weights):
            if doc_id not in self._deleted and weight > best:
                best = weight
        return best
