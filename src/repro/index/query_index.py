"""The query-side inverted file (the index RIO/MRIO probe documents against).

The paper's first design decision is to *reverse the roles* of documents and
queries: the (relatively static) continuous queries are indexed, and each
arriving document is probed against that index.  Per dictionary term ``t_i``
the index keeps an **ID-ordered** posting list of ``(query id, preference
weight)`` entries; cursor jumps over those lists are what the ID-ordering
paradigm exploits.

The index is purely structural: it keeps the per-term postings and notifies
registered listeners (the bound maintainers in :mod:`repro.core.bounds`)
about membership changes, but it knows nothing about thresholds or scores.
Query *definitions* live in a shared packed
:class:`~repro.queries.store.QueryStore` — passed in by the owning engine,
or private when the index is used standalone — so the index retains no
per-query dict of ``Query`` objects.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import UnknownQueryError
from repro.index.postings import QueryPostingList
from repro.queries.query import Query
from repro.queries.store import QueryStore
from repro.types import QueryId, TermId


class QueryIndex:
    """ID-ordered inverted file over the registered continuous queries."""

    def __init__(self, store: Optional[QueryStore] = None) -> None:
        self._postings: Dict[TermId, QueryPostingList] = {}
        #: Shared definition store.  When the engine passes its own store,
        #: registration bookkeeping (duplicate checks, packing) happened
        #: there already and the index only maintains postings; a standalone
        #: index owns a private store and does both.
        self._store = store if store is not None else QueryStore()
        self._owns_store = store is None
        self._listeners: List["QueryIndexListener"] = []

    # ------------------------------------------------------------------ #
    # Listeners
    # ------------------------------------------------------------------ #

    def add_listener(self, listener: "QueryIndexListener") -> None:
        """Register a structure (e.g. a bound maintainer) for change events."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, query: Query) -> None:
        """Add ``query`` to the index.

        Queries registered in increasing id order append in O(1) per term;
        out-of-order ids fall back to an ordered insert.
        """
        if self._owns_store:
            self._store.register(query)  # raises DuplicateQueryError
        for term_id, weight in query.vector.items():
            plist = self._postings.get(term_id)
            if plist is None:
                plist = QueryPostingList(term_id)
                self._postings[term_id] = plist
            if not plist.qids or query.query_id > plist.qids[-1]:
                plist.append(query.query_id, weight)
            else:
                plist.insert(query.query_id, weight)
        for listener in self._listeners:
            listener.on_query_registered(query)

    def unregister(self, query_id: QueryId, query: Optional[Query] = None) -> Query:
        """Remove a query and its postings; returns the removed query.

        An owning engine that already materialized the query passes it as
        ``query`` so the index does not materialize a second copy.
        """
        if query is None:
            query = self._store.materialize_or_none(query_id)
            if query is None:
                raise UnknownQueryError(f"query {query_id} is not registered")
        for term_id in query.vector:
            plist = self._postings.get(term_id)
            if plist is None:
                continue
            plist.remove(query_id)
            if len(plist) == 0:
                del self._postings[term_id]
        if self._owns_store:
            self._store.unregister(query_id)
        for listener in self._listeners:
            listener.on_query_unregistered(query)
        return query

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def get(self, term_id: TermId) -> Optional[QueryPostingList]:
        """The posting list of ``term_id`` or ``None`` if no query uses it."""
        return self._postings.get(term_id)

    def query(self, query_id: QueryId) -> Query:
        query = self._store.materialize_or_none(query_id)
        if query is None:
            raise UnknownQueryError(f"query {query_id} is not registered")
        return query

    def has_query(self, query_id: QueryId) -> bool:
        return query_id in self._store

    def queries(self) -> Iterator[Query]:
        store = self._store
        return (store.materialize(query_id) for query_id in store.query_ids())

    def query_ids(self) -> List[QueryId]:
        return list(self._store.query_ids())

    def term_ids(self) -> List[TermId]:
        return list(self._postings.keys())

    def posting_lists(self) -> Iterator[QueryPostingList]:
        return iter(self._postings.values())

    @property
    def num_queries(self) -> int:
        return len(self._store)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        return sum(len(plist) for plist in self._postings.values())

    def positions_of(self, query: Query) -> List[Tuple[TermId, int]]:
        """The (term id, position) of each posting of ``query``.

        Used by the bound maintainers to apply point updates when the
        query's result threshold changes.
        """
        positions = []
        for term_id in query.vector:
            plist = self._postings.get(term_id)
            if plist is None:
                continue
            pos = plist.position_of(query.query_id)
            if pos is not None:
                positions.append((term_id, pos))
        return positions


class QueryIndexListener:
    """Interface for structures that must react to index membership changes."""

    def on_query_registered(self, query: Query) -> None:  # pragma: no cover - interface
        """Called after ``query`` has been added to the index."""

    def on_query_unregistered(self, query: Query) -> None:  # pragma: no cover - interface
        """Called after ``query`` has been removed from the index."""
