"""Index machinery shared by the query-side and document-side inverted files."""

from repro.index.postings import QueryPostingList, DocPostingList
from repro.index.rangemax import SegmentTreeMax, BlockMax
from repro.index.query_index import QueryIndex
from repro.index.doc_index import DocumentIndex
from repro.index.columnar import ColumnarQueryIndex, TermPostings

__all__ = [
    "QueryPostingList",
    "DocPostingList",
    "SegmentTreeMax",
    "BlockMax",
    "QueryIndex",
    "DocumentIndex",
    "ColumnarQueryIndex",
    "TermPostings",
]
