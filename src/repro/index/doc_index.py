"""Document-side inverted file.

This is the classical structure the paper's introduction starts from: an
ID-ordered inverted file over a (mostly static) document collection, used by
the top-k search substrate in :mod:`repro.search` and by the expiration
re-evaluation path (recomputing a query's top-k over the live window after
one of its results expired).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.documents.document import Document
from repro.index.postings import DocPostingList
from repro.types import DocId, TermId


class DocumentIndex:
    """ID-ordered inverted file over documents with lazy deletion."""

    def __init__(self, compact_threshold: float = 0.5) -> None:
        # When more than ``compact_threshold`` of a posting list is garbage
        # the list is physically compacted.
        self.compact_threshold = compact_threshold
        self._postings: Dict[TermId, DocPostingList] = {}
        self._documents: Dict[DocId, Document] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, document: Document) -> None:
        """Index ``document`` (doc ids must be added in increasing order)."""
        if document.doc_id in self._documents:
            return
        self._documents[document.doc_id] = document
        for term_id, weight in document.vector.items():
            plist = self._postings.get(term_id)
            if plist is None:
                plist = DocPostingList(term_id)
                self._postings[term_id] = plist
            plist.append(document.doc_id, weight)

    def remove(self, doc_id: DocId) -> bool:
        """Remove a document (lazily); returns False if it was not indexed."""
        document = self._documents.pop(doc_id, None)
        if document is None:
            return False
        for term_id in document.vector:
            plist = self._postings.get(term_id)
            if plist is None:
                continue
            plist.delete(doc_id)
            if plist.garbage_ratio > self.compact_threshold:
                plist.compact()
        return True

    def clear(self) -> None:
        self._postings.clear()
        self._documents.clear()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def get(self, term_id: TermId) -> Optional[DocPostingList]:
        return self._postings.get(term_id)

    def document(self, doc_id: DocId) -> Optional[Document]:
        return self._documents.get(doc_id)

    def documents(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: DocId) -> bool:
        return doc_id in self._documents

    @property
    def num_documents(self) -> int:
        return len(self._documents)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        return sum(len(plist) for plist in self._postings.values())

    def max_weight(self, term_id: TermId) -> float:
        """Largest live weight of ``term_id`` (0 when unused); used by WAND."""
        plist = self._postings.get(term_id)
        return plist.max_weight() if plist is not None else 0.0
