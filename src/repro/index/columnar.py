"""Columnar (struct-of-arrays) view of the query-side inverted index.

The scalar :class:`~repro.index.query_index.QueryIndex` keeps one Python
object per posting list and leaves thresholds to the result store; every
probe therefore pays Python-level dispatch per posting.  This module packs
the same information into term-partitioned contiguous columns so a probe is
a handful of array operations:

* a global *slot* space: every registered query owns one slot, and the
  per-slot columns (``query id``, ``S_k`` threshold) are flat arrays an
  engine can mask in one vectorized comparison;
* per term, parallel ``(query id, slot, weight)`` columns sorted by query
  id — the same ID-ordered layout the paper's posting lists use, but
  addressable as array slices;
* per term, *zone* metadata: zone-boundary offsets every ``zone_size``
  entries and the maximum preference weight inside each zone.  Zone maxima
  are threshold-independent, so they stay exact under threshold churn; the
  per-term maximum (the RIO-style document bound) is derived from them.

Mutations follow an amortized rebuild discipline: registrations and
unregistrations update per-term ID-ordered membership arrays and mark the
touched terms dirty; a term's packed columns are rebuilt lazily on next
access, pulling weights from the shared
:class:`~repro.queries.store.QueryStore` (passed in by the owning engine,
private when standalone) so the index keeps no per-query dict of its own.
Unregistration tombstones the query's slot, and the slot space is
compacted (densely reassigned) once more than half the slots are dead, so
long churn storms cannot leak memory.

numpy is optional: when it is unavailable the columns degrade to
:mod:`array` arrays with identical semantics (the engine then probes them
with scalar loops — same results, no vectorization).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import DuplicateQueryError, UnknownQueryError
from repro.queries.query import Query
from repro.queries.store import QueryStore, SlotMap
from repro.types import QueryId, TermId

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

HAVE_NUMPY = _np is not None

INF = float("inf")

#: Fraction of dead slots that triggers a compaction of the slot space.
COMPACT_DEAD_FRACTION = 0.5
#: Never compact below this many dead slots (avoids thrashing tiny indexes).
COMPACT_MIN_DEAD = 32


def _id_column(values: List[int]):
    """Pack query ids / slots as a contiguous signed-64 column."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


def _float_column(values: List[float]):
    """Pack weights / bounds as a contiguous float64 column."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.float64)
    return array("d", values)


class TermPostings:
    """The packed columns of one term, plus its zone metadata.

    ``qids``/``slots``/``weights`` are parallel columns sorted by query id.
    ``zone_offsets[i]`` is the first entry position of zone ``i`` (zone ``i``
    covers positions ``[zone_offsets[i], zone_offsets[i+1])``, the last zone
    runs to ``len(qids)``); ``zone_max_weights[i]`` is the maximum preference
    weight inside zone ``i`` and ``max_weight`` the maximum over all zones.
    """

    __slots__ = (
        "term_id",
        "qids",
        "slots",
        "weights",
        "zone_offsets",
        "zone_max_weights",
        "max_weight",
    )

    def __init__(
        self,
        term_id: TermId,
        qids: List[QueryId],
        slots: List[int],
        weights: List[float],
        zone_size: int,
    ) -> None:
        self.term_id = term_id
        self.qids = _id_column(qids)
        self.slots = _id_column(slots)
        self.weights = _float_column(weights)
        offsets = list(range(0, len(qids), zone_size))
        self.zone_offsets = _id_column(offsets)
        zone_maxima = [
            max(weights[start : start + zone_size]) for start in offsets
        ]
        self.zone_max_weights = _float_column(zone_maxima)
        # Derived through the zones on purpose: the zone maxima are the
        # structure under test, and the document-level bound must never be
        # tighter than what they certify.
        self.max_weight = max(zone_maxima) if zone_maxima else 0.0

    def __len__(self) -> int:
        return len(self.qids)

    def zone_of(self, position: int) -> int:
        """Index of the zone containing entry ``position``."""
        if position < 0 or position >= len(self.qids):
            raise IndexError(f"position {position} out of range")
        lo, hi = 0, len(self.zone_offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.zone_offsets[mid] <= position:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def zone_bound(self, zone: int) -> float:
        """The maximum preference weight certified for ``zone``."""
        return self.zone_max_weights[zone]


class ColumnarQueryIndex:
    """Slot-addressed, term-partitioned packed view of the query index.

    Example::

        index = ColumnarQueryIndex()
        index.register(query)
        postings = index.term(term_id)        # packed columns or None
        thresholds = index.thresholds_view()  # per-slot S_k column
    """

    def __init__(self, zone_size: int = 64, store: Optional[QueryStore] = None) -> None:
        if zone_size <= 0:
            raise ValueError(f"zone_size must be > 0, got {zone_size}")
        self.zone_size = zone_size
        #: Shared definition store the packed columns pull weights from.  An
        #: owning engine passes its store (definitions registered there
        #: already); a standalone index owns a private one and registers
        #: definitions itself.
        self._store = store if store is not None else QueryStore()
        self._owns_store = store is None
        #: Per-term ID-ordered membership (qid column only; weights live in
        #: the store and are joined in at rebuild time).
        self._term_qids: Dict[TermId, array] = {}
        self._slot_map = SlotMap()
        #: Per-slot columns; positions >= ``size`` are unused capacity.
        self._slot_qids = _id_column([])
        self._slot_thresholds = _float_column([])
        self.size = 0
        self.dead = 0
        self._dirty: set = set()
        self._term_arrays: Dict[TermId, TermPostings] = {}
        #: Cached concatenated CSR over every term (see :meth:`global_view`).
        #: Maintained *incrementally*: membership changes record only the
        #: touched term ids (``_global_changed``); the next
        #: :meth:`global_view` splices fresh spans for exactly those terms
        #: into the cached columns with array slicing — clean terms' data
        #: moves as contiguous memcpy, never through a Python loop — so a
        #: churn storm interleaved with ingest pays O(changed terms) Python
        #: work per probe instead of a rebuild over every term.
        self._global: Optional[Tuple] = None
        self._global_lengths = None  # per-term span lengths, CSR order
        self._global_changed: set = set()

    # ------------------------------------------------------------------ #
    # Slot bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def num_live(self) -> int:
        return len(self._slot_map)

    @property
    def num_terms(self) -> int:
        return len(self._term_qids)

    @property
    def capacity(self) -> int:
        return len(self._slot_qids)

    def slot_of(self, query_id: QueryId) -> int:
        slot = self._slot_map.get(query_id)
        if slot is None:
            raise UnknownQueryError(f"query {query_id} is not registered")
        return slot

    def _grow(self, minimum: int) -> None:
        capacity = max(len(self._slot_qids), 16)
        while capacity < minimum:
            capacity *= 2
        if _np is not None:
            qids = _np.full(capacity, -1, dtype=_np.int64)
            qids[: self.size] = self._slot_qids[: self.size]
            thresholds = _np.full(capacity, INF, dtype=_np.float64)
            thresholds[: self.size] = self._slot_thresholds[: self.size]
        else:
            qids = array("q", list(self._slot_qids[: self.size]))
            qids.extend([-1] * (capacity - self.size))
            thresholds = array("d", list(self._slot_thresholds[: self.size]))
            thresholds.extend([INF] * (capacity - self.size))
        self._slot_qids = qids
        self._slot_thresholds = thresholds

    # ------------------------------------------------------------------ #
    # Registration / unregistration
    # ------------------------------------------------------------------ #

    def register(self, query: Query) -> int:
        """Add ``query``; returns the slot it was assigned."""
        if query.query_id in self._slot_map:
            raise DuplicateQueryError(f"query {query.query_id} is already registered")
        if self._owns_store:
            self._store.register(query)
        if self.size >= len(self._slot_qids):
            self._grow(self.size + 1)
        slot = self.size
        self.size += 1
        self._slot_qids[slot] = query.query_id
        self._slot_thresholds[slot] = 0.0
        self._slot_map.set(query.query_id, slot)
        for term_id in query.vector:
            members = self._term_qids.get(term_id)
            if members is None:
                members = self._term_qids[term_id] = array("q")
            if not members or query.query_id > members[-1]:
                members.append(query.query_id)
            else:
                insort(members, query.query_id)
            self._dirty.add(term_id)
            self._global_changed.add(term_id)
        return slot

    def unregister(self, query: Query) -> None:
        """Remove ``query``, tombstoning its slot (compacting when due)."""
        slot = self._slot_map.pop(query.query_id)
        if slot is None:
            raise UnknownQueryError(f"query {query.query_id} is not registered")
        self._slot_qids[slot] = -1
        self._slot_thresholds[slot] = INF
        self.dead += 1
        for term_id in query.vector:
            members = self._term_qids.get(term_id)
            if members is None:
                continue
            position = bisect_left(members, query.query_id)
            if position < len(members) and members[position] == query.query_id:
                members.pop(position)
            if members:
                self._dirty.add(term_id)
            else:
                del self._term_qids[term_id]
                self._dirty.discard(term_id)
                self._term_arrays.pop(term_id, None)
            self._global_changed.add(term_id)
        if self._owns_store:
            self._store.unregister(query.query_id)
        if (
            self.dead >= COMPACT_MIN_DEAD
            and self.dead > self.size * COMPACT_DEAD_FRACTION
        ):
            self.compact()

    def compact(self) -> None:
        """Densely reassign slots, dropping every tombstone.

        Every term's packed columns reference slot positions, so compaction
        marks all terms dirty; they rebuild lazily against the new slot map.
        """
        live: List[Tuple[QueryId, float]] = [
            (int(self._slot_qids[slot]), float(self._slot_thresholds[slot]))
            for slot in range(self.size)
            if self._slot_qids[slot] >= 0
        ]
        self._slot_map.clear()
        for slot, (qid, _) in enumerate(live):
            self._slot_map.set(qid, slot)
        self.size = len(live)
        self.dead = 0
        self._slot_qids = _id_column([qid for qid, _ in live])
        self._slot_thresholds = _float_column([thr for _, thr in live])
        self._dirty.update(self._term_qids.keys())
        self._term_arrays.clear()
        # Slots moved for every term: the spliced CSR cache is useless.
        self._global = None
        self._global_lengths = None
        self._global_changed.clear()

    # ------------------------------------------------------------------ #
    # Packed column access
    # ------------------------------------------------------------------ #

    def term(self, term_id: TermId) -> Optional[TermPostings]:
        """The packed columns of ``term_id``, rebuilt if stale; ``None``
        when no registered query uses the term."""
        members = self._term_qids.get(term_id)
        if members is None:
            return None
        postings = self._term_arrays.get(term_id)
        if postings is None or term_id in self._dirty:
            slot_map = self._slot_map
            weight_of = self._store.weight_of
            postings = TermPostings(
                term_id,
                qids=list(members),
                slots=[slot_map.get(qid) for qid in members],
                weights=[weight_of(qid, term_id) for qid in members],
                zone_size=self.zone_size,
            )
            self._term_arrays[term_id] = postings
            self._dirty.discard(term_id)
        return postings

    def global_view(self) -> Tuple:
        """One CSR over *every* term's packed columns, ID-ordered by term.

        Returns ``(term_keys, starts, ends, slot_col, weight_col,
        max_weights)``: ``term_keys`` is the sorted term-id column;
        term ``term_keys[i]`` owns positions ``[starts[i], ends[i])`` of the
        concatenated ``slot_col``/``weight_col`` columns (each term's span
        sorted by query id, as in :meth:`term`); ``max_weights[i]`` is that
        term's maximum preference weight.  This is what the vectorized probe
        joins a whole batch against without any per-term Python dispatch.
        Maintained incrementally: membership changes are *spliced* into the
        cached columns — only the changed terms' spans are rebuilt in
        Python, everything between them moves as contiguous array slices —
        so a churn storm interleaved with ingest costs O(changed terms) per
        probe, not a rebuild over every registered term.
        """
        if self._global is not None and not self._global_changed:
            return self._global
        if self._global is None or _np is None:
            self._rebuild_global()
        else:
            self._splice_global()
        return self._global

    def _rebuild_global(self) -> None:
        """Full CSR construction (first build, post-compaction, no-numpy)."""
        self._global_changed.clear()
        term_keys = sorted(self._term_qids)
        lengths: List[int] = []
        max_weights: List[float] = []
        slot_parts = []
        weight_parts = []
        for term_id in term_keys:
            postings = self.term(term_id)
            lengths.append(len(postings))
            slot_parts.append(postings.slots)
            weight_parts.append(postings.weights)
            max_weights.append(postings.max_weight)
        if _np is not None and slot_parts:
            slot_col = _np.concatenate(slot_parts)
            weight_col = _np.concatenate(weight_parts)
        else:
            slot_col = _id_column([slot for part in slot_parts for slot in part])
            weight_col = _float_column(
                [weight for part in weight_parts for weight in part]
            )
        starts: List[int] = []
        ends: List[int] = []
        position = 0
        for length in lengths:
            starts.append(position)
            position += length
            ends.append(position)
        self._global_lengths = lengths
        self._global = (
            _id_column(term_keys),
            _id_column(starts),
            _id_column(ends),
            slot_col,
            weight_col,
            _float_column(max_weights),
        )

    def _splice_global(self) -> None:
        """Splice the changed terms' spans into the cached CSR columns.

        Walks the (sorted) changed term ids once; stretches of *clean*
        terms between them are carried over as whole array slices.  The
        result is bit-identical to a full rebuild — only data movement
        differs.
        """
        changed = sorted(self._global_changed)
        self._global_changed.clear()
        old_keys, old_starts, _, old_slot_col, old_weight_col, old_maxw = self._global
        old_lengths = self._global_lengths
        total = len(old_slot_col)
        num_old = len(old_keys)

        key_pieces, len_pieces, maxw_pieces = [], [], []
        slot_pieces, weight_pieces = [], []
        cursor = 0  # index into old_keys: everything before it is emitted
        for term_id in changed:
            index = int(_np.searchsorted(old_keys, term_id))
            if index > cursor:  # carry the clean stretch [cursor, index)
                key_pieces.append(old_keys[cursor:index])
                len_pieces.append(old_lengths[cursor:index])
                maxw_pieces.append(old_maxw[cursor:index])
                col_lo = int(old_starts[cursor])
                col_hi = int(old_starts[index]) if index < num_old else total
                slot_pieces.append(old_slot_col[col_lo:col_hi])
                weight_pieces.append(old_weight_col[col_lo:col_hi])
            present_before = index < num_old and int(old_keys[index]) == term_id
            if term_id in self._term_qids:  # replaced or inserted span
                postings = self.term(term_id)
                key_pieces.append([term_id])
                len_pieces.append([len(postings)])
                maxw_pieces.append([postings.max_weight])
                slot_pieces.append(postings.slots)
                weight_pieces.append(postings.weights)
            cursor = index + 1 if present_before else index
        if cursor < num_old:  # trailing clean stretch
            key_pieces.append(old_keys[cursor:])
            len_pieces.append(old_lengths[cursor:])
            maxw_pieces.append(old_maxw[cursor:])
            col_lo = int(old_starts[cursor])
            slot_pieces.append(old_slot_col[col_lo:total])
            weight_pieces.append(old_weight_col[col_lo:total])

        lengths = [int(length) for piece in len_pieces for length in piece]
        starts: List[int] = []
        ends: List[int] = []
        position = 0
        for length in lengths:
            starts.append(position)
            position += length
            ends.append(position)
        if slot_pieces:
            slot_col = _np.concatenate(slot_pieces)
            weight_col = _np.concatenate(weight_pieces)
        else:
            slot_col = _id_column([])
            weight_col = _float_column([])
        self._global_lengths = lengths
        self._global = (
            _np.concatenate([_np.asarray(piece, dtype=_np.int64) for piece in key_pieces])
            if key_pieces
            else _id_column([]),
            _id_column(starts),
            _id_column(ends),
            slot_col,
            weight_col,
            _np.concatenate(
                [_np.asarray(piece, dtype=_np.float64) for piece in maxw_pieces]
            )
            if maxw_pieces
            else _float_column([]),
        )

    def term_ids(self) -> List[TermId]:
        return list(self._term_qids.keys())

    def iter_terms(self) -> Iterator[TermPostings]:
        for term_id in list(self._term_qids.keys()):
            postings = self.term(term_id)
            if postings is not None:
                yield postings

    def qids_view(self):
        """The per-slot query-id column for slots ``[0, size)`` (-1 = dead)."""
        if _np is not None:
            return self._slot_qids[: self.size]
        return self._slot_qids

    def thresholds_view(self):
        """The per-slot ``S_k`` column for slots ``[0, size)``.

        numpy builds return a *view*: engines may write accepted-offer
        thresholds straight through it.  Dead slots hold ``+inf`` so a
        vectorized ``score > threshold`` mask can never select them.
        """
        if _np is not None:
            return self._slot_thresholds[: self.size]
        return self._slot_thresholds

    # ------------------------------------------------------------------ #
    # Threshold maintenance
    # ------------------------------------------------------------------ #

    def set_threshold(self, query_id: QueryId, threshold: float) -> None:
        self._slot_thresholds[self.slot_of(query_id)] = threshold

    def scale_thresholds(self, factor: float) -> None:
        """Divide every live threshold by ``factor`` (decay renormalization).

        Bitwise-identical to re-reading each scaled result heap: the heaps
        divide every stored score by the same factor, and IEEE-754 division
        is deterministic.  Dead slots hold ``+inf``, which the division
        leaves at ``+inf``.
        """
        if _np is not None:
            self._slot_thresholds[: self.size] /= factor
        else:
            for slot in range(self.size):
                self._slot_thresholds[slot] /= factor

    def refresh_thresholds(self, threshold_of) -> None:
        """Reload every live slot's threshold via ``threshold_of(query_id)``
        (snapshot restore, where thresholds may move in both directions)."""
        qids = self._slot_qids
        for slot in range(self.size):
            qid = qids[slot]
            if qid >= 0:
                self._slot_thresholds[slot] = threshold_of(int(qid))

    def min_live_threshold(self) -> float:
        """The smallest live ``S_k`` (``+inf`` when no query is live).

        A document whose amplified upper bound is at or below this value
        cannot enter any top-k, which is the vectorized document-level
        prune.
        """
        if self.size == 0 or not len(self._slot_map):
            return INF
        if _np is not None:
            return float(self._slot_thresholds[: self.size].min())
        return min(self._slot_thresholds[: self.size])
