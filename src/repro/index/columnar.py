"""Columnar (struct-of-arrays) view of the query-side inverted index.

The scalar :class:`~repro.index.query_index.QueryIndex` keeps one Python
object per posting list and leaves thresholds to the result store; every
probe therefore pays Python-level dispatch per posting.  This module packs
the same information into term-partitioned contiguous columns so a probe is
a handful of array operations:

* a global *slot* space: every registered query owns one slot, and the
  per-slot columns (``query id``, ``S_k`` threshold) are flat arrays an
  engine can mask in one vectorized comparison;
* per term, parallel ``(query id, slot, weight)`` columns sorted by query
  id — the same ID-ordered layout the paper's posting lists use, but
  addressable as array slices;
* per term, *zone* metadata: zone-boundary offsets every ``zone_size``
  entries and the maximum preference weight inside each zone.  Zone maxima
  are threshold-independent, so they stay exact under threshold churn; the
  per-term maximum (the RIO-style document bound) is derived from them.

Mutations follow an amortized rebuild discipline: registrations and
unregistrations update a dict-based model (`term -> {query id: weight}`)
and mark the touched terms dirty; a term's packed columns are rebuilt
lazily on next access.  Unregistration tombstones the query's slot, and the
slot space is compacted (densely reassigned) once more than half the slots
are dead, so long churn storms cannot leak memory.

numpy is optional: when it is unavailable the columns degrade to
:mod:`array` arrays with identical semantics (the engine then probes them
with scalar loops — same results, no vectorization).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import DuplicateQueryError, UnknownQueryError
from repro.queries.query import Query
from repro.types import QueryId, TermId

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

HAVE_NUMPY = _np is not None

INF = float("inf")

#: Fraction of dead slots that triggers a compaction of the slot space.
COMPACT_DEAD_FRACTION = 0.5
#: Never compact below this many dead slots (avoids thrashing tiny indexes).
COMPACT_MIN_DEAD = 32


def _id_column(values: List[int]):
    """Pack query ids / slots as a contiguous signed-64 column."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


def _float_column(values: List[float]):
    """Pack weights / bounds as a contiguous float64 column."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.float64)
    return array("d", values)


class TermPostings:
    """The packed columns of one term, plus its zone metadata.

    ``qids``/``slots``/``weights`` are parallel columns sorted by query id.
    ``zone_offsets[i]`` is the first entry position of zone ``i`` (zone ``i``
    covers positions ``[zone_offsets[i], zone_offsets[i+1])``, the last zone
    runs to ``len(qids)``); ``zone_max_weights[i]`` is the maximum preference
    weight inside zone ``i`` and ``max_weight`` the maximum over all zones.
    """

    __slots__ = (
        "term_id",
        "qids",
        "slots",
        "weights",
        "zone_offsets",
        "zone_max_weights",
        "max_weight",
    )

    def __init__(
        self,
        term_id: TermId,
        qids: List[QueryId],
        slots: List[int],
        weights: List[float],
        zone_size: int,
    ) -> None:
        self.term_id = term_id
        self.qids = _id_column(qids)
        self.slots = _id_column(slots)
        self.weights = _float_column(weights)
        offsets = list(range(0, len(qids), zone_size))
        self.zone_offsets = _id_column(offsets)
        zone_maxima = [
            max(weights[start : start + zone_size]) for start in offsets
        ]
        self.zone_max_weights = _float_column(zone_maxima)
        # Derived through the zones on purpose: the zone maxima are the
        # structure under test, and the document-level bound must never be
        # tighter than what they certify.
        self.max_weight = max(zone_maxima) if zone_maxima else 0.0

    def __len__(self) -> int:
        return len(self.qids)

    def zone_of(self, position: int) -> int:
        """Index of the zone containing entry ``position``."""
        if position < 0 or position >= len(self.qids):
            raise IndexError(f"position {position} out of range")
        lo, hi = 0, len(self.zone_offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.zone_offsets[mid] <= position:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def zone_bound(self, zone: int) -> float:
        """The maximum preference weight certified for ``zone``."""
        return self.zone_max_weights[zone]


class ColumnarQueryIndex:
    """Slot-addressed, term-partitioned packed view of the query index.

    Example::

        index = ColumnarQueryIndex()
        index.register(query)
        postings = index.term(term_id)        # packed columns or None
        thresholds = index.thresholds_view()  # per-slot S_k column
    """

    def __init__(self, zone_size: int = 64) -> None:
        if zone_size <= 0:
            raise ValueError(f"zone_size must be > 0, got {zone_size}")
        self.zone_size = zone_size
        #: Dict model the packed columns are rebuilt from (term -> qid -> w).
        self._members: Dict[TermId, Dict[QueryId, float]] = {}
        self._qid_to_slot: Dict[QueryId, int] = {}
        #: Per-slot columns; positions >= ``size`` are unused capacity.
        self._slot_qids = _id_column([])
        self._slot_thresholds = _float_column([])
        self.size = 0
        self.dead = 0
        self._dirty: set = set()
        self._term_arrays: Dict[TermId, TermPostings] = {}
        #: Cached concatenated CSR over every term (see :meth:`global_view`);
        #: invalidated by any membership change.
        self._global: Optional[Tuple] = None

    # ------------------------------------------------------------------ #
    # Slot bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def num_live(self) -> int:
        return len(self._qid_to_slot)

    @property
    def num_terms(self) -> int:
        return len(self._members)

    @property
    def capacity(self) -> int:
        return len(self._slot_qids)

    def slot_of(self, query_id: QueryId) -> int:
        slot = self._qid_to_slot.get(query_id)
        if slot is None:
            raise UnknownQueryError(f"query {query_id} is not registered")
        return slot

    def _grow(self, minimum: int) -> None:
        capacity = max(len(self._slot_qids), 16)
        while capacity < minimum:
            capacity *= 2
        if _np is not None:
            qids = _np.full(capacity, -1, dtype=_np.int64)
            qids[: self.size] = self._slot_qids[: self.size]
            thresholds = _np.full(capacity, INF, dtype=_np.float64)
            thresholds[: self.size] = self._slot_thresholds[: self.size]
        else:
            qids = array("q", list(self._slot_qids[: self.size]))
            qids.extend([-1] * (capacity - self.size))
            thresholds = array("d", list(self._slot_thresholds[: self.size]))
            thresholds.extend([INF] * (capacity - self.size))
        self._slot_qids = qids
        self._slot_thresholds = thresholds

    # ------------------------------------------------------------------ #
    # Registration / unregistration
    # ------------------------------------------------------------------ #

    def register(self, query: Query) -> int:
        """Add ``query``; returns the slot it was assigned."""
        if query.query_id in self._qid_to_slot:
            raise DuplicateQueryError(f"query {query.query_id} is already registered")
        if self.size >= len(self._slot_qids):
            self._grow(self.size + 1)
        slot = self.size
        self.size += 1
        self._slot_qids[slot] = query.query_id
        self._slot_thresholds[slot] = 0.0
        self._qid_to_slot[query.query_id] = slot
        for term_id, weight in query.vector.items():
            members = self._members.get(term_id)
            if members is None:
                members = self._members[term_id] = {}
            members[query.query_id] = weight
            self._dirty.add(term_id)
        self._global = None
        return slot

    def unregister(self, query: Query) -> None:
        """Remove ``query``, tombstoning its slot (compacting when due)."""
        slot = self._qid_to_slot.pop(query.query_id, None)
        if slot is None:
            raise UnknownQueryError(f"query {query.query_id} is not registered")
        self._slot_qids[slot] = -1
        self._slot_thresholds[slot] = INF
        self.dead += 1
        for term_id in query.vector:
            members = self._members.get(term_id)
            if members is None:
                continue
            members.pop(query.query_id, None)
            if members:
                self._dirty.add(term_id)
            else:
                del self._members[term_id]
                self._dirty.discard(term_id)
                self._term_arrays.pop(term_id, None)
        self._global = None
        if (
            self.dead >= COMPACT_MIN_DEAD
            and self.dead > self.size * COMPACT_DEAD_FRACTION
        ):
            self.compact()

    def compact(self) -> None:
        """Densely reassign slots, dropping every tombstone.

        Every term's packed columns reference slot positions, so compaction
        marks all terms dirty; they rebuild lazily against the new slot map.
        """
        live: List[Tuple[QueryId, float]] = [
            (int(self._slot_qids[slot]), float(self._slot_thresholds[slot]))
            for slot in range(self.size)
            if self._slot_qids[slot] >= 0
        ]
        self._qid_to_slot = {qid: slot for slot, (qid, _) in enumerate(live)}
        self.size = len(live)
        self.dead = 0
        self._slot_qids = _id_column([qid for qid, _ in live])
        self._slot_thresholds = _float_column([thr for _, thr in live])
        self._dirty.update(self._members.keys())
        self._term_arrays.clear()
        self._global = None

    # ------------------------------------------------------------------ #
    # Packed column access
    # ------------------------------------------------------------------ #

    def term(self, term_id: TermId) -> Optional[TermPostings]:
        """The packed columns of ``term_id``, rebuilt if stale; ``None``
        when no registered query uses the term."""
        members = self._members.get(term_id)
        if members is None:
            return None
        postings = self._term_arrays.get(term_id)
        if postings is None or term_id in self._dirty:
            ordered = sorted(members.items())
            postings = TermPostings(
                term_id,
                qids=[qid for qid, _ in ordered],
                slots=[self._qid_to_slot[qid] for qid, _ in ordered],
                weights=[weight for _, weight in ordered],
                zone_size=self.zone_size,
            )
            self._term_arrays[term_id] = postings
            self._dirty.discard(term_id)
        return postings

    def global_view(self) -> Tuple:
        """One CSR over *every* term's packed columns, ID-ordered by term.

        Returns ``(term_keys, starts, ends, slot_col, weight_col,
        max_weights)``: ``term_keys`` is the sorted term-id column;
        term ``term_keys[i]`` owns positions ``[starts[i], ends[i])`` of the
        concatenated ``slot_col``/``weight_col`` columns (each term's span
        sorted by query id, as in :meth:`term`); ``max_weights[i]`` is that
        term's maximum preference weight.  This is what the vectorized probe
        joins a whole batch against without any per-term Python dispatch.
        Rebuilt lazily after membership changes; the concatenation reuses
        (and refreshes) the per-term :class:`TermPostings`.
        """
        if self._global is None or self._dirty:
            term_keys = sorted(self._members)
            starts: List[int] = []
            ends: List[int] = []
            max_weights: List[float] = []
            slot_parts = []
            weight_parts = []
            position = 0
            for term_id in term_keys:
                postings = self.term(term_id)
                starts.append(position)
                position += len(postings)
                ends.append(position)
                slot_parts.append(postings.slots)
                weight_parts.append(postings.weights)
                max_weights.append(postings.max_weight)
            if _np is not None and slot_parts:
                slot_col = _np.concatenate(slot_parts)
                weight_col = _np.concatenate(weight_parts)
            else:
                slot_col = _id_column([slot for part in slot_parts for slot in part])
                weight_col = _float_column(
                    [weight for part in weight_parts for weight in part]
                )
            self._global = (
                _id_column(term_keys),
                _id_column(starts),
                _id_column(ends),
                slot_col,
                weight_col,
                _float_column(max_weights),
            )
        return self._global

    def term_ids(self) -> List[TermId]:
        return list(self._members.keys())

    def iter_terms(self) -> Iterator[TermPostings]:
        for term_id in list(self._members.keys()):
            postings = self.term(term_id)
            if postings is not None:
                yield postings

    def qids_view(self):
        """The per-slot query-id column for slots ``[0, size)`` (-1 = dead)."""
        if _np is not None:
            return self._slot_qids[: self.size]
        return self._slot_qids

    def thresholds_view(self):
        """The per-slot ``S_k`` column for slots ``[0, size)``.

        numpy builds return a *view*: engines may write accepted-offer
        thresholds straight through it.  Dead slots hold ``+inf`` so a
        vectorized ``score > threshold`` mask can never select them.
        """
        if _np is not None:
            return self._slot_thresholds[: self.size]
        return self._slot_thresholds

    # ------------------------------------------------------------------ #
    # Threshold maintenance
    # ------------------------------------------------------------------ #

    def set_threshold(self, query_id: QueryId, threshold: float) -> None:
        self._slot_thresholds[self.slot_of(query_id)] = threshold

    def scale_thresholds(self, factor: float) -> None:
        """Divide every live threshold by ``factor`` (decay renormalization).

        Bitwise-identical to re-reading each scaled result heap: the heaps
        divide every stored score by the same factor, and IEEE-754 division
        is deterministic.  Dead slots hold ``+inf``, which the division
        leaves at ``+inf``.
        """
        if _np is not None:
            self._slot_thresholds[: self.size] /= factor
        else:
            for slot in range(self.size):
                self._slot_thresholds[slot] /= factor

    def refresh_thresholds(self, threshold_of) -> None:
        """Reload every live slot's threshold via ``threshold_of(query_id)``
        (snapshot restore, where thresholds may move in both directions)."""
        for query_id, slot in self._qid_to_slot.items():
            self._slot_thresholds[slot] = threshold_of(query_id)

    def min_live_threshold(self) -> float:
        """The smallest live ``S_k`` (``+inf`` when no query is live).

        A document whose amplified upper bound is at or below this value
        cannot enter any top-k, which is the vectorized document-level
        prune.
        """
        if self.size == 0 or not self._qid_to_slot:
            return INF
        if _np is not None:
            return float(self._slot_thresholds[: self.size].min())
        return min(self._slot_thresholds[: self.size])
