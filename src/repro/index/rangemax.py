"""Range-maximum structures backing the MRIO zone bounds.

MRIO's locally adaptive bound UB* needs, per posting list, the maximum
weight/threshold ratio among the entries whose query id falls inside the
current pruning zone.  Two reusable structures are provided:

* :class:`SegmentTreeMax` — exact range maxima in O(log n) with O(log n)
  point updates;
* :class:`BlockMax` — per-block maxima; queries are answered from whole
  blocks only, so the result may overshoot the true range maximum (it is an
  upper bound, which is all the pruning logic needs) at O(n / block_size)
  query cost and O(1)/O(block_size) update cost.
"""

from __future__ import annotations

from typing import List, Sequence

NEG_INF = float("-inf")


class SegmentTreeMax:
    """Classic iterative segment tree over floats supporting range max."""

    def __init__(self, values: Sequence[float]) -> None:
        self._n = len(values)
        size = 1
        while size < max(self._n, 1):
            size *= 2
        self._size = size
        self._tree = [NEG_INF] * (2 * size)
        for i, value in enumerate(values):
            self._tree[size + i] = value
        for i in range(size - 1, 0, -1):
            self._tree[i] = max(self._tree[2 * i], self._tree[2 * i + 1])

    def __len__(self) -> int:
        return self._n

    def update(self, position: int, value: float) -> None:
        """Set the value at ``position`` and propagate the change upwards."""
        if not 0 <= position < self._n:
            raise IndexError(f"position {position} out of range [0, {self._n})")
        i = self._size + position
        self._tree[i] = value
        i //= 2
        while i >= 1:
            new_value = max(self._tree[2 * i], self._tree[2 * i + 1])
            if self._tree[i] == new_value:
                break
            self._tree[i] = new_value
            i //= 2

    def value_at(self, position: int) -> float:
        return self._tree[self._size + position]

    def query(self, lo: int, hi: int) -> float:
        """Maximum over positions ``[lo, hi)``; ``-inf`` for an empty range."""
        lo = max(lo, 0)
        hi = min(hi, self._n)
        if lo >= hi:
            return NEG_INF
        result = NEG_INF
        left = self._size + lo
        right = self._size + hi
        while left < right:
            if left & 1:
                result = max(result, self._tree[left])
                left += 1
            if right & 1:
                right -= 1
                result = max(result, self._tree[right])
            left //= 2
            right //= 2
        return result

    def global_max(self) -> float:
        return self._tree[1] if self._n else NEG_INF


class BlockMax:
    """Per-block maxima over a float array.

    ``query`` returns the maximum of the *block* maxima of every block that
    overlaps the requested range — a cheap upper bound of the true range
    maximum.  ``update`` raises the stored value in O(1); lowering a value
    rescans its block so the block maximum stays exact w.r.t. stored values.
    """

    def __init__(self, values: Sequence[float], block_size: int = 64) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {block_size}")
        self.block_size = block_size
        self._values: List[float] = list(values)
        self._block_max: List[float] = []
        self._rebuild_blocks()

    def _rebuild_blocks(self) -> None:
        self._block_max = []
        for start in range(0, len(self._values), self.block_size):
            chunk = self._values[start : start + self.block_size]
            self._block_max.append(max(chunk) if chunk else NEG_INF)

    def __len__(self) -> int:
        return len(self._values)

    def value_at(self, position: int) -> float:
        return self._values[position]

    def update(self, position: int, value: float) -> None:
        if not 0 <= position < len(self._values):
            raise IndexError(
                f"position {position} out of range [0, {len(self._values)})"
            )
        old = self._values[position]
        self._values[position] = value
        block = position // self.block_size
        if value >= self._block_max[block]:
            self._block_max[block] = value
        elif old == self._block_max[block]:
            start = block * self.block_size
            chunk = self._values[start : start + self.block_size]
            self._block_max[block] = max(chunk) if chunk else NEG_INF

    def query(self, lo: int, hi: int) -> float:
        """Upper bound of the maximum over positions ``[lo, hi)``."""
        lo = max(lo, 0)
        hi = min(hi, len(self._values))
        if lo >= hi:
            return NEG_INF
        first_block = lo // self.block_size
        last_block = (hi - 1) // self.block_size
        result = NEG_INF
        for block in range(first_block, last_block + 1):
            if self._block_max[block] > result:
                result = self._block_max[block]
        return result

    def exact_query(self, lo: int, hi: int) -> float:
        """Exact maximum over positions ``[lo, hi)`` (scans stored values)."""
        lo = max(lo, 0)
        hi = min(hi, len(self._values))
        if lo >= hi:
            return NEG_INF
        return max(self._values[lo:hi])

    def global_max(self) -> float:
        return max(self._block_max) if self._block_max else NEG_INF
