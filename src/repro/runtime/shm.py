"""Shared-memory ring buffer for zero-copy document-batch fan-out.

The process-resident shard executor encodes each ingestion batch ONCE
(:func:`repro.persistence.codec.encode_document_batch`) and hands every
worker the same bytes.  Without shared memory those bytes cross N pipes —
the dominant cost the committed shard-scaling numbers attribute to the
process executor.  With it, the parent writes the encoded frame into a
``multiprocessing.shared_memory`` segment and sends each worker only a
tiny ``(seq, offset, length)`` descriptor over the control pipe; workers
wrap the segment in a ``memoryview`` and decode in place.

The segment is managed as a *ring* of variably-sized slots:

* :meth:`SharedMemoryRing.reserve` allocates the next ``size`` bytes at
  the write head (8-aligned, wrapping to offset 0 when the tail would not
  fit) and tags the slot with a monotonically increasing sequence number.
* Slots are freed strictly in allocation order (:meth:`free`), which is
  exactly the executor's submit-all-then-collect discipline: a slot is
  reclaimed once every worker has acknowledged its batch.
* When the ring is full, ``reserve`` reports it by returning ``None`` —
  the *caller* owns the blocking policy (the executor collects outstanding
  acknowledgements, which frees slots, and retries; a batch larger than
  the whole ring is split by the executor's chunked fan-out instead).

Nothing here synchronizes across processes: the parent is the only
writer and the only allocator, and the control pipe's acknowledgement
traffic provides the happens-before edge (a worker acks a sequence number
only after it has finished reading the slot, and the parent only reuses
the bytes after that ack).  That keeps the ring free of locks *and* of
polling on the hot path.

Child-side attachment (:func:`attach_ring_view`) must dodge a CPython
footgun: ``SharedMemory(name=...)`` registers the segment with the
``resource_tracker``, which *unlinks* it when the child exits — silently
destroying the parent's ring.  Python 3.13 grew ``track=False`` for this;
on older versions the segment is unregistered by hand.
"""

from __future__ import annotations

import secrets
from collections import OrderedDict
from typing import Optional, Tuple

from repro.exceptions import TransportError

try:  # pragma: no cover - import probe
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None  # type: ignore[assignment]

#: Default ring capacity.  A 256-document batch at bench corpus shape is
#: ~290KB encoded, so 4MiB keeps several batches in flight with room for
#: wraparound slack.
DEFAULT_RING_BYTES = 4 * 1024 * 1024

_ALIGN = 8


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is usable on this host."""
    if _shared_memory is None:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=_ALIGN)
    except (OSError, ValueError):  # pragma: no cover - /dev/shm missing etc.
        return False
    try:
        probe.close()
        probe.unlink()
    except OSError:  # pragma: no cover - cleanup best-effort
        pass
    return True


class SharedMemoryRing:
    """Parent-side ring allocator over one shared-memory segment."""

    def __init__(self, capacity: int = DEFAULT_RING_BYTES, name: Optional[str] = None):
        if _shared_memory is None:  # pragma: no cover - exotic platforms only
            raise TransportError("multiprocessing.shared_memory is unavailable")
        if capacity <= 0:
            raise TransportError(f"ring capacity must be > 0, got {capacity}")
        capacity += -capacity % _ALIGN
        if name is None:
            name = f"repro-ring-{secrets.token_hex(6)}"
        self._shm = _shared_memory.SharedMemory(name=name, create=True, size=capacity)
        #: Usable capacity (the OS may round the segment up; the ring
        #: ignores the surplus so parent and workers agree on geometry).
        self.capacity = capacity
        self._head = 0
        self._next_seq = 0
        #: seq -> (offset, padded length), in allocation order.
        self._in_flight: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self._used = 0

    # -- parent-side allocation ----------------------------------------- #

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    @property
    def used(self) -> int:
        """Bytes currently reserved (padded); ``used / capacity`` is the
        occupancy gauge the telemetry layer reports."""
        return self._used

    def reserve(self, size: int) -> Optional[Tuple[int, int, memoryview]]:
        """Allocate ``size`` bytes; returns ``(seq, offset, view)`` or ``None``.

        ``None`` means the ring is currently too full — free a slot (by
        collecting a worker acknowledgement) and retry.  A ``size`` that can
        never fit raises :class:`TransportError` so callers chunk instead of
        spinning forever.
        """
        if size <= 0:
            raise TransportError(f"slot size must be > 0, got {size}")
        padded = size + (-size % _ALIGN)
        if padded > self.capacity:
            raise TransportError(
                f"payload of {size} bytes exceeds ring capacity {self.capacity}"
            )
        offset = self._fit(padded)
        if offset is None:
            return None
        seq = self._next_seq
        self._next_seq += 1
        self._in_flight[seq] = (offset, padded)
        self._used += padded
        self._head = offset + padded
        return seq, offset, self._shm.buf[offset : offset + size]

    def _fit(self, padded: int) -> Optional[int]:
        """Offset where ``padded`` bytes fit at the head, or ``None``."""
        if not self._in_flight:
            # Empty ring: restart at 0 so a large batch never fails merely
            # because the head drifted near the end.
            self._head = 0
            return 0 if padded <= self.capacity else None
        oldest_offset = next(iter(self._in_flight.values()))[0]
        if self._head >= oldest_offset:
            # Live region is [oldest, head): free space is the tail after
            # head, then (wrapping) the prefix before oldest.
            if self._head + padded <= self.capacity:
                return self._head
            if padded <= oldest_offset:
                return 0  # wraparound
            return None
        # Live region wraps: free space is the single gap [head, oldest).
        if self._head + padded <= oldest_offset:
            return self._head
        return None

    def free(self, seq: int) -> None:
        """Release the slot tagged ``seq`` (must be the oldest in flight)."""
        if not self._in_flight:
            raise TransportError(f"free({seq}) on an empty ring")
        oldest, (_, padded) = next(iter(self._in_flight.items()))
        if seq != oldest:
            raise TransportError(
                f"out-of-order free: got seq {seq}, oldest in flight is {oldest}"
            )
        del self._in_flight[seq]
        self._used -= padded

    def close(self) -> None:
        """Detach and destroy the segment (parent owns the lifetime)."""
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - exported views
            pass
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass


class RingView:
    """Worker-side read-only attachment to the parent's ring segment."""

    def __init__(self, shm) -> None:
        self._shm = shm
        self.buf: memoryview = shm.buf

    def slice(self, offset: int, length: int) -> memoryview:
        return self.buf[offset : offset + length]

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - exported views
            pass


def attach_ring_view(name: str) -> RingView:
    """Attach to the parent's segment WITHOUT adopting its lifetime."""
    if _shared_memory is None:  # pragma: no cover - exotic platforms only
        raise TransportError("multiprocessing.shared_memory is unavailable")
    try:
        shm = _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: attaching registers the segment with the
        # resource_tracker, whose cleanup would unlink it out from under
        # the parent when this process exits.  Suppress the registration
        # for the duration of the attach.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _register_skipping_shm(name_, rtype):  # pragma: no cover - 3.13+ skips
            if rtype != "shared_memory":
                original_register(name_, rtype)

        resource_tracker.register = _register_skipping_shm
        try:
            shm = _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    return RingView(shm)
