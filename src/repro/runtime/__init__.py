"""Sharded runtime: scale the monitor out across parallel engine shards.

The paper's algorithms make a *single* engine fast at skipping unaffected
queries; this layer makes the system scale *out*: the registered query set
is partitioned across independent :class:`~repro.runtime.shard.EngineShard`
instances (each a full engine with its own index, bounds, decay and
expiration state), a :class:`~repro.runtime.routing.QueryRouter` with
pluggable partitioning policies decides query placement, and the
:class:`~repro.runtime.sharded.ShardedMonitor` facade fans stream events
out to all shards through a pluggable executor and merges their update
streams and counters into one coherent view — the "partition the
subscription index, merge the notifications" shape of production pub/sub
matching systems.

Public entry points:

* :class:`ShardedMonitor` — drop-in replacement for
  :class:`~repro.core.monitor.ContinuousMonitor`;
* :class:`QueryRouter`, :class:`HashPartitionPolicy`,
  :class:`TermAffinityPolicy`, :func:`make_policy` — query placement;
* :class:`EngineShard` — one engine shard (snapshot/restore/adopt);
* :class:`SerialExecutor`, :class:`ThreadPoolShardExecutor`,
  :class:`ProcessShardExecutor`, :func:`make_executor` — shard execution
  strategies (in-process serial/threaded, or one worker process per shard).
"""

from repro.runtime.executors import (
    SerialExecutor,
    ShardExecutor,
    ThreadPoolShardExecutor,
    make_executor,
)
from repro.runtime.procpool import ProcessShardExecutor, ProcessShardHandle
from repro.runtime.routing import (
    HashPartitionPolicy,
    PartitionPolicy,
    QueryRouter,
    TermAffinityPolicy,
    make_policy,
)
from repro.runtime.shard import EngineShard
from repro.runtime.sharded import ShardedMonitor

__all__ = [
    "ShardExecutor",
    "SerialExecutor",
    "ThreadPoolShardExecutor",
    "ProcessShardExecutor",
    "ProcessShardHandle",
    "make_executor",
    "PartitionPolicy",
    "HashPartitionPolicy",
    "TermAffinityPolicy",
    "QueryRouter",
    "make_policy",
    "EngineShard",
    "ShardedMonitor",
]
