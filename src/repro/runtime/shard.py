"""One engine shard: a full monitoring engine owning a slice of the queries.

An :class:`EngineShard` is a self-contained engine — its own
:class:`~repro.core.base.StreamAlgorithm` (with query index and bound
structures), its own :class:`~repro.documents.decay.ExponentialDecay`, its
own :class:`~repro.core.expiration.ExpirationManager` when a window horizon
is configured, and its own :class:`~repro.metrics.counters.EventCounters`.
Shards share **no mutable state**, which is what lets the executor layer
run them concurrently without locks.

Every shard processes every stream event; because decay renormalization
and window expiration are pure functions of the arrival-time sequence, all
shards of a monitor keep *identical* decay origins and live windows, and a
query's results are bit-for-bit what a single engine hosting all queries
would maintain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import StreamAlgorithm
from repro.core.config import MonitorConfig
from repro.core.expiration import ExpirationManager
from repro.core.factory import create_algorithm
from repro.core.results import BatchUpdate, ResultEntry, ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.metrics.counters import EventCounters
from repro.obs.telemetry import Telemetry
from repro.queries.query import Query
from repro.types import QueryId


class EngineShard:
    """Hosts one partition of the registered queries behind one algorithm.

    Example::

        shard = EngineShard(0, MonitorConfig(algorithm="mrio"))
        shard.register(query)
        batch_updates = shard.process_batch(batch)
    """

    def __init__(self, shard_id: int, config: MonitorConfig) -> None:
        self.shard_id = shard_id
        self.config = config
        decay = ExponentialDecay(
            lam=config.lam, max_amplification=config.max_amplification
        )
        kwargs: Dict[str, object] = {}
        if config.algorithm.lower() == "mrio":
            kwargs["ub_variant"] = config.ub_variant
        self.algorithm: StreamAlgorithm = create_algorithm(
            config.algorithm, decay, **kwargs
        )
        if config.telemetry:
            self.algorithm.telemetry = Telemetry()
        self.expiration: Optional[ExpirationManager] = None
        if config.window_horizon is not None:
            self.expiration = ExpirationManager(self.algorithm, config.window_horizon)
            self.algorithm.add_update_listener(self.expiration.on_result_update)
        #: When True, raw per-event updates are buffered for the facade's
        #: listeners (drained with :meth:`drain_raw_updates`).
        self.capture_raw = False
        self._raw_buffer: List[ResultUpdate] = []
        self.algorithm.add_update_listener(self._on_raw_update)
        #: When True, decay rebase notifications are buffered for draining —
        #: the worker-process loop ships them with each framed reply.
        self.capture_renorms = False
        self._renorm_buffer: List[Tuple[float, float]] = []
        self.algorithm.add_renormalize_listener(self._on_renormalize)

    # ------------------------------------------------------------------ #
    # Query membership
    # ------------------------------------------------------------------ #

    def register(self, query: Query) -> None:
        self.algorithm.register(query)

    def unregister(self, query_id: QueryId) -> Query:
        return self.algorithm.unregister(query_id)

    @property
    def queries(self) -> Dict[QueryId, Query]:
        return self.algorithm.queries

    @property
    def num_queries(self) -> int:
        return self.algorithm.num_queries

    # ------------------------------------------------------------------ #
    # Stream processing
    # ------------------------------------------------------------------ #

    def _on_raw_update(self, update: ResultUpdate) -> None:
        if self.capture_raw:
            self._raw_buffer.append(update)

    def drain_raw_updates(self) -> List[ResultUpdate]:
        """The raw updates buffered since the last drain (in emission order)."""
        drained = self._raw_buffer
        self._raw_buffer = []
        return drained

    def _on_renormalize(self, origin: float, factor: float) -> None:
        if self.capture_renorms:
            self._renorm_buffer.append((origin, factor))

    def drain_renormalizations(self) -> List[Tuple[float, float]]:
        """The (origin, factor) rebases buffered since the last drain."""
        drained = self._renorm_buffer
        self._renorm_buffer = []
        return drained

    def process(self, document: Document) -> List[ResultUpdate]:
        """Process one stream event against this shard's queries."""
        updates = self.algorithm.process(document)
        if self.expiration is not None:
            self.expiration.observe(document)
            assert document.arrival_time is not None
            self.expiration.expire(document.arrival_time)
        return updates

    def process_batch(self, documents: Sequence[Document]) -> List[BatchUpdate]:
        """Process an arrival-ordered batch against this shard's queries."""
        updates = self.algorithm.process_batch(documents)
        if self.expiration is not None and documents:
            for document in documents:
                self.expiration.observe(document)
            last = documents[-1]
            assert last.arrival_time is not None
            self.expiration.expire(last.arrival_time)
        return updates

    def renormalize(self, new_origin: float) -> float:
        """Rebase this shard's decay origin (replayed per shard by recovery)."""
        return self.algorithm.renormalize(new_origin)

    def add_renormalize_listener(self, listener) -> None:
        """Register a callback invoked after every decay rebase of this shard.

        Part of the shard surface (rather than reached through
        :attr:`algorithm`) so process-resident shards can forward rebase
        notifications across the process boundary.
        """
        self.algorithm.add_renormalize_listener(listener)

    # ------------------------------------------------------------------ #
    # Results and diagnostics
    # ------------------------------------------------------------------ #

    def top_k(self, query_id: QueryId) -> List[ResultEntry]:
        return self.algorithm.top_k(query_id)

    def threshold(self, query_id: QueryId) -> float:
        return self.algorithm.threshold(query_id)

    def all_results(self) -> Dict[QueryId, List[ResultEntry]]:
        """Every resident query's current top-k (one call, not one per query —
        a single round trip when the shard lives in a worker process)."""
        return {
            query_id: self.algorithm.top_k(query_id) for query_id in self.queries
        }

    @property
    def counters(self) -> EventCounters:
        return self.algorithm.counters

    @property
    def response_times(self) -> List[float]:
        return self.algorithm.response_times

    @property
    def batch_response_times(self) -> List[Tuple[int, float]]:
        return self.algorithm.batch_response_times

    @property
    def telemetry(self) -> Telemetry:
        """This shard's lap recorder (the shared no-op when disabled)."""
        return self.algorithm.telemetry

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The shard's telemetry wire dict — what the ``telemetry`` worker
        command answers with (empty when disabled)."""
        return self.algorithm.telemetry.snapshot()

    @property
    def live_window_size(self) -> Optional[int]:
        if self.expiration is None:
            return None
        return self.expiration.live_documents

    @property
    def last_arrival(self) -> Optional[float]:
        return self.algorithm.last_arrival

    def reset_statistics(self) -> None:
        """Zero this shard's counters and timing samples."""
        self.algorithm.counters.reset()
        self.algorithm.response_times.clear()
        self.algorithm.batch_response_times.clear()
        self.algorithm.telemetry.reset()

    def describe(self) -> Dict[str, object]:
        info = self.algorithm.describe()
        info["shard_id"] = self.shard_id
        return info

    # ------------------------------------------------------------------ #
    # Snapshot / restore (rebalancing)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """Capture engine state plus the live window (if any)."""
        state: Dict[str, object] = {"engine": self.algorithm.snapshot()}
        if self.expiration is not None:
            state["expiration"] = self.expiration.snapshot()
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a full :meth:`snapshot` capture into this shard."""
        self.algorithm.restore(state["engine"])  # type: ignore[arg-type]
        if self.expiration is not None and "expiration" in state:
            self.expiration.restore(state["expiration"])  # type: ignore[arg-type]

    def adopt(
        self,
        queries: Sequence[Query],
        engine_state: Dict[str, object],
        expiration_state: Optional[Dict[str, object]] = None,
    ) -> None:
        """Adopt a partition of a captured engine into this (fresh) shard.

        ``engine_state`` is a (possibly merged) engine snapshot providing
        decay, stream clock and per-query results; ``queries`` selects the
        partition this shard takes over.  The expiration window must be
        restored *after* the results so the holder map reflects the adopted
        partition only.
        """
        self.algorithm.restore_queries(queries, engine_state)
        if self.expiration is not None and expiration_state is not None:
            self.expiration.restore(expiration_state)

    # ------------------------------------------------------------------ #
    # Codec-encoded state movement (rebalancing, checkpoints, processes)
    # ------------------------------------------------------------------ #
    #
    # Every transfer of shard state — rebalancing between shards, moving a
    # shard into or out of a worker process, writing a checkpoint — goes
    # through the persistence codec, so there is exactly one serialization
    # of an engine and the moved state is bit-for-bit what a checkpoint
    # would hold.  (Function-level codec imports: the persistence package's
    # facade imports this module.)

    def snapshot_encoded(self, include_structures: bool = True) -> Dict[str, object]:
        """This shard's full state in the persistence codec's encoded form.

        The flat monitor shape :func:`codec.encode_monitor_state` takes,
        with the live expiration window folded in — exactly the bytes-shape
        a per-shard checkpoint stores.  ``include_structures=False`` drops
        the algorithm-specific structure captures for movers that discard
        them anyway (the rebalance adopt path rebuilds structures from
        scratch, so their O(memo) encode would be wasted).
        """
        from repro.persistence import codec

        captured = self.snapshot()
        flat: Dict[str, object] = dict(captured["engine"])  # type: ignore[arg-type]
        if not include_structures:
            flat.pop("structures", None)
        if "expiration" in captured:
            flat["expiration"] = captured["expiration"]
        return codec.encode_monitor_state(flat)

    def restore_encoded(self, encoded: Dict[str, object]) -> None:
        """Restore a :meth:`snapshot_encoded` capture into this shard."""
        from repro.persistence import codec

        state = codec.decode_monitor_state(encoded)
        wrapped: Dict[str, object] = {}
        if "expiration" in state:
            wrapped["expiration"] = state.pop("expiration")
        wrapped["engine"] = state
        self.restore(wrapped)

    def adopt_encoded(self, encoded: Dict[str, object]) -> None:
        """Adopt an encoded partition capture into this (fresh) shard.

        ``encoded`` carries the partition's queries, their result heaps,
        the common decay/stream clock and (optionally) the live window —
        the per-partition slice the sharded facade cuts from the merged
        rebalance capture.
        """
        from repro.persistence import codec

        state = codec.decode_monitor_state(encoded)
        queries: Sequence[Query] = state["queries"]  # type: ignore[assignment]
        self.adopt(queries, state, state.get("expiration"))  # type: ignore[arg-type]
