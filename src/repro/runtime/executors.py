"""Executors that run per-shard work: serially, on threads, or in processes.

The sharded monitor fans every stream event (or batch) out to all shards;
*how* those per-shard tasks run is pluggable:

* :class:`SerialExecutor` — runs shard tasks one after another on the
  calling thread.  Zero concurrency, zero overhead, fully deterministic —
  the right choice for tests, differential runs and single-core boxes.
* :class:`ThreadPoolShardExecutor` — runs shard tasks on a
  :class:`concurrent.futures.ThreadPoolExecutor`.  Shards share no mutable
  state, so they process the same event concurrently without locking; on
  CPython the GIL serializes pure-Python bytecode, so wall-clock gains
  need either multiple cores with GIL-releasing work or a free-threaded
  build — the executor is the seam where that parallelism plugs in.
* :class:`~repro.runtime.procpool.ProcessShardExecutor` (name
  ``"processes"``) — hosts each shard inside a long-lived worker process
  and drives it over a pipe.  The only executor that yields wall-clock
  speedups on stock multi-core CPython, at the price of serializing
  events and updates across process boundaries.  It is *shard-resident*:
  the shards live in the workers, not in the calling process (see
  :attr:`ShardExecutor.shard_resident`).

Failure contract
----------------

All executors implement the same fan-out failure semantics, which the
durability layer depends on: **every task runs to completion, then the
first exception in task order is raised**.  A mid-batch failure in one
shard therefore never leaves sibling shards half-driven (serial) or still
mutating state while the caller already sees the exception (pooled) — after
``run`` raises, every shard has fully processed or fully refused the
fan-out, and the surviving state is identical across executor flavours.
Results are returned in task order.
"""

from __future__ import annotations

import abc
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, TypeVar, Union

from repro.exceptions import ConfigurationError

T = TypeVar("T")


def raise_first_failure(outcomes: Sequence[Tuple[Optional[T], Optional[BaseException]]]) -> List[T]:
    """Unwrap ``(value, exception)`` outcomes collected from a full fan-out.

    Raises the first exception in task order — after the caller has already
    run every task to completion — and returns the values otherwise.  Shared
    by all executors so the contract lives in exactly one place.
    """
    for _, exception in outcomes:
        if exception is not None:
            raise exception
    return [value for value, _ in outcomes]  # type: ignore[misc]


def run_serially(tasks: Sequence[Callable[[], T]]) -> List[T]:
    """Run thunks on the calling thread under the fan-out failure contract.

    The body of :meth:`SerialExecutor.run`, shared with executors that fall
    back to in-thread execution for opaque thunks (the process executor's
    parallel path ships commands, not closures).
    """
    outcomes: List[Tuple[Optional[T], Optional[BaseException]]] = []
    for task in tasks:
        try:
            outcomes.append((task(), None))
        except Exception as exc:
            outcomes.append((None, exc))
    return raise_first_failure(outcomes)


class ShardExecutor(abc.ABC):
    """Runs a list of zero-argument shard tasks, preserving order."""

    #: Short name used by :func:`make_executor` and the diagnostics.
    name = "abstract"

    #: True when the executor *owns* the shards (they live inside its worker
    #: processes and are reached through handles it vends) rather than
    #: running tasks against shards owned by the caller.
    shard_resident = False

    @abc.abstractmethod
    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Execute every task; returns their results in task order.

        Every task runs to completion even when an earlier one fails; the
        first exception in task order is then raised (see the module
        docstring's failure contract).
        """

    def run_shards(
        self, shards: Sequence[object], method: str, args: Tuple[object, ...]
    ) -> List[object]:
        """Invoke ``method(*args)`` on every shard; results in shard order.

        The fan-out seam the sharded monitor drives: in-process executors
        turn it into plain thunks over local :class:`EngineShard` objects,
        while the process executor overrides it to pipeline one command to
        every worker before collecting any reply.  Same failure contract as
        :meth:`run`.
        """
        return self.run(
            [
                (lambda shard=shard: getattr(shard, method)(*args))
                for shard in shards
            ]
        )

    def close(self) -> None:
        """Release any worker resources; the executor is unusable after."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Run shard tasks sequentially on the calling thread.

    A failing task does not abort the fan-out: later shards still run, so
    the post-failure state matches what the pooled executors leave behind.
    """

    name = "serial"

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return run_serially(tasks)


class ThreadPoolShardExecutor(ShardExecutor):
    """Run shard tasks on a shared thread pool (one worker per shard).

    The pool is created lazily on first use and must be :meth:`close`\\ d
    (or the executor used as a context manager) to join the workers.
    """

    name = "threads"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise ConfigurationError(f"max_workers must be > 0, got {max_workers}")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if len(tasks) == 1:
            # No point paying the submission round-trip for one shard.
            return [tasks[0]()]
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        # Wait for *every* future before surfacing any failure: raising
        # while sibling futures are still mutating shard state would hand
        # the caller an exception over a moving fan-out.
        outcomes: List[Tuple[Optional[T], Optional[BaseException]]] = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except Exception as exc:
                outcomes.append((None, exc))
        return raise_first_failure(outcomes)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_EXECUTORS: Dict[str, Type[ShardExecutor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadPoolShardExecutor.name: ThreadPoolShardExecutor,
}

#: Names :func:`make_executor` accepts (the "processes*" names resolve
#: lazily — the procpool module imports this one).  ``"processes"`` picks
#: the shared-memory batch transport when the host provides it;
#: ``"processes-pipe"`` forces the pipe fallback (useful for measuring the
#: transport itself, and for hosts with a broken /dev/shm).
EXECUTOR_NAMES = ("serial", "threads", "processes", "processes-pipe", "remote")


def make_executor(spec: Union[str, ShardExecutor], n_shards: int) -> ShardExecutor:
    """Resolve an executor name (``"serial"``/``"threads"``/``"processes"``/
    ``"processes-pipe"``/``"remote"``) or pass an instance through.

    ``n_shards`` sizes the worker pool for pooled executors.
    """
    if isinstance(spec, ShardExecutor):
        return spec
    name = str(spec).lower()
    if name in ("processes", "processes-pipe"):
        # Function-level import: procpool imports this module for the base
        # class, so the registry resolves it lazily.
        from repro.runtime.procpool import ProcessShardExecutor

        transport = "pipe" if name == "processes-pipe" else "auto"
        return ProcessShardExecutor(n_shards, transport=transport)
    if name == "remote":
        # Same lazy-registry pattern: the cluster layer builds on this module.
        from repro.cluster.remote import RemoteShardExecutor

        return RemoteShardExecutor(n_shards)
    cls = _EXECUTORS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown shard executor {spec!r}; expected one of {sorted(EXECUTOR_NAMES)}"
        )
    if cls is ThreadPoolShardExecutor:
        return ThreadPoolShardExecutor(max_workers=n_shards)
    return cls()
