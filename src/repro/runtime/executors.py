"""Executors that run per-shard work, serially or on a thread pool.

The sharded monitor fans every stream event (or batch) out to all shards;
*how* those per-shard tasks run is pluggable:

* :class:`SerialExecutor` — runs shard tasks one after another on the
  calling thread.  Zero concurrency, zero overhead, fully deterministic —
  the right choice for tests, differential runs and single-core boxes.
* :class:`ThreadPoolShardExecutor` — runs shard tasks on a
  :class:`concurrent.futures.ThreadPoolExecutor`.  Shards share no mutable
  state, so they process the same event concurrently without locking; on
  CPython the GIL serializes pure-Python bytecode, so wall-clock gains
  need either multiple cores with GIL-releasing work or a free-threaded
  build — the executor is the seam where that parallelism plugs in.

Both return results in shard order and re-raise the first task exception,
so callers observe identical semantics regardless of the executor.
"""

from __future__ import annotations

import abc
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Type, TypeVar, Union

from repro.exceptions import ConfigurationError

T = TypeVar("T")


class ShardExecutor(abc.ABC):
    """Runs a list of zero-argument shard tasks, preserving order."""

    #: Short name used by :func:`make_executor` and the diagnostics.
    name = "abstract"

    @abc.abstractmethod
    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Execute every task; returns their results in task order.

        If any task raises, the exception propagates to the caller (after
        all tasks were started, for pooled executors).
        """

    def close(self) -> None:
        """Release any worker resources; the executor is unusable after."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Run shard tasks sequentially on the calling thread."""

    name = "serial"

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return [task() for task in tasks]


class ThreadPoolShardExecutor(ShardExecutor):
    """Run shard tasks on a shared thread pool (one worker per shard).

    The pool is created lazily on first use and must be :meth:`close`\\ d
    (or the executor used as a context manager) to join the workers.
    """

    name = "threads"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise ConfigurationError(f"max_workers must be > 0, got {max_workers}")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if len(tasks) == 1:
            # No point paying the submission round-trip for one shard.
            return [tasks[0]()]
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        # Collect in task order; Future.result re-raises task exceptions.
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_EXECUTORS: Dict[str, Type[ShardExecutor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadPoolShardExecutor.name: ThreadPoolShardExecutor,
}


def make_executor(spec: Union[str, ShardExecutor], n_shards: int) -> ShardExecutor:
    """Resolve an executor name (``"serial"``/``"threads"``) or pass through.

    ``n_shards`` sizes the worker pool for pooled executors.
    """
    if isinstance(spec, ShardExecutor):
        return spec
    cls = _EXECUTORS.get(str(spec).lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown shard executor {spec!r}; expected one of {sorted(_EXECUTORS)}"
        )
    if cls is ThreadPoolShardExecutor:
        return ThreadPoolShardExecutor(max_workers=n_shards)
    return cls()
