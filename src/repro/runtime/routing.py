"""Query routing: which engine shard owns which continuous query.

The sharded runtime partitions the *registered query set* — every shard
still sees every stream event, but each query's postings, result heap and
threshold live in exactly one shard, so per-event work parallelizes across
shards while per-query state never needs cross-shard coordination.

Partitioning is pluggable.  Two policies ship:

* :class:`HashPartitionPolicy` — ``query_id mod n_shards``; stateless,
  stable under unregistration, perfectly balanced for dense id spaces.
* :class:`TermAffinityPolicy` — greedily co-locates queries that share
  terms.  Every shard must walk the posting lists of an arriving document's
  terms, so two queries sharing a hot term cost almost the same as one when
  they sit in the same shard but twice the bound probes when split; packing
  term neighbourhoods together cuts that cross-shard duplicate work.  A
  load-slack cap keeps the assignment balanced.

Policies are deterministic functions of the registration sequence, which
keeps sharded runs reproducible.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Type, Union

from repro.exceptions import ConfigurationError, UnknownQueryError
from repro.queries.query import Query
from repro.types import QueryId, TermId


class PartitionPolicy(abc.ABC):
    """Decides the home shard of each newly registered query."""

    #: Short name used by :func:`make_policy` and the diagnostics.
    name = "abstract"

    def __init__(self) -> None:
        self.n_shards = 0

    def bind(self, n_shards: int) -> None:
        """Attach the policy to a router with ``n_shards`` shards.

        Called on (re)binding — including rebalances, which reuse the same
        instance for a new topology — so subclasses carrying placement
        state must reset it here while keeping their configuration.
        """
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = n_shards

    @abc.abstractmethod
    def assign(self, query: Query) -> int:
        """The shard index (``0 <= i < n_shards``) that should own ``query``."""

    def release(self, query: Query, shard: int) -> None:
        """``query`` left ``shard``; update any internal placement state."""

    def adopt(self, query: Query, shard: int) -> None:
        """``query`` already lives on ``shard``; absorb it into the placement state.

        Crash recovery restores each engine shard's query set from its own
        checkpoint and then rebuilds the routing layer from that membership;
        policies whose future placements depend on accumulated state must
        update it here exactly as :meth:`assign` would have.  Placement
        state is a per-shard accumulation, so adopting queries in any order
        reproduces the state the original registration sequence built.  The
        default is a no-op, correct for stateless policies.
        """


class HashPartitionPolicy(PartitionPolicy):
    """Stateless ``query_id mod n_shards`` placement.

    Example::

        router = QueryRouter(n_shards=4, policy="hash")
        assert router.route(Query(query_id=6, vector={1: 1.0}, k=1)) == 2
    """

    name = "hash"

    def assign(self, query: Query) -> int:
        return query.query_id % self.n_shards


class TermAffinityPolicy(PartitionPolicy):
    """Greedy term co-location under a load-balance cap.

    For each candidate shard the policy scores how many of the query's
    terms are already present there (weighted by how many resident queries
    use the term, saturating at :attr:`max_term_weight` so one mega-term
    does not dominate).  Only shards whose query count is within
    ``balance_slack`` of the lightest shard are candidates, so affinity can
    never starve a shard.  Ties break towards the lighter, lower-indexed
    shard, keeping the placement deterministic.

    Example::

        router = QueryRouter(n_shards=2, policy=TermAffinityPolicy())
        router.route(make_query(0, {7: 1.0}))   # shard 0 (empty tie)
        router.route(make_query(1, {7: 1.0}))   # shard 0 again: shares term 7
    """

    name = "affinity"

    def __init__(self, balance_slack: float = 0.25, max_term_weight: int = 4) -> None:
        super().__init__()
        if balance_slack < 0.0:
            raise ConfigurationError(f"balance_slack must be >= 0, got {balance_slack}")
        if max_term_weight <= 0:
            raise ConfigurationError(f"max_term_weight must be > 0, got {max_term_weight}")
        self.balance_slack = balance_slack
        self.max_term_weight = max_term_weight
        self._term_counts: List[Dict[TermId, int]] = []
        self._loads: List[int] = []

    def bind(self, n_shards: int) -> None:
        super().bind(n_shards)
        self._term_counts = [{} for _ in range(n_shards)]
        self._loads = [0] * n_shards

    def assign(self, query: Query) -> int:
        lightest = min(self._loads)
        # At least one extra query of headroom, more as shards fill up.
        cap = lightest + max(1, int(self.balance_slack * (lightest + 1)))
        best_shard = -1
        best_key = None
        for shard in range(self.n_shards):
            if self._loads[shard] > cap:
                continue
            counts = self._term_counts[shard]
            affinity = 0
            for term_id in query.vector:
                resident = counts.get(term_id)
                if resident:
                    affinity += min(resident, self.max_term_weight)
            key = (-affinity, self._loads[shard], shard)
            if best_key is None or key < best_key:
                best_key = key
                best_shard = shard
        counts = self._term_counts[best_shard]
        for term_id in query.vector:
            counts[term_id] = counts.get(term_id, 0) + 1
        self._loads[best_shard] += 1
        return best_shard

    def release(self, query: Query, shard: int) -> None:
        counts = self._term_counts[shard]
        for term_id in query.vector:
            remaining = counts.get(term_id, 0) - 1
            if remaining > 0:
                counts[term_id] = remaining
            else:
                counts.pop(term_id, None)
        self._loads[shard] -= 1

    def adopt(self, query: Query, shard: int) -> None:
        counts = self._term_counts[shard]
        for term_id in query.vector:
            counts[term_id] = counts.get(term_id, 0) + 1
        self._loads[shard] += 1


_POLICIES: Dict[str, Type[PartitionPolicy]] = {
    HashPartitionPolicy.name: HashPartitionPolicy,
    TermAffinityPolicy.name: TermAffinityPolicy,
}


def make_policy(spec: Union[str, PartitionPolicy]) -> PartitionPolicy:
    """Resolve a policy name (``"hash"``/``"affinity"``) or pass an instance through."""
    if isinstance(spec, PartitionPolicy):
        return spec
    cls = _POLICIES.get(str(spec).lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown partition policy {spec!r}; expected one of {sorted(_POLICIES)}"
        )
    return cls()


class QueryRouter:
    """Tracks which shard owns which query and delegates placement to a policy.

    Example::

        router = QueryRouter(n_shards=4, policy="affinity")
        shard = router.route(query)          # place a new query
        assert router.shard_of(query.query_id) == shard
        router.release(query)                # query unregistered
    """

    def __init__(self, n_shards: int, policy: Union[str, PartitionPolicy] = "hash") -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = n_shards
        self.policy = make_policy(policy)
        self.policy.bind(n_shards)
        self._assignments: Dict[QueryId, int] = {}

    def route(self, query: Query) -> int:
        """Assign a home shard to a newly registered query."""
        if query.query_id in self._assignments:
            raise ConfigurationError(f"query {query.query_id} is already routed")
        shard = self.policy.assign(query)
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"policy {self.policy.name!r} returned invalid shard {shard}"
            )
        self._assignments[query.query_id] = shard
        return shard

    def adopt(self, query: Query, shard: int) -> None:
        """Record that ``query`` already lives on ``shard`` (crash recovery).

        Unlike :meth:`route` the placement is dictated, not chosen; the
        policy only absorbs it so its future assignments see the same
        accumulated state they would have after the original registrations.
        """
        if query.query_id in self._assignments:
            raise ConfigurationError(f"query {query.query_id} is already routed")
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"cannot adopt query {query.query_id} onto invalid shard {shard}"
            )
        self.policy.adopt(query, shard)
        self._assignments[query.query_id] = shard

    def release(self, query: Query) -> int:
        """Remove a query's assignment; returns the shard that owned it."""
        shard = self._assignments.pop(query.query_id, None)
        if shard is None:
            raise UnknownQueryError(f"query {query.query_id} is not routed")
        self.policy.release(query, shard)
        return shard

    def shard_of(self, query_id: QueryId) -> int:
        """The shard owning ``query_id``."""
        shard = self._assignments.get(query_id)
        if shard is None:
            raise UnknownQueryError(f"query {query_id} is not routed")
        return shard

    def loads(self) -> List[int]:
        """Number of queries per shard, indexed by shard."""
        loads = [0] * self.n_shards
        for shard in self._assignments.values():
            loads[shard] += 1
        return loads

    @property
    def num_queries(self) -> int:
        return len(self._assignments)
