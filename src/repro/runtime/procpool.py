"""Process-resident shard execution: one long-lived worker per shard.

On stock CPython the GIL keeps :class:`ThreadPoolShardExecutor` from turning
shard concurrency into wall-clock speedup; this module is the executor that
can.  Each shard lives inside its own long-lived **worker process** that
owns a full :class:`~repro.runtime.shard.EngineShard`; the parent drives the
workers over duplex pipes with a small command protocol and never touches
shard state directly.

Design
------

* **Command protocol.**  A request is ``(command, args)``; a reply is
  ``(status, value, events)``.  Command names mirror the
  :class:`EngineShard` surface (``process``, ``process_batch``,
  ``register``, ``unregister``, ``snapshot_encoded``, ``adopt_encoded``,
  ``wal_append``, ...), so the parent-side :class:`ProcessShardHandle` is a
  drop-in stand-in for a local shard: the sharded facade, the rebalance
  path and crash recovery all drive it through the exact same calls.
* **Pipelined fan-out.**  :meth:`ProcessShardExecutor.run_shards` sends the
  command to *every* worker before collecting any reply, so the workers
  process the same event concurrently on separate cores.  Replies are
  collected in shard order; per the executor failure contract, every reply
  is collected before the first exception (in shard order) is raised.
* **State moves through the persistence codec.**  Shard state crossing the
  process boundary — rebalance captures, checkpoint snapshots, recovery
  restores — travels in the codec's encoded form, the same bytes-shape a
  checkpoint stores, so a state that moved between processes is bit-for-bit
  a state that was checkpointed and restored.
* **Events ride the replies.**  Raw result updates (when the facade has
  listeners) and decay-renormalization notifications are buffered
  worker-side and shipped with each reply, preserving per-shard emission
  order without extra round trips.
* **Worker-side WALs.**  A durable sharded monitor tells each worker to
  open its own shard WAL (``wal_open``); journal records are appended where
  the shard lives, so the log I/O parallelizes with the shard work and a
  killed worker loses exactly its unflushed commit group — the same crash
  window an in-process shard has.

Failure semantics: an exception raised by the *shard* inside a worker is
pickled back and re-raised as itself in the parent.  A worker that dies
(killed, crashed, pipe closed) surfaces as
:class:`~repro.exceptions.WorkerError`; the remaining workers are unharmed
and a durable monitor recovers by replaying the surviving logs.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.core.config import MonitorConfig
from repro.core.results import BatchUpdate, ResultEntry, ResultUpdate
from repro.documents.document import Document
from repro.exceptions import ConfigurationError, WorkerError
from repro.metrics.counters import EventCounters
from repro.queries.query import Query
from repro.runtime.executors import ShardExecutor, raise_first_failure, run_serially
from repro.runtime.shard import EngineShard
from repro.types import QueryId

T = TypeVar("T")

#: Reply statuses of the worker protocol.
_OK = "ok"
_ERR = "err"

#: Commands the worker resolves as plain EngineShard method calls / reads.
_SHARD_METHODS = (
    "process",
    "process_batch",
    "register",
    "unregister",
    "renormalize",
    "top_k",
    "threshold",
    "all_results",
    "describe",
    "reset_statistics",
    "snapshot_encoded",
    "restore_encoded",
    "adopt_encoded",
)
_SHARD_PROPERTIES = ("num_queries", "live_window_size", "last_arrival")


def _shard_worker_main(conn, shard_id: int, config: MonitorConfig) -> None:
    """The worker loop: own one shard (and optionally its WAL), serve commands.

    Runs until a ``shutdown`` command or until the parent's end of the pipe
    closes (the parent died); either way the shard's WAL — if one was
    opened — is flushed and closed so no durable-claimed group is lost to a
    *graceful* exit.  Replies are ``(status, value, events)``; ``events``
    carries raw result updates and renormalization notifications buffered
    since the previous reply.
    """
    # Imported here (not at module top) to keep the worker's import
    # footprint obvious; under the fork start method these are already
    # loaded in the parent anyway.
    from repro.persistence.wal import WriteAheadLog

    shard = EngineShard(shard_id, config)
    renormalizations: List[Tuple[float, float]] = []
    shard.add_renormalize_listener(
        lambda origin, factor: renormalizations.append((origin, factor))
    )
    wal: Optional[WriteAheadLog] = None
    running = True
    while running:
        try:
            command, args = conn.recv()
        except (EOFError, OSError):
            break  # Parent is gone; fall through to the WAL flush.
        status = _OK
        value: object = None
        try:
            if command == "shutdown":
                running = False
            elif command == "ping":
                value = os.getpid()
            elif command == "set_capture_raw":
                shard.capture_raw = bool(args[0])
            elif command == "queries":
                value = dict(shard.queries)
            elif command == "counters":
                value = shard.counters.snapshot()
            elif command == "response_times":
                value = list(shard.response_times)
            elif command == "wal_open":
                directory, group_commit, segment_max_bytes, fsync = args
                if wal is not None:
                    wal.close()
                wal = WriteAheadLog(
                    directory,
                    group_commit=group_commit,
                    segment_max_bytes=segment_max_bytes,
                    fsync=fsync,
                )
                value = wal.last_lsn
            elif command.startswith("wal_"):
                if wal is None:
                    raise WorkerError(
                        f"shard worker {shard_id}: {command} before wal_open"
                    )
                if command == "wal_append":
                    value = wal.append_line(args[0], args[1])
                elif command == "wal_flush":
                    wal.flush()
                elif command == "wal_sync":
                    wal.sync()
                elif command == "wal_rotate":
                    wal.rotate()
                elif command == "wal_compact":
                    value = wal.compact(args[0])
                elif command == "wal_last_lsn":
                    value = wal.last_lsn
                elif command == "wal_close":
                    wal.close()
                    wal = None
                else:
                    raise WorkerError(
                        f"shard worker {shard_id}: unknown command {command!r}"
                    )
            elif command in _SHARD_METHODS:
                value = getattr(shard, command)(*args)
            elif command in _SHARD_PROPERTIES:
                value = getattr(shard, command)
            else:
                raise WorkerError(
                    f"shard worker {shard_id}: unknown command {command!r}"
                )
        except Exception as exc:  # noqa: BLE001 - every shard error crosses back
            status, value = _ERR, exc
        events: Dict[str, object] = {}
        raw = shard.drain_raw_updates()
        if raw:
            events["raw"] = raw
        if renormalizations:
            events["renorms"] = list(renormalizations)
            renormalizations.clear()
        try:
            conn.send((status, value, events))
        except Exception:
            # The value (or an error) did not pickle / the pipe broke.  Try
            # to keep the protocol in lockstep with a plain-text error; if
            # the pipe itself is gone, exit.
            try:
                conn.send(
                    (
                        _ERR,
                        WorkerError(
                            f"shard worker {shard_id}: reply to {command!r} "
                            "could not be serialized"
                        ),
                        {},
                    )
                )
            except Exception:
                break
    if wal is not None:
        try:
            wal.close()
        except Exception:  # noqa: BLE001 - best-effort final flush
            pass
    conn.close()


class ProcessShardHandle:
    """Parent-side proxy for one shard living in a worker process.

    Mirrors the :class:`EngineShard` surface (same methods, same
    properties), so the sharded facade, rebalancing and crash recovery
    drive local and process-resident shards through identical code.  Every
    call is one synchronous round trip; the executor's fan-out uses the
    split :meth:`submit` / :meth:`collect` halves to keep all workers busy
    at once.
    """

    def __init__(self, shard_id: int, process, conn) -> None:
        self.shard_id = shard_id
        self.process = process
        self._conn = conn
        self._capture_raw = False
        self._raw_buffer: List[ResultUpdate] = []
        self._renormalize_listeners: List[Callable[[float, float], None]] = []

    # ------------------------------------------------------------------ #
    # Protocol plumbing
    # ------------------------------------------------------------------ #

    def submit(self, command: str, *args: object) -> None:
        """Send one command without waiting for its reply."""
        try:
            self._conn.send((command, args))
        except Exception as exc:
            raise WorkerError(
                f"shard worker {self.shard_id} is gone (send failed)"
            ) from exc

    def collect(self) -> object:
        """Receive one reply; unpack events; raise what the worker raised."""
        try:
            status, value, events = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"shard worker {self.shard_id} died (pipe closed before reply)"
            ) from exc
        raw = events.get("raw")
        if raw:
            self._raw_buffer.extend(raw)
        for origin, factor in events.get("renorms", ()):
            for listener in self._renormalize_listeners:
                listener(origin, factor)
        if status == _ERR:
            raise value  # type: ignore[misc]
        return value

    def call(self, command: str, *args: object) -> object:
        self.submit(command, *args)
        return self.collect()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    # ------------------------------------------------------------------ #
    # EngineShard surface (stream processing)
    # ------------------------------------------------------------------ #

    def process(self, document: Document) -> List[ResultUpdate]:
        return self.call("process", document)  # type: ignore[return-value]

    def process_batch(self, documents: Sequence[Document]) -> List[BatchUpdate]:
        return self.call("process_batch", documents)  # type: ignore[return-value]

    def register(self, query: Query) -> None:
        self.call("register", query)

    def unregister(self, query_id: QueryId) -> Query:
        return self.call("unregister", query_id)  # type: ignore[return-value]

    def renormalize(self, new_origin: float) -> float:
        return self.call("renormalize", new_origin)  # type: ignore[return-value]

    def add_renormalize_listener(self, listener: Callable[[float, float], None]) -> None:
        """Listener fired parent-side as rebase notifications arrive.

        The worker buffers every (origin, factor) rebase — explicit or
        decay-triggered — and ships it with its next reply, preserving
        order; listeners therefore run after the triggering call returns,
        on the caller's thread, like the facade's update listeners.
        """
        self._renormalize_listeners.append(listener)

    # ------------------------------------------------------------------ #
    # EngineShard surface (raw update capture)
    # ------------------------------------------------------------------ #

    @property
    def capture_raw(self) -> bool:
        return self._capture_raw

    @capture_raw.setter
    def capture_raw(self, enabled: bool) -> None:
        self.call("set_capture_raw", bool(enabled))
        self._capture_raw = bool(enabled)

    def drain_raw_updates(self) -> List[ResultUpdate]:
        drained = self._raw_buffer
        self._raw_buffer = []
        return drained

    # ------------------------------------------------------------------ #
    # EngineShard surface (results and diagnostics)
    # ------------------------------------------------------------------ #

    def top_k(self, query_id: QueryId) -> List[ResultEntry]:
        return self.call("top_k", query_id)  # type: ignore[return-value]

    def threshold(self, query_id: QueryId) -> float:
        return self.call("threshold", query_id)  # type: ignore[return-value]

    def all_results(self) -> Dict[QueryId, List[ResultEntry]]:
        return self.call("all_results")  # type: ignore[return-value]

    @property
    def queries(self) -> Dict[QueryId, Query]:
        return self.call("queries")  # type: ignore[return-value]

    @property
    def num_queries(self) -> int:
        return self.call("num_queries")  # type: ignore[return-value]

    @property
    def counters(self) -> EventCounters:
        counters = EventCounters()
        counters.restore(self.call("counters"))  # type: ignore[arg-type]
        return counters

    @property
    def response_times(self) -> List[float]:
        return self.call("response_times")  # type: ignore[return-value]

    @property
    def live_window_size(self) -> Optional[int]:
        return self.call("live_window_size")  # type: ignore[return-value]

    @property
    def last_arrival(self) -> Optional[float]:
        return self.call("last_arrival")  # type: ignore[return-value]

    def reset_statistics(self) -> None:
        self.call("reset_statistics")

    def describe(self) -> Dict[str, object]:
        return self.call("describe")  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # EngineShard surface (state movement — always codec-encoded)
    # ------------------------------------------------------------------ #

    def snapshot_encoded(self, include_structures: bool = True) -> Dict[str, object]:
        return self.call("snapshot_encoded", include_structures)  # type: ignore[return-value]

    def restore_encoded(self, encoded: Dict[str, object]) -> None:
        self.call("restore_encoded", encoded)

    def adopt_encoded(self, encoded: Dict[str, object]) -> None:
        self.call("adopt_encoded", encoded)

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a nested (in-memory) shard capture — recovery's entry point.

        Crash recovery hands every shard the decoded checkpoint shape; for a
        process-resident shard the state is re-encoded through the codec
        (exact by construction) and rebuilt worker-side.
        """
        from repro.persistence import codec

        flat = dict(state["engine"])  # type: ignore[arg-type]
        if "expiration" in state:
            flat["expiration"] = state["expiration"]
        self.restore_encoded(codec.encode_monitor_state(flat))

    # ------------------------------------------------------------------ #
    # Worker-side WAL control (the durable facade's journaling seam)
    # ------------------------------------------------------------------ #

    def wal_open(
        self,
        directory: str,
        group_commit: int,
        segment_max_bytes: int,
        fsync: bool,
    ) -> int:
        return self.call(  # type: ignore[return-value]
            "wal_open", directory, group_commit, segment_max_bytes, fsync
        )

    def wal_append(self, line: bytes, lsn: int) -> int:
        return self.call("wal_append", line, lsn)  # type: ignore[return-value]

    def wal_flush(self) -> None:
        self.call("wal_flush")

    def wal_sync(self) -> None:
        self.call("wal_sync")

    def wal_rotate(self) -> None:
        self.call("wal_rotate")

    def wal_compact(self, up_to_lsn: int) -> int:
        return self.call("wal_compact", up_to_lsn)  # type: ignore[return-value]

    def wal_last_lsn(self) -> int:
        return self.call("wal_last_lsn")  # type: ignore[return-value]

    def wal_close(self) -> None:
        self.call("wal_close")


class ProcessShardExecutor(ShardExecutor):
    """Hosts every shard in a long-lived worker process (name ``"processes"``).

    Shard-resident: :meth:`spawn_shards` starts the workers and returns the
    :class:`ProcessShardHandle` list the sharded facade uses *as* its
    shards.  :meth:`run_shards` is the parallel fan-out; :meth:`close`
    shuts the workers down (gracefully when they are healthy, forcefully
    when not).

    Example::

        monitor = ShardedMonitor(config, n_shards=4, executor="processes")
        monitor.process_batch(batch)      # 4 workers score concurrently
        monitor.close()                   # joins the workers
    """

    name = "processes"
    shard_resident = True

    def __init__(self, n_shards: int, mp_context=None) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = n_shards
        self._ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        self._handles: Optional[List[ProcessShardHandle]] = None

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #

    @property
    def handles(self) -> List[ProcessShardHandle]:
        if self._handles is None:
            raise ConfigurationError(
                "process executor has no workers; spawn_shards() was not called"
            )
        return list(self._handles)

    def spawn_shards(self, config: MonitorConfig) -> List[ProcessShardHandle]:
        """Start one worker per shard; returns their handles in shard order."""
        if self._handles is not None:
            raise ConfigurationError("process executor already owns live workers")
        handles: List[ProcessShardHandle] = []
        self._handles = handles
        try:
            for shard_id in range(self.n_shards):
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                process = self._ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, shard_id, config),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                handles.append(ProcessShardHandle(shard_id, process, parent_conn))
            # One synchronous ping per worker surfaces spawn failures
            # (missing config, import errors) here instead of at the first
            # stream event.
            for handle in handles:
                handle.call("ping")
        except Exception:
            # Never leak half a worker fleet: join whatever started, and
            # leave the executor re-spawnable.
            self.close()
            raise
        return handles

    def resize(self, n_shards: int, config: MonitorConfig) -> List[ProcessShardHandle]:
        """Replace the worker set with ``n_shards`` fresh workers."""
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.close()
        self.n_shards = n_shards
        return self.spawn_shards(config)

    def close(self) -> None:
        """Shut every worker down; robust to workers that already died."""
        if self._handles is None:
            return
        handles, self._handles = self._handles, None
        for handle in handles:
            try:
                handle.call("shutdown")
            except Exception:  # noqa: BLE001 - dead workers cannot ack
                pass
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - defensive
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            try:
                handle._conn.close()
            except Exception:  # noqa: BLE001
                pass

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Run opaque thunks on the calling thread (the generic fallback).

        Arbitrary closures cannot cross a process boundary; the parallel
        path is :meth:`run_shards`, which ships *commands* instead.  Same
        failure contract as every executor.
        """
        return run_serially(tasks)

    def run_shards(
        self, shards: Sequence[object], method: str, args: Tuple[object, ...]
    ) -> List[object]:
        """Pipeline one command to every worker, then collect every reply.

        The submit loop finishes before the first collect, so all workers
        process the command concurrently; collection preserves shard order
        and — per the failure contract — completes the whole fan-out before
        raising the first failure in shard order.
        """
        submit_failures: Dict[int, BaseException] = {}
        for index, shard in enumerate(shards):
            try:
                shard.submit(method, *args)  # type: ignore[attr-defined]
            except Exception as exc:
                submit_failures[index] = exc
        outcomes: List[Tuple[Optional[object], Optional[BaseException]]] = []
        for index, shard in enumerate(shards):
            if index in submit_failures:
                outcomes.append((None, submit_failures[index]))
                continue
            try:
                outcomes.append((shard.collect(), None))  # type: ignore[attr-defined]
            except Exception as exc:
                outcomes.append((None, exc))
        return raise_first_failure(outcomes)
