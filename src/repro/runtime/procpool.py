"""Process-resident shard execution: one long-lived worker per shard.

On stock CPython the GIL keeps :class:`ThreadPoolShardExecutor` from turning
shard concurrency into wall-clock speedup; this module is the executor that
can.  Each shard lives inside its own long-lived **worker process** that
owns a full :class:`~repro.runtime.shard.EngineShard`; the parent drives the
workers over duplex pipes with a small command protocol and never touches
shard state directly.

Design
------

* **Codec frames on the pipes.**  Commands and replies are length-prefixed
  frames of the persistence codec (:func:`codec.pack_frame`), not pickle:
  the WAL, the checkpoints, the serving sockets and the worker pipes all
  speak one deterministic wire format.  Hot payloads — document batches,
  coalesced batch updates, raw result updates — travel as packed binary
  tail sections the receiver reads zero-copy through ``memoryview`` casts.
* **Shared-memory batch fan-out.**  A document batch is encoded ONCE into
  a :class:`~repro.runtime.shm.SharedMemoryRing` slot; every worker gets
  only a tiny ``(seq, offset, length)`` descriptor over its control pipe
  and decodes the slot in place.  The slot is reclaimed (freed for reuse)
  after every worker has acknowledged the batch — the submit-all-then-
  collect discipline doubles as the reclamation barrier.  A batch larger
  than the ring is split into *stage* rounds (workers buffer the decoded
  documents, acks free each slot) followed by one *commit* round that runs
  the engine exactly once over the accumulated batch, so chunking never
  changes results.  When ``multiprocessing.shared_memory`` is unavailable
  — or ``transport="pipe"`` is forced — the same frames ride the pipes.
* **One framed reply per worker per batch.**  Workers coalesce per-event
  notifications into the :class:`BatchUpdate` form engine-side and ship
  them (plus any captured raw updates) as binary sections of a single
  reply frame, instead of thousands of pickled tuples.
* **Pipelined fan-out.**  :meth:`ProcessShardExecutor.run_shards` sends the
  command to *every* worker before collecting any reply, so the workers
  process the same event concurrently on separate cores.  Replies are
  collected in shard order; per the executor failure contract, every reply
  is collected before the first exception (in shard order) is raised.
* **State moves through the persistence codec.**  Shard state crossing the
  process boundary — rebalance captures, checkpoint snapshots, recovery
  restores — travels in the codec's encoded form, the same bytes-shape a
  checkpoint stores, so a state that moved between processes is bit-for-bit
  a state that was checkpointed and restored.
* **Worker-side WALs.**  A durable sharded monitor tells each worker to
  open its own shard WAL (``wal_open``); journal records are appended where
  the shard lives, so the log I/O parallelizes with the shard work and a
  killed worker loses exactly its unflushed commit group — the same crash
  window an in-process shard has.

Failure semantics: an exception raised by the *shard* inside a worker is
codec-encoded back and re-raised as itself in the parent.  A worker that
dies (killed, crashed, pipe closed) surfaces as
:class:`~repro.exceptions.WorkerError`; the remaining workers are unharmed
and a durable monitor recovers by replaying the surviving logs.  A worker
killed while a ring slot is in flight cannot corrupt later batches: the
parent reclaims the slot after the fan-out regardless, and the payload CRC
guards every decode.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.core.config import MonitorConfig
from repro.core.results import BatchUpdate, ResultEntry, ResultUpdate
from repro.documents.document import Document
from repro.exceptions import ConfigurationError, WorkerError
from repro.metrics.counters import EventCounters
from repro.persistence import codec
from repro.queries.query import Query
from repro.runtime.executors import ShardExecutor, raise_first_failure, run_serially
from repro.runtime.shard import EngineShard
from repro.runtime.shm import (
    DEFAULT_RING_BYTES,
    SharedMemoryRing,
    shared_memory_available,
)
from repro.types import QueryId

T = TypeVar("T")

#: Reply statuses of the worker protocol.
_OK = "ok"
_ERR = "err"

#: Transports the executor accepts (``"auto"`` prefers shared memory and
#: falls back to pipes when the host cannot provide it).
TRANSPORTS = ("auto", "shm", "pipe")

#: How many batch commits a worker serves between explicit full garbage
#: collections (automatic collection is off inside the worker loop).
_GC_EVERY_COMMITS = 256

#: Commands the worker resolves as plain EngineShard method calls / reads.
_SHARD_METHODS = (
    "process",
    "process_batch",
    "register",
    "unregister",
    "renormalize",
    "top_k",
    "threshold",
    "all_results",
    "describe",
    "reset_statistics",
    "snapshot_encoded",
    "restore_encoded",
    "adopt_encoded",
)
_SHARD_PROPERTIES = (
    "num_queries",
    "live_window_size",
    "last_arrival",
    "batch_response_times",
)


@dataclass
class TransportStats:
    """Parent-side byte accounting of the worker transport.

    ``control_bytes`` are command/reply *headers* and slot descriptors;
    ``payload_pipe_bytes`` are encoded document batches that crossed a pipe
    (fallback transport, multiplied by the workers they were sent to);
    ``payload_shm_bytes`` are encoded batches written into the shared ring
    (written once, however many workers read them); ``reply_bytes`` is
    everything the workers sent back.  The shard-scaling benchmark divides
    these by ``events`` to report bytes-per-event per transport.
    """

    control_bytes: int = 0
    payload_pipe_bytes: int = 0
    payload_shm_bytes: int = 0
    reply_bytes: int = 0
    batches: int = 0
    events: int = 0
    #: High-water mark of ring bytes reserved by one fan-out round — the
    #: occupancy gauge's numerator (0 on the pipe transport).
    peak_ring_bytes: int = 0

    def reset(self) -> None:
        self.control_bytes = 0
        self.payload_pipe_bytes = 0
        self.payload_shm_bytes = 0
        self.reply_bytes = 0
        self.batches = 0
        self.events = 0
        self.peak_ring_bytes = 0

    def per_event(self) -> Dict[str, float]:
        """Bytes per stream event, by traffic class (0.0 before any event)."""
        events = self.events or 1
        return {
            "control": self.control_bytes / events,
            "payload_pipe": self.payload_pipe_bytes / events,
            "payload_shm": self.payload_shm_bytes / events,
            "replies": self.reply_bytes / events,
        }


def _decode_batch_payload(header, tail, ring) -> List[Document]:
    """Resolve one stage/commit payload: a ring slice or the frame's tail."""
    if "q" in header:
        if ring is None:
            raise WorkerError("shm batch descriptor but no ring is attached")
        payload = ring.slice(header["o"], header["l"])
    else:
        payload = tail
    batch_header, batch_tail = codec.unpack_frame(payload)
    return codec.decode_document_batch(batch_header, batch_tail)


def _shard_worker_main(conn, shard_id: int, config: MonitorConfig, ring_name=None) -> None:
    """The worker loop: own one shard (and optionally its WAL), serve commands.

    Runs until a ``shutdown`` command or until the parent's end of the pipe
    closes (the parent died); either way the shard's WAL — if one was
    opened — is flushed and closed so no durable-claimed group is lost to a
    *graceful* exit.  Replies are codec frames ``{"s": status, "v": value,
    "e": events}``; ``events`` carries raw result updates (a binary tail
    section) and renormalization notifications buffered since the previous
    reply.
    """
    # Imported here (not at module top) to keep the worker's import
    # footprint obvious; under the fork start method these are already
    # loaded in the parent anyway.
    import gc

    from repro.persistence.wal import WriteAheadLog
    from repro.runtime.shm import attach_ring_view

    # A worker process runs nothing but this loop, so it takes the classic
    # dedicated-process collector policy: automatic collection off, one
    # explicit full collection every ``_GC_EVERY_COMMITS`` batches.  The
    # hot path allocates tens of thousands of objects per batch (decoded
    # documents, result entries), and allocation-triggered full collections
    # would rescan the ever-growing resident engine state from inside the
    # batch loop; nearly all per-batch garbage is acyclic and dies by
    # refcount, so the periodic sweep only has to pick up stray cycles.
    gc.disable()
    commits_since_gc = 0

    shard = EngineShard(shard_id, config)
    shard.capture_renorms = True
    ring = attach_ring_view(ring_name) if ring_name is not None else None
    staged: List[Document] = []
    wal: Optional[WriteAheadLog] = None
    running = True
    while running:
        try:
            request = conn.recv_bytes()
        except (EOFError, OSError):
            break  # Parent is gone; fall through to the WAL flush.
        status = _OK
        value: object = None
        command = "?"
        try:
            header, tail = codec.unpack_frame(request)
            command = header["c"]
            if command == "batch_stage":
                # One chunk of a batch larger than the ring: decode and
                # buffer only — the engine runs once, at the commit.
                if header.get("f"):
                    staged = []
                staged.extend(_decode_batch_payload(header, tail, ring))
                value = len(staged)
            elif command == "batch_commit":
                documents = _decode_batch_payload(header, tail, ring)
                if header.get("g") and staged:
                    staged.extend(documents)
                    documents = staged
                staged = []
                value = shard.process_batch(documents)
                commits_since_gc += 1
                if commits_since_gc >= _GC_EVERY_COMMITS:
                    commits_since_gc = 0
                    gc.collect()
            elif command == "shutdown":
                running = False
            elif command == "ping":
                import os

                value = os.getpid()
            elif command == "set_capture_raw":
                shard.capture_raw = bool(header["a"][0])
            elif command == "queries":
                value = dict(shard.queries)
            elif command == "counters":
                value = shard.counters.snapshot()
            elif command == "telemetry":
                value = shard.telemetry_snapshot()
            elif command == "response_times":
                value = list(shard.response_times)
            elif command == "wal_open":
                directory, group_commit, segment_max_bytes, fsync = [
                    codec.decode_value(arg, tail) for arg in header["a"]
                ]
                if wal is not None:
                    wal.close()
                wal = WriteAheadLog(
                    directory,
                    group_commit=group_commit,
                    segment_max_bytes=segment_max_bytes,
                    fsync=fsync,
                    telemetry=shard.telemetry,
                )
                value = wal.last_lsn
            elif command.startswith("wal_"):
                if wal is None:
                    raise WorkerError(
                        f"shard worker {shard_id}: {command} before wal_open"
                    )
                args = [codec.decode_value(arg, tail) for arg in header.get("a", ())]
                if command == "wal_append":
                    value = wal.append_line(args[0], args[1])
                elif command == "wal_flush":
                    wal.flush()
                elif command == "wal_sync":
                    wal.sync()
                elif command == "wal_rotate":
                    wal.rotate()
                elif command == "wal_compact":
                    value = wal.compact(args[0])
                elif command == "wal_last_lsn":
                    value = wal.last_lsn
                elif command == "wal_close":
                    wal.close()
                    wal = None
                else:
                    raise WorkerError(
                        f"shard worker {shard_id}: unknown command {command!r}"
                    )
            elif command in _SHARD_METHODS:
                args = [codec.decode_value(arg, tail) for arg in header.get("a", ())]
                value = getattr(shard, command)(*args)
            elif command in _SHARD_PROPERTIES:
                value = getattr(shard, command)
            else:
                raise WorkerError(
                    f"shard worker {shard_id}: unknown command {command!r}"
                )
        except Exception as exc:  # noqa: BLE001 - every shard error crosses back
            status, value = _ERR, exc
        raw = shard.drain_raw_updates()
        renorms = shard.drain_renormalizations()
        fallback = WorkerError(
            f"shard worker {shard_id}: reply to {command!r} could not be encoded"
        )
        sent = False
        for reply_status, reply_value in ((status, value), (_ERR, fallback)):
            tail_writer = codec.TailWriter()
            try:
                events: Dict[str, object] = {}
                if raw:
                    events["r"] = codec.encode_value(raw, tail_writer)
                if renorms:
                    events["n"] = [[origin, factor] for origin, factor in renorms]
                reply = codec.pack_frame(
                    {
                        "s": reply_status,
                        "v": codec.encode_value(reply_value, tail_writer),
                        "e": events,
                    },
                    tail_writer.take(),
                )
                conn.send_bytes(reply)
                sent = True
                break
            except Exception:  # noqa: BLE001 - try the fallback reply
                continue
        if not sent:
            break  # The pipe itself is gone.
    if wal is not None:
        try:
            wal.close()
        except Exception:  # noqa: BLE001 - best-effort final flush
            pass
    if ring is not None:
        ring.close()
    conn.close()


class ProcessShardHandle:
    """Parent-side proxy for one shard living in a worker process.

    Mirrors the :class:`EngineShard` surface (same methods, same
    properties), so the sharded facade, rebalancing and crash recovery
    drive local and process-resident shards through identical code.  Every
    call is one synchronous round trip; the executor's fan-out uses the
    split :meth:`submit` / :meth:`collect` halves to keep all workers busy
    at once.
    """

    def __init__(self, shard_id: int, process, conn, stats: Optional[TransportStats] = None) -> None:
        self.shard_id = shard_id
        self.process = process
        self._conn = conn
        self._stats = stats if stats is not None else TransportStats()
        self._capture_raw = False
        self._raw_buffer: List[ResultUpdate] = []
        self._renormalize_listeners: List[Callable[[float, float], None]] = []

    # ------------------------------------------------------------------ #
    # Protocol plumbing
    # ------------------------------------------------------------------ #

    def send_frame(self, frame: bytes) -> None:
        """Ship one pre-packed frame (byte accounting is the caller's job)."""
        try:
            self._conn.send_bytes(frame)
        except Exception as exc:
            raise WorkerError(
                f"shard worker {self.shard_id} is gone (send failed)"
            ) from exc

    def submit(self, command: str, *args: object) -> None:
        """Send one command without waiting for its reply."""
        tail = codec.TailWriter()
        header: Dict[str, object] = {"c": command}
        if args:
            header["a"] = [codec.encode_value(arg, tail) for arg in args]
        frame = codec.pack_frame(header, tail.take())
        self._stats.control_bytes += len(frame)
        self.send_frame(frame)

    def collect(self) -> object:
        """Receive one reply; unpack events; raise what the worker raised."""
        try:
            data = self._conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"shard worker {self.shard_id} died (pipe closed before reply)"
            ) from exc
        self._stats.reply_bytes += len(data)
        try:
            header, tail = codec.unpack_frame(data)
            events = header.get("e") or {}
            raw = events.get("r")
            if raw is not None:
                self._raw_buffer.extend(codec.decode_value(raw, tail))
            for origin, factor in events.get("n", ()):
                for listener in self._renormalize_listeners:
                    listener(origin, factor)
            status = header["s"]
            value = codec.decode_value(header.get("v"), tail)
        except WorkerError:
            raise
        except Exception as exc:
            raise WorkerError(
                f"shard worker {self.shard_id} sent an undecodable reply"
            ) from exc
        if status == _ERR:
            if isinstance(value, BaseException):
                raise value
            raise WorkerError(str(value))  # pragma: no cover - defensive
        return value

    def call(self, command: str, *args: object) -> object:
        self.submit(command, *args)
        return self.collect()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    # ------------------------------------------------------------------ #
    # EngineShard surface (stream processing)
    # ------------------------------------------------------------------ #

    def process(self, document: Document) -> List[ResultUpdate]:
        return self.call("process", document)  # type: ignore[return-value]

    def process_batch(self, documents: Sequence[Document]) -> List[BatchUpdate]:
        """One batch to this worker alone (the executor fan-out shares the
        encoded frame across all workers instead of calling this per shard)."""
        payload = codec.encode_document_batch(
            documents if isinstance(documents, list) else list(documents)
        )
        frame = codec.pack_frame({"c": "batch_commit"}, payload)
        self._stats.control_bytes += len(frame) - len(payload)
        self._stats.payload_pipe_bytes += len(payload)
        self._stats.batches += 1
        self._stats.events += len(documents)
        self.send_frame(frame)
        return self.collect()  # type: ignore[return-value]

    def register(self, query: Query) -> None:
        self.call("register", query)

    def unregister(self, query_id: QueryId) -> Query:
        return self.call("unregister", query_id)  # type: ignore[return-value]

    def renormalize(self, new_origin: float) -> float:
        return self.call("renormalize", new_origin)  # type: ignore[return-value]

    def add_renormalize_listener(self, listener: Callable[[float, float], None]) -> None:
        """Listener fired parent-side as rebase notifications arrive.

        The worker buffers every (origin, factor) rebase — explicit or
        decay-triggered — and ships it with its next reply, preserving
        order; listeners therefore run after the triggering call returns,
        on the caller's thread, like the facade's update listeners.
        """
        self._renormalize_listeners.append(listener)

    # ------------------------------------------------------------------ #
    # EngineShard surface (raw update capture)
    # ------------------------------------------------------------------ #

    @property
    def capture_raw(self) -> bool:
        return self._capture_raw

    @capture_raw.setter
    def capture_raw(self, enabled: bool) -> None:
        self.call("set_capture_raw", bool(enabled))
        self._capture_raw = bool(enabled)

    def drain_raw_updates(self) -> List[ResultUpdate]:
        drained = self._raw_buffer
        self._raw_buffer = []
        return drained

    # ------------------------------------------------------------------ #
    # EngineShard surface (results and diagnostics)
    # ------------------------------------------------------------------ #

    def top_k(self, query_id: QueryId) -> List[ResultEntry]:
        return self.call("top_k", query_id)  # type: ignore[return-value]

    def threshold(self, query_id: QueryId) -> float:
        return self.call("threshold", query_id)  # type: ignore[return-value]

    def all_results(self) -> Dict[QueryId, List[ResultEntry]]:
        return self.call("all_results")  # type: ignore[return-value]

    @property
    def queries(self) -> Dict[QueryId, Query]:
        return self.call("queries")  # type: ignore[return-value]

    @property
    def num_queries(self) -> int:
        return self.call("num_queries")  # type: ignore[return-value]

    @property
    def counters(self) -> EventCounters:
        counters = EventCounters()
        counters.restore(self.call("counters"))  # type: ignore[arg-type]
        return counters

    @property
    def response_times(self) -> List[float]:
        return self.call("response_times")  # type: ignore[return-value]

    @property
    def batch_response_times(self) -> List[Tuple[int, float]]:
        return [
            (int(size), float(elapsed))
            for size, elapsed in self.call("batch_response_times")  # type: ignore[union-attr]
        ]

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The worker shard's telemetry wire dict (empty when disabled).

        One round trip; the caller merges it losslessly with
        :meth:`~repro.obs.telemetry.Telemetry.merge_snapshot` — the same
        collect-and-merge discipline as the ``counters`` command.
        """
        return self.call("telemetry")  # type: ignore[return-value]

    @property
    def live_window_size(self) -> Optional[int]:
        return self.call("live_window_size")  # type: ignore[return-value]

    @property
    def last_arrival(self) -> Optional[float]:
        return self.call("last_arrival")  # type: ignore[return-value]

    def reset_statistics(self) -> None:
        self.call("reset_statistics")

    def describe(self) -> Dict[str, object]:
        return self.call("describe")  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # EngineShard surface (state movement — always codec-encoded)
    # ------------------------------------------------------------------ #

    def snapshot_encoded(self, include_structures: bool = True) -> Dict[str, object]:
        return self.call("snapshot_encoded", include_structures)  # type: ignore[return-value]

    def restore_encoded(self, encoded: Dict[str, object]) -> None:
        self.call("restore_encoded", encoded)

    def adopt_encoded(self, encoded: Dict[str, object]) -> None:
        self.call("adopt_encoded", encoded)

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a nested (in-memory) shard capture — recovery's entry point.

        Crash recovery hands every shard the decoded checkpoint shape; for a
        process-resident shard the state is re-encoded through the codec
        (exact by construction) and rebuilt worker-side.
        """
        flat = dict(state["engine"])  # type: ignore[arg-type]
        if "expiration" in state:
            flat["expiration"] = state["expiration"]
        self.restore_encoded(codec.encode_monitor_state(flat))

    # ------------------------------------------------------------------ #
    # Worker-side WAL control (the durable facade's journaling seam)
    # ------------------------------------------------------------------ #

    def wal_open(
        self,
        directory: str,
        group_commit: int,
        segment_max_bytes: int,
        fsync: bool,
    ) -> int:
        return self.call(  # type: ignore[return-value]
            "wal_open", directory, group_commit, segment_max_bytes, fsync
        )

    def wal_append(self, line: bytes, lsn: int) -> int:
        return self.call("wal_append", line, lsn)  # type: ignore[return-value]

    def wal_flush(self) -> None:
        self.call("wal_flush")

    def wal_sync(self) -> None:
        self.call("wal_sync")

    def wal_rotate(self) -> None:
        self.call("wal_rotate")

    def wal_compact(self, up_to_lsn: int) -> int:
        return self.call("wal_compact", up_to_lsn)  # type: ignore[return-value]

    def wal_last_lsn(self) -> int:
        return self.call("wal_last_lsn")  # type: ignore[return-value]

    def wal_close(self) -> None:
        self.call("wal_close")


class ProcessShardExecutor(ShardExecutor):
    """Hosts every shard in a long-lived worker process (name ``"processes"``).

    Shard-resident: :meth:`spawn_shards` starts the workers and returns the
    :class:`ProcessShardHandle` list the sharded facade uses *as* its
    shards.  :meth:`run_shards` is the parallel fan-out; :meth:`close`
    shuts the workers down (gracefully when they are healthy, forcefully
    when not).

    ``transport`` selects how document batches reach the workers:
    ``"auto"`` (shared memory when the host provides it, pipes otherwise),
    ``"shm"`` (required — raises when unavailable) or ``"pipe"`` (forced
    fallback; also what differential tests use to exercise both paths).

    Example::

        monitor = ShardedMonitor(config, n_shards=4, executor="processes")
        monitor.process_batch(batch)      # 4 workers score concurrently
        monitor.close()                   # joins the workers
    """

    name = "processes"
    shard_resident = True

    def __init__(
        self,
        n_shards: int,
        mp_context=None,
        transport: str = "auto",
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if ring_bytes <= 0:
            raise ConfigurationError(f"ring_bytes must be > 0, got {ring_bytes}")
        self.n_shards = n_shards
        self.transport = transport
        self.ring_bytes = ring_bytes
        self.stats = TransportStats()
        self._ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        self._handles: Optional[List[ProcessShardHandle]] = None
        self._ring: Optional[SharedMemoryRing] = None

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #

    @property
    def handles(self) -> List[ProcessShardHandle]:
        if self._handles is None:
            raise ConfigurationError(
                "process executor has no workers; spawn_shards() was not called"
            )
        return list(self._handles)

    @property
    def transport_active(self) -> Optional[str]:
        """``"shm"``/``"pipe"`` while workers are live, ``None`` before."""
        if self._handles is None:
            return None
        return "shm" if self._ring is not None else "pipe"

    @property
    def ring_occupancy(self) -> Optional[float]:
        """Fraction of the shared ring currently reserved (``None`` on the
        pipe transport).  The telemetry gauges also report the fan-out
        high-water mark, ``stats.peak_ring_bytes / ring capacity``."""
        if self._ring is None:
            return None
        return self._ring.used / self._ring.capacity

    def telemetry_gauges(self) -> Dict[str, float]:
        """Transport gauges merged into the facade's telemetry snapshot."""
        if self._ring is None:
            return {}
        capacity = self._ring.capacity
        return {
            "runtime.shm_ring_occupancy": self._ring.used / capacity,
            "runtime.shm_ring_peak_occupancy": self.stats.peak_ring_bytes
            / capacity,
        }

    def spawn_shards(self, config: MonitorConfig) -> List[ProcessShardHandle]:
        """Start one worker per shard; returns their handles in shard order."""
        if self._handles is not None:
            raise ConfigurationError("process executor already owns live workers")
        if self.transport == "shm" and not shared_memory_available():
            raise ConfigurationError(
                "transport='shm' requested but multiprocessing.shared_memory "
                "is unavailable on this host (use 'auto' or 'pipe')"
            )
        use_shm = self.transport in ("auto", "shm") and shared_memory_available()
        handles: List[ProcessShardHandle] = []
        self._handles = handles
        try:
            if use_shm:
                self._ring = SharedMemoryRing(self.ring_bytes)
            ring_name = self._ring.name if self._ring is not None else None
            for shard_id in range(self.n_shards):
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                process = self._ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, shard_id, config, ring_name),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                handles.append(
                    ProcessShardHandle(shard_id, process, parent_conn, self.stats)
                )
            # One synchronous ping per worker surfaces spawn failures
            # (missing config, import errors, a dead sibling) here instead
            # of at the first stream event.
            for handle in handles:
                handle.call("ping")
        except Exception:
            # Never leak half a worker fleet: terminate and join whatever
            # started, and leave the executor re-spawnable.
            self.close()
            raise
        return handles

    def resize(self, n_shards: int, config: MonitorConfig) -> List[ProcessShardHandle]:
        """Replace the worker set (and its ring) with ``n_shards`` fresh workers."""
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.close()
        self.n_shards = n_shards
        return self.spawn_shards(config)

    def close(self) -> None:
        """Shut every worker down; robust to workers that wedged or died.

        ``shutdown`` is *submitted*, never awaited: a worker stuck
        mid-protocol (or killed while holding a ring slot) would otherwise
        block the parent forever on its reply.  Healthy workers exit on the
        command; anything still alive after the join grace is terminated.
        """
        if self._handles is None and self._ring is None:
            return
        handles, self._handles = self._handles or [], None
        for handle in handles:
            try:
                handle.submit("shutdown")
            except Exception:  # noqa: BLE001 - dead workers cannot be told
                pass
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            try:
                handle._conn.close()
            except Exception:  # noqa: BLE001
                pass
        if self._ring is not None:
            self._ring.close()
            self._ring = None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Run opaque thunks on the calling thread (the generic fallback).

        Arbitrary closures cannot cross a process boundary; the parallel
        path is :meth:`run_shards`, which ships *commands* instead.  Same
        failure contract as every executor.
        """
        return run_serially(tasks)

    def run_shards(
        self, shards: Sequence[object], method: str, args: Tuple[object, ...]
    ) -> List[object]:
        """Pipeline one command to every worker, then collect every reply.

        The submit loop finishes before the first collect, so all workers
        process the command concurrently; collection preserves shard order
        and — per the failure contract — completes the whole fan-out before
        raising the first failure in shard order.  The ``process_batch``
        fan-out to this executor's own workers takes the zero-copy batch
        path (one encode, shared ring slot or shared pipe frame).
        """
        if (
            method == "process_batch"
            and len(args) == 1
            and self._handles is not None
            and len(shards) == len(self._handles)
            and all(a is b for a, b in zip(shards, self._handles))
        ):
            return self._fan_out_batch(args[0])  # type: ignore[arg-type]
        submit_failures: Dict[int, BaseException] = {}
        for index, shard in enumerate(shards):
            try:
                shard.submit(method, *args)  # type: ignore[attr-defined]
            except Exception as exc:
                submit_failures[index] = exc
        outcomes: List[Tuple[Optional[object], Optional[BaseException]]] = []
        for index, shard in enumerate(shards):
            if index in submit_failures:
                outcomes.append((None, submit_failures[index]))
                continue
            try:
                outcomes.append((shard.collect(), None))  # type: ignore[attr-defined]
            except Exception as exc:
                outcomes.append((None, exc))
        return raise_first_failure(outcomes)

    # ------------------------------------------------------------------ #
    # Zero-copy batch fan-out
    # ------------------------------------------------------------------ #

    def _encode_rounds(self, documents: List[Document]) -> List[bytes]:
        """Encode ``documents`` as payload frames that each fit the ring.

        The common case is one frame.  A batch larger than the ring splits
        recursively into document chunks; a single document whose frame
        exceeds the ring is returned oversized and ships over the pipes.
        """
        frame = codec.encode_document_batch(documents)
        if self._ring is None or len(frame) <= self._ring.capacity or len(documents) <= 1:
            return [frame]
        mid = len(documents) // 2
        return self._encode_rounds(documents[:mid]) + self._encode_rounds(documents[mid:])

    def _fan_out_batch(self, documents: Sequence[Document]) -> List[List[BatchUpdate]]:
        """Fan one arrival-ordered batch to every worker, encoded once.

        Multi-round (chunked) fan-outs stage document chunks worker-side
        and run each engine exactly once at the commit, so splitting never
        changes renormalization points or update coalescing.  Per the
        failure contract a worker that fails any round is excluded from
        later rounds but every healthy worker is driven to completion
        before the first failure (in shard order) is raised.
        """
        handles = self._handles or []
        docs = documents if isinstance(documents, list) else list(documents)
        stats = self.stats
        stats.batches += 1
        stats.events += len(docs)
        rounds = self._encode_rounds(docs)
        failures: Dict[int, BaseException] = {}
        values: List[object] = [None] * len(handles)
        last = len(rounds) - 1
        for round_no, payload in enumerate(rounds):
            if round_no < last:
                header: Dict[str, object] = {"c": "batch_stage", "f": round_no == 0}
            else:
                header = {"c": "batch_commit", "g": last > 0}
            seq = None
            view = None
            if self._ring is not None and len(payload) <= self._ring.capacity:
                # The previous round freed its slot, so a fitting payload
                # always reserves (at most one slot is ever in flight).
                seq, offset, view = self._ring.reserve(len(payload))  # type: ignore[misc]
                view[: len(payload)] = payload
                if self._ring.used > stats.peak_ring_bytes:
                    stats.peak_ring_bytes = self._ring.used
                header["q"] = seq
                header["o"] = offset
                header["l"] = len(payload)
                frame = codec.pack_frame(header)
                stats.payload_shm_bytes += len(payload)
                control_len, payload_len = len(frame), 0
            else:
                frame = codec.pack_frame(header, payload)
                control_len = len(frame) - len(payload)
                payload_len = len(payload)
            submitted: List[int] = []
            for index, handle in enumerate(handles):
                if index in failures:
                    continue
                try:
                    handle.send_frame(frame)
                except Exception as exc:  # noqa: BLE001 - collect-all contract
                    failures[index] = exc
                    continue
                submitted.append(index)
                stats.control_bytes += control_len
                stats.payload_pipe_bytes += payload_len
            for index in submitted:
                try:
                    values[index] = handles[index].collect()
                except Exception as exc:  # noqa: BLE001 - collect-all contract
                    failures[index] = exc
            if seq is not None:
                # Every worker has acknowledged (or failed); the slot bytes
                # can never be read again, so reclaim them for the next round.
                if view is not None:
                    view.release()
                self._ring.free(seq)  # type: ignore[union-attr]
        outcomes = [
            (values[index], failures.get(index)) for index in range(len(handles))
        ]
        return raise_first_failure(outcomes)  # type: ignore[return-value]
