"""The sharded monitoring facade: N engine shards behind one monitor API.

:class:`ShardedMonitor` is drop-in API-compatible with
:class:`~repro.core.monitor.ContinuousMonitor`: registration, per-event and
batched processing, top-k lookups, listeners and statistics all behave the
same — but behind the facade the registered queries are partitioned by a
:class:`~repro.runtime.routing.QueryRouter` across independent
:class:`~repro.runtime.shard.EngineShard` instances, and every stream event
fans out to all shards through a pluggable
:class:`~repro.runtime.executors.ShardExecutor`.

Merge semantics
---------------

Each query lives in exactly one shard, so merging is concatenation, not
reconciliation:

* per-event and batched updates are merged across shards and ordered by
  query id (stable, so each query's update sequence is preserved) — one
  deterministic order regardless of the executor;
* per-shard :class:`~repro.metrics.counters.EventCounters` merge losslessly
  (every field is a sum over disjoint work), except ``documents``, which
  every shard counts per event it sees; the facade reports the stream's
  true event count, tracked at the routing layer;
* listeners registered on the facade observe every raw
  :class:`~repro.core.results.ResultUpdate`, replayed shard by shard after
  the event (never concurrently).

Because scoring, decay and expiration are per-query (or pure functions of
the arrival sequence), a query's results, scores and thresholds are
bit-for-bit identical to a single :class:`ContinuousMonitor` hosting the
full query set — property-tested in ``tests/test_runtime_sharded.py``.

Typical usage::

    monitor = ShardedMonitor(MonitorConfig(algorithm="mrio"), n_shards=4,
                             policy="affinity", executor="threads")
    monitor.register_queries(queries)
    for batch in BatchingStream(stream, max_batch=256):
        for update in monitor.process_batch(batch):
            notify_user(update.query_id, update.entries)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import MonitorConfig
from repro.core.results import BatchUpdate, ResultEntry, ResultUpdate
from repro.documents.document import Document
from repro.exceptions import ConfigurationError
from repro.metrics.counters import EventCounters
from repro.obs.telemetry import Telemetry
from repro.queries.query import Query
from repro.runtime.executors import ShardExecutor, ThreadPoolShardExecutor, make_executor
from repro.runtime.routing import PartitionPolicy, QueryRouter, make_policy
from repro.runtime.shard import EngineShard
from repro.text.similarity import l2_normalize
from repro.text.vectorizer import Vectorizer
from repro.types import QueryId, SparseVector

UpdateListener = Callable[[ResultUpdate], None]


class ShardedMonitor:
    """Hosts continuous top-k queries on parallel engine shards.

    Example::

        monitor = ShardedMonitor(n_shards=4, executor="threads")
        query = monitor.register_vector({7: 0.8, 9: 0.6}, k=10)
        monitor.process_batch(batch)
        entries = monitor.top_k(query.query_id)
    """

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        n_shards: int = 2,
        policy: Union[str, PartitionPolicy] = "hash",
        executor: Union[str, ShardExecutor] = "serial",
        vectorizer: Optional[Vectorizer] = None,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.config = config or MonitorConfig()
        self.vectorizer = vectorizer
        self._executor = make_executor(executor, n_shards)
        self._shards = self._spawn_shards(n_shards)
        self._router = QueryRouter(n_shards, make_policy(policy))
        self._listeners: List[UpdateListener] = []
        self._next_query_id = 0
        #: Stream events processed, tracked here because every shard counts
        #: each event once (see the counters module docstring).
        self._documents_processed = 0
        #: Counters of shards retired by past rebalances (kept so that
        #: :attr:`statistics` stays lossless across rebalancing).
        self._retired_counters = EventCounters()

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def _spawn_shards(self, n_shards: int):
        """Build the shard set the configured executor implies.

        In-process executors run tasks against local :class:`EngineShard`
        objects; a shard-resident executor (``"processes"``) owns the
        shards inside its workers and vends handles that mirror the
        :class:`EngineShard` surface — everything downstream drives either
        through identical calls.
        """
        if self._executor.shard_resident:
            # A pre-built executor instance carries its own worker count;
            # it must agree with the requested topology or the router and
            # the shard list would disagree about who owns which query.
            executor_shards = self._executor.n_shards  # type: ignore[attr-defined]
            if executor_shards != n_shards:
                raise ConfigurationError(
                    f"shard-resident executor is sized for {executor_shards} "
                    f"shard(s) but the monitor requested n_shards={n_shards}"
                )
            return self._executor.spawn_shards(self.config)  # type: ignore[attr-defined]
        return [EngineShard(i, self.config) for i in range(n_shards)]

    def _run_on_shards(self, method: str, *args):
        """Fan ``method(*args)`` out to every shard through the executor."""
        return self._executor.run_shards(self._shards, method, args)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> List[EngineShard]:
        """The engine shards (read-only view; do not mutate them directly)."""
        return list(self._shards)

    @property
    def router(self) -> QueryRouter:
        return self._router

    @property
    def executor(self) -> ShardExecutor:
        """The shard executor driving the fan-out (read-only view)."""
        return self._executor

    def close(self) -> None:
        """Release executor workers (a no-op for the serial executor)."""
        self._executor.close()

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Query registration (ContinuousMonitor-compatible)
    # ------------------------------------------------------------------ #

    def _take_query_id(self) -> QueryId:
        query_id = self._next_query_id
        self._next_query_id += 1
        return query_id

    def register_query(self, query: Query) -> Query:
        """Register a fully formed :class:`Query` (caller-assigned id)."""
        shard = self._router.route(query)
        self._shards[shard].register(query)
        self._next_query_id = max(self._next_query_id, query.query_id + 1)
        return query

    def register_queries(self, queries: Iterable[Query]) -> List[Query]:
        return [self.register_query(query) for query in queries]

    def register_vector(
        self, vector: SparseVector, k: Optional[int] = None, user: Optional[str] = None
    ) -> Query:
        """Register a query from a (possibly unnormalized) sparse vector."""
        query = Query(
            query_id=self._take_query_id(),
            vector=l2_normalize(vector),
            k=k or self.config.default_k,
            user=user,
        )
        return self.register_query(query)

    def register_keywords(
        self,
        keywords: Iterable[str],
        k: Optional[int] = None,
        user: Optional[str] = None,
    ) -> Query:
        """Register a query from raw keywords (requires a vectorizer)."""
        if self.vectorizer is None:
            raise ConfigurationError(
                "register_keywords requires a Vectorizer; pass one to the monitor"
            )
        vector = self.vectorizer.vectorize_keywords(keywords)
        if not vector:
            raise ConfigurationError(
                "the supplied keywords produced an empty vector (all stopwords "
                "or unknown terms)"
            )
        return self.register_vector(vector, k=k, user=user)

    def unregister(self, query_id: QueryId) -> Query:
        """Remove a continuous query from its shard."""
        shard = self._router.shard_of(query_id)
        query = self._shards[shard].unregister(query_id)
        self._router.release(query)
        return query

    @property
    def num_queries(self) -> int:
        return sum(shard.num_queries for shard in self._shards)

    # ------------------------------------------------------------------ #
    # Stream processing
    # ------------------------------------------------------------------ #

    def _dispatch_raw_updates(self) -> None:
        """Replay buffered raw updates to the facade listeners, shard by shard."""
        for shard in self._shards:
            for update in shard.drain_raw_updates():
                for listener in self._listeners:
                    listener(update)

    def process(self, document) -> List[ResultUpdate]:
        """Process one stream event on every shard; merged updates, by query id."""
        per_shard = self._run_on_shards("process", document)
        self._documents_processed += 1
        if self._listeners:
            self._dispatch_raw_updates()
        merged: List[ResultUpdate] = []
        for updates in per_shard:
            merged.extend(updates)
        merged.sort(key=lambda update: update.query_id)
        return merged

    def process_text(self, doc_id: int, text: str, arrival_time: float) -> List[ResultUpdate]:
        """Vectorize raw text and process it (requires a vectorizer)."""
        if self.vectorizer is None:
            raise ConfigurationError(
                "process_text requires a Vectorizer; pass one to the monitor"
            )
        vector = self.vectorizer.vectorize_text(text)
        if not vector:
            return []
        document = Document(
            doc_id=doc_id, vector=vector, arrival_time=arrival_time, text=text
        )
        return self.process(document)

    def process_stream(self, documents, limit: Optional[int] = None) -> List[ResultUpdate]:
        """Process a sequence (or bounded prefix) through the per-event path."""
        updates: List[ResultUpdate] = []
        for count, document in enumerate(documents):
            if limit is not None and count >= limit:
                break
            updates.extend(self.process(document))
        return updates

    def process_batch(self, documents: Sequence) -> List[BatchUpdate]:
        """Process an arrival-ordered batch on every shard in parallel.

        Returns the shards' coalesced :class:`BatchUpdate` lists merged and
        ordered by query id — at most one update per affected query, like
        the single monitor, in one deterministic order regardless of the
        executor.
        """
        docs = documents if isinstance(documents, list) else list(documents)
        per_shard = self._run_on_shards("process_batch", docs)
        self._documents_processed += len(docs)
        if self._listeners:
            self._dispatch_raw_updates()
        merged: List[BatchUpdate] = []
        for updates in per_shard:
            merged.extend(updates)
        merged.sort(key=lambda update: update.query_id)
        return merged

    def process_batches(self, batches: Iterable[Sequence]) -> List[BatchUpdate]:
        """Drain an iterable of batches through :meth:`process_batch`."""
        updates: List[BatchUpdate] = []
        for batch in batches:
            updates.extend(self.process_batch(batch))
        return updates

    def renormalize(self, new_origin: float) -> float:
        """Rebase every shard's decay origin; returns the common factor.

        All shards share one decay origin (renormalization is a pure
        function of the arrival sequence), so the rebase fans out to every
        shard and each computes the same factor.
        """
        factor = 1.0
        for shard in self._shards:
            factor = shard.renormalize(new_origin)
        return factor

    # ------------------------------------------------------------------ #
    # Results and diagnostics
    # ------------------------------------------------------------------ #

    def top_k(self, query_id: QueryId) -> List[ResultEntry]:
        """The current top-k of a query, best first."""
        return self._shards[self._router.shard_of(query_id)].top_k(query_id)

    def threshold(self, query_id: QueryId) -> float:
        return self._shards[self._router.shard_of(query_id)].threshold(query_id)

    def all_results(self) -> Dict[QueryId, List[ResultEntry]]:
        """A snapshot of every query's current result, across all shards."""
        results: Dict[QueryId, List[ResultEntry]] = {}
        for shard in self._shards:
            # One bulk call per shard — a single pipe round trip when the
            # shard lives in a worker process.
            results.update(shard.all_results())
        return results

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback invoked for every raw result update.

        Listeners run on the caller's thread after each event/batch has
        been merged — never concurrently — in shard order, with each
        query's update sequence preserved.
        """
        self._listeners.append(listener)
        for shard in self._shards:
            shard.capture_raw = True

    @property
    def statistics(self) -> EventCounters:
        """Lossless merge of per-shard counters, as one coherent view.

        Work counters sum across shards (disjoint work).  ``documents`` is
        the stream's true event count — summing it across shards would
        multiply it by the shard count, the one counter that is global to
        the monitor rather than per-partition.
        """
        merged = EventCounters.aggregate(shard.counters for shard in self._shards)
        merged.merge(self._retired_counters)
        merged.documents = self._documents_processed
        return merged

    @property
    def response_times(self) -> List[float]:
        """Per-event engine seconds, summed across shards (total work per event)."""
        per_shard = [shard.response_times for shard in self._shards]
        return [sum(samples) for samples in zip(*per_shard)]

    @property
    def batch_response_times(self) -> List[tuple]:
        """Per-batch ``(size, seconds)``, seconds summed across shards.

        Every shard processes every batch, so the batch sequences align
        index by index; summing the elapsed seconds reports the total
        engine work per batch, the same convention as
        :attr:`response_times`.
        """
        per_shard = [shard.batch_response_times for shard in self._shards]
        return [
            (samples[0][0], sum(elapsed for _, elapsed in samples))
            for samples in zip(*per_shard)
        ]

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Lossless merge of every shard's telemetry (plus runtime gauges).

        Histograms merge by exact bucket-count addition — the merged
        ``engine.*`` histograms are *the* histograms of the combined
        per-shard sample streams, the same contract
        :attr:`statistics` gives for scalar counters.  For process- or
        socket-resident shards the per-shard snapshot is one ``telemetry``
        command round trip.  Unlike counters, telemetry is a measurement
        rather than state: a rebalance retires the old shards' samples.
        """
        merged = Telemetry()
        for shard in self._shards:
            merged.merge_snapshot(shard.telemetry_snapshot())
        if "registered_queries" in merged.gauges:
            # Gauges merge by maximum (the right envelope for backlogs and
            # high-water marks), but registered_queries is additive across a
            # partition: overwrite the max-of-shards with the fleet total.
            merged.set_gauge("registered_queries", float(self.num_queries))
        gauges = getattr(self._executor, "telemetry_gauges", None)
        if gauges is not None:
            for name, value in gauges().items():
                merged.set_gauge(name, value)
        return merged.snapshot()

    def reset_statistics(self) -> None:
        """Zero all counters and timing samples (e.g. after a warm-up phase)."""
        for shard in self._shards:
            shard.reset_statistics()
        self._retired_counters.reset()
        self._documents_processed = 0

    @property
    def live_window_size(self) -> Optional[int]:
        """Number of live documents when a window horizon is configured.

        Every shard maintains an identical window (expiration is a pure
        function of the arrival sequence), so shard 0 answers for all.
        """
        return self._shards[0].live_window_size

    @property
    def last_arrival(self) -> Optional[float]:
        """Arrival time of the most recent event (``None`` before the first).

        Every shard sees every event, so shard 0's stream clock answers for
        the whole monitor.
        """
        return self._shards[0].last_arrival

    def describe(self) -> Dict[str, object]:
        return {
            "runtime": "sharded",
            "algorithm": self.config.algorithm,
            "n_shards": self.n_shards,
            "policy": self._router.policy.name,
            "executor": self._executor.name,
            # Which batch transport the executor settled on ("shm"/"pipe"
            # for the process executor, "socket" for the remote executor,
            # None for in-process executors).
            "transport": getattr(self._executor, "transport_active", None),
            "num_queries": self.num_queries,
            "shard_loads": self._router.loads(),
            "documents_processed": self._documents_processed,
            "window_horizon": self.config.window_horizon,
            # Cluster facts (None unless the executor replicates shards).
            "replication": self.replication_summary,
        }

    @property
    def replication_summary(self):
        """The remote executor's replication facts (``None`` otherwise)."""
        return getattr(self._executor, "replication_summary", None)

    def replication_health(self) -> Dict[int, Dict[str, object]]:
        """Live per-partition replication status (cluster executors only)."""
        health = getattr(self._executor, "replication_health", None)
        if health is None:
            raise ConfigurationError(
                f"executor {self._executor.name!r} does not replicate shards"
            )
        return health()

    def check_health(self) -> Dict[int, bool]:
        """Heartbeat every shard host (cluster executors only)."""
        check = getattr(self._executor, "check_health", None)
        if check is None:
            raise ConfigurationError(
                f"executor {self._executor.name!r} has no health checks"
            )
        return check()

    # ------------------------------------------------------------------ #
    # Crash-recovery adoption
    # ------------------------------------------------------------------ #

    @property
    def next_query_id(self) -> int:
        """The id the next ``register_vector``/``register_keywords`` will use."""
        return self._next_query_id

    def ensure_next_query_id(self, minimum: int) -> None:
        """Never auto-assign a query id below ``minimum`` (recovery hook)."""
        self._next_query_id = max(self._next_query_id, minimum)

    def rebuild_router(self) -> None:
        """Rebuild the routing layer from the shards' current query sets.

        Crash recovery restores each :class:`EngineShard` from its own
        checkpoint + WAL and then calls this to make the router agree with
        the recovered placement.  The policy adopts each resident query, so
        stateful policies (term affinity) accumulate exactly the placement
        state the original registration sequence built — placement state is
        a per-shard sum, independent of adoption order.
        """
        policy = self._router.policy
        self._router = QueryRouter(self.n_shards, policy)
        next_id = self._next_query_id
        for shard in self._shards:
            # Bind the dict once: for a process-resident shard the property
            # is a pipe round trip shipping the whole query set.
            queries = shard.queries
            for query_id in sorted(queries):
                self._router.adopt(queries[query_id], shard.shard_id)
                next_id = max(next_id, query_id + 1)
        self._next_query_id = next_id

    def adopt_statistics(
        self,
        documents_processed: int,
        retired_counters: Optional[EventCounters] = None,
    ) -> None:
        """Overwrite the facade-level statistics (recovery hook).

        Per-shard counters live in the engines and are restored with them;
        the stream's true event count and the counters of shards retired by
        past rebalances belong to the facade and are reinstated here.
        """
        self._documents_processed = documents_processed
        if retired_counters is not None:
            self._retired_counters = retired_counters

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #

    def rebalance(
        self,
        n_shards: Optional[int] = None,
        policy: Optional[Union[str, PartitionPolicy]] = None,
    ) -> None:
        """Repartition the registered queries onto a new shard topology.

        Captures every shard's engine state, rebuilds the shard set with
        the requested size/policy, and re-routes each query (ascending id,
        so placement is deterministic) together with its captured result
        heap, the common decay origin, stream clock and live window.
        Results, scores and thresholds are preserved bit-for-bit; the old
        shards' work counters are retired into the facade so
        :attr:`statistics` remains lossless.
        """
        new_n = n_shards if n_shards is not None else self.n_shards
        if new_n <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {new_n}")
        # One serialization path for all state movement: every shard capture
        # travels through the persistence codec, the same encoding a
        # checkpoint writes to disk — and, for process-resident shards, the
        # same bytes that cross the worker pipes (function-level import —
        # the durability facade imports this module).  Structure captures
        # (zone memo, impact lists) are rebuilt from scratch on a partial
        # restore, so their O(memo) encode is skipped.
        from repro.persistence import codec

        snapshots: List[Dict[str, object]] = [
            codec.decode_monitor_state(
                shard.snapshot_encoded(include_structures=False)
            )
            for shard in self._shards
        ]

        # Merge the captures: queries and results are disjoint unions;
        # decay, stream clock and live window are identical in every shard
        # (pure functions of the arrival sequence), so the first shard's
        # capture provides them.
        reference = snapshots[0]
        merged_engine: Dict[str, object] = {
            "decay": reference["decay"],
            "last_arrival": reference["last_arrival"],
            "results": {},
        }
        queries: List[Query] = []
        for state in snapshots:
            queries.extend(state["queries"])  # type: ignore[arg-type]
            merged_engine["results"].update(state["results"])  # type: ignore[union-attr, arg-type]
            self._retired_counters += EventCounters(
                **{
                    name: value
                    for name, value in state["counters"].items()  # type: ignore[union-attr]
                }
            )
        expiration_state = snapshots[0].get("expiration")
        queries.sort(key=lambda query: query.query_id)

        # Rebuild the shard set on the new topology.  A shard-resident
        # executor replaces its worker processes; otherwise fresh local
        # shards are built (and the thread pool resized to match).
        if self._executor.shard_resident:
            self._shards = self._executor.resize(new_n, self.config)  # type: ignore[attr-defined]
        else:
            self._shards = [EngineShard(i, self.config) for i in range(new_n)]
            if (
                isinstance(self._executor, ThreadPoolShardExecutor)
                and self._executor.max_workers != new_n
            ):
                self._executor.close()
                self._executor = make_executor(self._executor.name, new_n)
        if self._listeners:
            for shard in self._shards:
                shard.capture_raw = True
        # Reuse the existing policy instance when none is requested:
        # QueryRouter re-binds it, which resets its placement state for the
        # new topology while preserving its configuration (and custom
        # subclasses the by-name registry does not know).
        next_policy = make_policy(policy) if policy is not None else self._router.policy
        self._router = QueryRouter(new_n, next_policy)
        partitions: List[List[Query]] = [[] for _ in range(new_n)]
        for query in queries:
            partitions[self._router.route(query)].append(query)
        merged_results: Dict[QueryId, object] = merged_engine["results"]  # type: ignore[assignment]
        for shard, partition in zip(self._shards, partitions):
            # Each shard adopts its partition's slice of the merged capture,
            # cut and re-encoded through the codec (counters stay with the
            # facade — the adopt path never takes them).
            partition_state: Dict[str, object] = {
                "queries": partition,
                "results": {
                    query.query_id: merged_results[query.query_id]
                    for query in partition
                    if query.query_id in merged_results
                },
                "decay": merged_engine["decay"],
                "counters": {},
                "last_arrival": merged_engine["last_arrival"],
            }
            if expiration_state is not None:
                partition_state["expiration"] = expiration_state
            shard.adopt_encoded(codec.encode_monitor_state(partition_state))
