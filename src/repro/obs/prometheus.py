"""Prometheus text-format rendering of a telemetry snapshot.

Renders the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ from a
:meth:`~repro.obs.telemetry.Telemetry.snapshot` dict — no client library,
no dependency: the format is lines of ``name{labels} value``.  Histograms
become native Prometheus histograms (cumulative ``_bucket{le=...}`` series
plus ``_sum``/``_count``) so ``histogram_quantile()`` works server-side,
and additionally convenience ``_p50``/``_p95``/``_p99`` gauges for reading
tails straight off a ``curl``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.histogram import BUCKET_BOUNDARIES, LatencyHistogram

_QUANTILE_GAUGES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0))


def _metric_name(name: str, prefix: str) -> str:
    sanitized = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_histogram(
    lines: List[str], metric: str, encoded: Dict[str, object]
) -> None:
    histogram = LatencyHistogram.from_snapshot(encoded)
    lines.append(f"# TYPE {metric}_seconds histogram")
    cumulative = 0
    last_nonzero = max(histogram.bucket_counts(), default=-1)
    counts = [histogram.bucket_counts().get(i, 0) for i in range(last_nonzero + 1)]
    for index, count in enumerate(counts):
        cumulative += count
        if count == 0 and index != last_nonzero:
            continue
        upper = (
            _format_value(BUCKET_BOUNDARIES[index])
            if index < len(BUCKET_BOUNDARIES)
            else "+Inf"
        )
        lines.append(
            f'{metric}_seconds_bucket{{le="{upper}"}} {cumulative}'
        )
    lines.append(f'{metric}_seconds_bucket{{le="+Inf"}} {histogram.count}')
    lines.append(f"{metric}_seconds_sum {_format_value(histogram.total)}")
    lines.append(f"{metric}_seconds_count {histogram.count}")
    for suffix, q in _QUANTILE_GAUGES:
        lines.append(f"# TYPE {metric}_{suffix}_seconds gauge")
        lines.append(
            f"{metric}_{suffix}_seconds "
            f"{_format_value(histogram.percentile(q))}"
        )


def render_prometheus(
    snapshot: Dict[str, object],
    prefix: str = "repro",
    service_counters: Optional[Dict[str, object]] = None,
) -> str:
    """Render one telemetry snapshot (plus optional service counters).

    ``service_counters`` takes a
    :meth:`~repro.metrics.counters.ServiceCounters.snapshot` dict; its
    integer fields become counters, and dict-valued fields (the per-replica
    LSN map) become labeled gauges.
    """
    lines: List[str] = []
    for name, encoded in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
        _render_histogram(lines, _metric_name(name, prefix), encoded)
    for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in (service_counters or {}).items():
        metric = _metric_name(f"service.{name}", prefix)
        if isinstance(value, dict):
            lines.append(f"# TYPE {metric} gauge")
            for key, entry in sorted(value.items()):
                lines.append(
                    f'{metric}{{key="{key}"}} {_format_value(entry)}'
                )
        else:
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(value)}")
    return "\n".join(lines) + "\n"
