"""The telemetry registry: named histograms, counters and gauges.

A :class:`Telemetry` instance is the unit of collection: every layer that
records latencies (the engine's lap recording, the WAL's flush/fsync path,
a shard host's replication waits, the server's pipeline stages) observes
into one registry, and registries compose losslessly — a snapshot is a
JSON-safe dict, and :meth:`Telemetry.merge_snapshot` folds a worker's or
remote host's snapshot into the router's view by exact histogram merge and
counter addition (gauges take the maximum, the operationally interesting
envelope).

**The disabled path costs nothing.**  :data:`NULL_TELEMETRY` is a shared
no-op recorder whose ``enabled`` flag is ``False``; hot paths guard their
``time.perf_counter()`` pairs behind ``if telemetry.enabled`` so a monitor
built without telemetry pays one attribute read per lap, nothing more.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, Iterator, Optional

from repro.obs.histogram import LatencyHistogram


class Telemetry:
    """One mergeable registry of histograms, counters and gauges."""

    enabled = True

    __slots__ = ("histograms", "counters", "gauges")

    def __init__(self) -> None:
        self.histograms: Dict[str, LatencyHistogram] = {}
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def histogram(self, name: str) -> LatencyHistogram:
        """The named histogram, created on first use."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LatencyHistogram()
        return histogram

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LatencyHistogram()
        histogram.record(seconds)

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager observing the body's wall time (cold paths)."""
        started = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - started)

    def reset(self) -> None:
        self.histograms.clear()
        self.counters.clear()
        self.gauges.clear()

    # ------------------------------------------------------------------ #
    # Snapshots and lossless merging
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """The JSON-safe wire dict workers answer ``telemetry`` with."""
        return {
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.histograms.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def restore(self, snapshot: Dict[str, object]) -> "Telemetry":
        """Overwrite this registry from a :meth:`snapshot` dict."""
        self.reset()
        self.merge_snapshot(snapshot)
        return self

    def merge_snapshot(self, snapshot: Optional[Dict[str, object]]) -> "Telemetry":
        """Fold a snapshot in: histograms merge exactly, counters add,
        gauges keep the maximum seen."""
        if not snapshot:
            return self
        for name, encoded in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            self.histogram(name).merge(LatencyHistogram.from_snapshot(encoded))
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            self.incr(name, int(value))
        for name, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = value
        return self

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "Telemetry":
        return cls().restore(snapshot)

    @classmethod
    def merge_snapshots(
        cls, snapshots: Iterable[Optional[Dict[str, object]]]
    ) -> Dict[str, object]:
        """Merge many snapshots into one (the router's collection step)."""
        merged = cls()
        for snapshot in snapshots:
            merged.merge_snapshot(snapshot)
        return merged.snapshot()

    def summary(self, name: str) -> Dict[str, float]:
        """Headline percentiles of one histogram (empty one if absent)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = LatencyHistogram()
        return histogram.summary()


class NullTelemetry(Telemetry):
    """The no-op recorder hot paths hold when telemetry is disabled.

    Shares the :class:`Telemetry` surface so call sites never branch on
    type — but every recording method does nothing and ``snapshot()`` is
    empty, so a disabled engine contributes nothing to a merge.
    """

    enabled = False

    __slots__ = ()

    def observe(self, name: str, seconds: float) -> None:
        pass

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}


#: The process-wide shared no-op recorder (never record into this).
NULL_TELEMETRY = NullTelemetry()
