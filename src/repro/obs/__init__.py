"""Observability: mergeable latency histograms and telemetry registries.

The package is numpy-free on purpose — telemetry must be recordable inside
procpool workers and remote shard hosts whose only other dependency is the
standard library, and mergeable across them without loss (the histogram's
fixed bucket geometry makes a merge an exact bucket-count addition, the
same discipline as :meth:`~repro.metrics.counters.EventCounters.merge`).
"""

from repro.obs.histogram import (
    BUCKET_BOUNDARIES,
    GEOMETRY_VERSION,
    LatencyHistogram,
    bucket_index,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry

__all__ = [
    "BUCKET_BOUNDARIES",
    "GEOMETRY_VERSION",
    "LatencyHistogram",
    "bucket_index",
    "render_prometheus",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
]
