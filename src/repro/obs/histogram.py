"""A numpy-free, log-bucketed, exactly-mergeable latency histogram.

Every :class:`LatencyHistogram` in the process tree shares one **fixed
bucket geometry**: bucket boundaries at ``100ns * 2**(i / 4)`` — four
buckets per octave, ~19% relative resolution — spanning 100 nanoseconds to
about two and a half hours, plus an underflow and an overflow bucket.
Because the geometry is a module constant rather than per-instance state,
merging two histograms is an exact element-wise addition of bucket counts:
no interpolation, no resampling, no loss.  Merging the per-shard histograms
of a sharded run therefore yields *the* histogram of the combined sample
stream, the same contract :meth:`~repro.metrics.counters.EventCounters.merge`
gives for scalar counters.

The wire shape (:meth:`LatencyHistogram.snapshot`) is a plain JSON-safe
dict with sparse bucket counts, round-trippable byte-identically through
the persistence codec's canonical dumps — which is what lets procpool
workers and remote shard hosts ship their histograms over the existing
command surfaces.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

#: Bumped if the bucket geometry ever changes; snapshots carry it so a
#: merge across incompatible geometries fails loudly instead of silently
#: mixing buckets.
GEOMETRY_VERSION = 1

#: Upper boundary of bucket 0 (the underflow bucket): 100 nanoseconds.
MIN_LATENCY_SECONDS = 1e-7

#: Buckets per factor-of-two of latency; 4 gives ~19% relative error.
BUCKETS_PER_OCTAVE = 4

#: Interior boundaries.  147 of them span 100ns .. ~9.2e3s; with the
#: underflow and overflow buckets the histogram has 148 buckets total.
_NUM_BOUNDARIES = 147

#: ``BUCKET_BOUNDARIES[i]`` is the *lower* edge of bucket ``i + 1`` and
#: the (exclusive) upper edge of bucket ``i``: bucket ``i + 1`` covers the
#: half-open range ``[BUCKET_BOUNDARIES[i], BUCKET_BOUNDARIES[i + 1])``.
BUCKET_BOUNDARIES: Tuple[float, ...] = tuple(
    MIN_LATENCY_SECONDS * 2.0 ** (i / BUCKETS_PER_OCTAVE)
    for i in range(_NUM_BOUNDARIES)
)

#: Total bucket count: underflow + one per boundary gap + overflow.
NUM_BUCKETS = _NUM_BOUNDARIES + 1


def bucket_index(seconds: float) -> int:
    """The bucket a value lands in (half-open buckets, ``[lo, hi)``).

    A value exactly on a boundary belongs to the bucket whose *lower*
    edge it is — the exactness the boundary tests pin down.
    """
    return bisect_right(BUCKET_BOUNDARIES, seconds)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``(lower, upper)`` edges of a bucket; infinities at the extremes."""
    lower = BUCKET_BOUNDARIES[index - 1] if index > 0 else float("-inf")
    upper = (
        BUCKET_BOUNDARIES[index] if index < _NUM_BOUNDARIES else float("inf")
    )
    return lower, upper


class LatencyHistogram:
    """Latency samples bucketed on the shared log geometry.

    Tracks the exact sample count, sum, minimum and maximum alongside the
    bucket counts, so means stay exact and percentile estimates can be
    clamped to the observed range.
    """

    __slots__ = ("_counts", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self._counts: List[int] = [0] * NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Recording and merging
    # ------------------------------------------------------------------ #

    def record(self, seconds: float) -> None:
        """Record one latency sample (negative values clamp to underflow)."""
        self._counts[bisect_right(BUCKET_BOUNDARIES, seconds)] += 1
        self.count += 1
        self.total += seconds
        if self.minimum is None or seconds < self.minimum:
            self.minimum = seconds
        if self.maximum is None or seconds > self.maximum:
            self.maximum = seconds

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram in: exact bucket-count addition."""
        counts = self._counts
        for index, value in enumerate(other._counts):
            if value:
                counts[index] += value
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            if self.minimum is None or other.minimum < self.minimum:
                self.minimum = other.minimum
        if other.maximum is not None:
            if self.maximum is None or other.maximum > self.maximum:
                self.maximum = other.maximum
        return self

    __iadd__ = merge

    @classmethod
    def aggregate(cls, histograms: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """A fresh histogram holding the union of the given samples."""
        merged = cls()
        for histogram in histograms:
            merged.merge(histogram)
        return merged

    def reset(self) -> None:
        self._counts = [0] * NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> Dict[int, int]:
        """Sparse ``{bucket index: count}`` of the non-empty buckets."""
        return {
            index: value for index, value in enumerate(self._counts) if value
        }

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile, estimated as its bucket's upper edge.

        Bucket resolution bounds the overestimate at ~19% relative; the
        overflow bucket answers with the observed maximum, and the result
        is clamped to the observed ``[minimum, maximum]`` range.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, min(self.count, math.ceil(q / 100.0 * self.count)))
        seen = 0
        for index, value in enumerate(self._counts):
            seen += value
            if seen >= rank:
                if index >= _NUM_BOUNDARIES:
                    break  # overflow: only the observed maximum is known
                upper = BUCKET_BOUNDARIES[index]
                if self.maximum is not None:
                    upper = min(upper, self.maximum)
                if self.minimum is not None:
                    upper = max(upper, self.minimum)
                return upper
        return self.maximum if self.maximum is not None else 0.0

    def summary(self) -> Dict[str, float]:
        """The headline numbers in milliseconds (for stats payloads)."""
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50.0) * 1e3,
            "p95_ms": self.percentile(95.0) * 1e3,
            "p99_ms": self.percentile(99.0) * 1e3,
            "max_ms": (self.maximum or 0.0) * 1e3,
        }

    # ------------------------------------------------------------------ #
    # Wire shape
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe wire dict; byte-identical through canonical dumps."""
        return {
            "v": GEOMETRY_VERSION,
            "n": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "b": {
                str(index): value
                for index, value in enumerate(self._counts)
                if value
            },
        }

    def restore(self, snapshot: Dict[str, object]) -> "LatencyHistogram":
        """Overwrite this histogram from a :meth:`snapshot` dict."""
        version = snapshot.get("v")
        if version != GEOMETRY_VERSION:
            raise ValueError(
                f"histogram snapshot has geometry version {version!r}; "
                f"this build speaks version {GEOMETRY_VERSION}"
            )
        self.reset()
        for key, value in snapshot.get("b", {}).items():  # type: ignore[union-attr]
            self._counts[int(key)] = int(value)
        self.count = int(snapshot.get("n", 0))  # type: ignore[arg-type]
        self.total = float(snapshot.get("sum", 0.0))  # type: ignore[arg-type]
        minimum = snapshot.get("min")
        maximum = snapshot.get("max")
        self.minimum = None if minimum is None else float(minimum)  # type: ignore[arg-type]
        self.maximum = None if maximum is None else float(maximum)  # type: ignore[arg-type]
        return self

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "LatencyHistogram":
        return cls().restore(snapshot)

    @classmethod
    def merge_snapshot_dicts(
        cls, left: Dict[str, object], right: Dict[str, object]
    ) -> Dict[str, object]:
        """Merge two wire dicts without materializing histograms."""
        merged = cls.from_snapshot(left)
        merged.merge(cls.from_snapshot(right))
        return merged.snapshot()

    # ------------------------------------------------------------------ #
    # Equality (differential tests compare merged vs single histograms)
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self._counts == other._counts
            and self.count == other.count
            and self.minimum == other.minimum
            and self.maximum == other.maximum
            and math.isclose(
                self.total, other.total, rel_tol=1e-9, abs_tol=1e-12
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.6f}s, "
            f"min={self.minimum}, max={self.maximum})"
        )
