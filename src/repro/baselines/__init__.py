"""Competitor algorithms re-implemented from their published descriptions.

* :class:`ExhaustiveAlgorithm` — scans every (matching) query per event;
  the correctness oracle of the test-suite.
* :class:`RTAAlgorithm` — Haghani et al., CIKM 2010: impact-ordered per-term
  query lists traversed threshold-algorithm style.
* :class:`SortQuerAlgorithm` — Vouzoukidou et al., CIKM 2012: per-term query
  lists ordered by result threshold, scanned until unreachable.
* :class:`TPSAlgorithm` — Shraer et al., PVLDB 2013: term-at-a-time top-k
  publish/subscribe with accumulator skipping.

The originals are closed source; DESIGN.md §3.4 documents how each
re-implementation preserves its paradigm while remaining provably correct.
"""

from repro.baselines.exhaustive import ExhaustiveAlgorithm
from repro.baselines.rta import RTAAlgorithm
from repro.baselines.sortquer import SortQuerAlgorithm
from repro.baselines.tps import TPSAlgorithm

__all__ = [
    "ExhaustiveAlgorithm",
    "RTAAlgorithm",
    "SortQuerAlgorithm",
    "TPSAlgorithm",
]
