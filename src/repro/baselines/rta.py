"""RTA baseline (after Haghani, Michel, Aberer — CIKM 2010).

RTA represents the *impact-ordered* indexing paradigm the paper's RIO/MRIO
abandon: per term, the registered queries are kept in descending order of
their normalized preference ``w / S_k(q)``, and an arriving document is
processed with threshold-algorithm (TA) style sorted access over the lists of
its terms.  Every newly encountered query is fully evaluated; traversal stops
as soon as the accumulated threshold proves that no unseen query can admit
the document.

Because ``S_k`` changes as results update, the impact order degrades over
time; the implementation keeps *stored* ratio snapshots (always upper bounds
of the true ratios, which preserves correctness) and re-sorts a list once the
number of stale entries crosses a fraction of its length — the maintenance
cost inherent to this paradigm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.base import StreamAlgorithm
from repro.core.bounds import preference_ratio
from repro.core.registry import register_algorithm
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.queries.query import Query
from repro.types import QueryId, TermId


class _ImpactList:
    """One per-term list of ``[stored_ratio, query_id, weight]`` entries.

    Maintenance (re-sorting, ratio refreshes) is *deferred*: threshold
    changes triggered while a document is being processed only set flags,
    and :meth:`ensure_ready` applies them before the next document touches
    the list.  Re-sorting a list while cursors are walking it would skip
    entries and break correctness.
    """

    __slots__ = ("entries", "by_query", "stale", "needs_sort", "needs_refresh")

    def __init__(self) -> None:
        self.entries: List[List[float]] = []
        self.by_query: Dict[QueryId, List[float]] = {}
        self.stale = 0
        self.needs_sort = False
        self.needs_refresh = False

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, query_id: QueryId, weight: float, ratio: float) -> None:
        entry = [ratio, float(query_id), weight]
        self.entries.append(entry)
        self.by_query[query_id] = entry
        self.needs_sort = True

    def remove(self, query_id: QueryId) -> None:
        entry = self.by_query.pop(query_id, None)
        if entry is None:
            return
        self.entries.remove(entry)

    def resort(self) -> None:
        self.entries.sort(key=lambda entry: entry[0], reverse=True)
        self.needs_sort = False
        self.stale = 0

    def refresh(self, ratio_of) -> None:
        """Recompute every stored ratio and re-sort (periodic maintenance)."""
        for entry in self.entries:
            entry[0] = ratio_of(int(entry[1]), entry[2])
        self.needs_refresh = False
        self.resort()

    def ensure_ready(self, ratio_of) -> None:
        """Apply deferred maintenance before the list is traversed."""
        if self.needs_refresh:
            self.refresh(ratio_of)
        elif self.needs_sort:
            self.resort()


@register_algorithm("rta")
class RTAAlgorithm(StreamAlgorithm):
    """TA-style traversal of impact-ordered per-term query lists."""

    name = "rta"

    def __init__(
        self,
        decay: Optional[ExponentialDecay] = None,
        stale_fraction: float = 0.125,
        min_stale: int = 16,
    ) -> None:
        super().__init__(decay)
        self.stale_fraction = stale_fraction
        self.min_stale = min_stale
        self._lists: Dict[TermId, _ImpactList] = {}

    # ------------------------------------------------------------------ #
    # Structures
    # ------------------------------------------------------------------ #

    def _ratio(self, query_id: QueryId, weight: float) -> float:
        return preference_ratio(weight, self.results.threshold(query_id))

    def _register_structures(self, query: Query) -> None:
        for term_id, weight in query.vector.items():
            impact_list = self._lists.setdefault(term_id, _ImpactList())
            impact_list.add(query.query_id, weight, self._ratio(query.query_id, weight))

    def _unregister_structures(self, query: Query) -> None:
        for term_id in query.vector:
            impact_list = self._lists.get(term_id)
            if impact_list is None:
                continue
            impact_list.remove(query.query_id)
            if not impact_list.entries:
                del self._lists[term_id]

    def _on_threshold_change(self, query: Query) -> None:
        for term_id, weight in query.vector.items():
            impact_list = self._lists.get(term_id)
            if impact_list is None:
                continue
            entry = impact_list.by_query.get(query.query_id)
            if entry is None:
                continue
            new_ratio = self._ratio(query.query_id, weight)
            if new_ratio > entry[0]:
                # Threshold decreased (expiration): raise the stored ratio so
                # it stays an upper bound, and restore the sort order.
                entry[0] = new_ratio
                impact_list.needs_sort = True
            else:
                impact_list.stale += 1
                limit = max(self.min_stale, int(self.stale_fraction * len(impact_list)))
                if impact_list.stale >= limit:
                    # Defer the refresh: re-sorting a list that is currently
                    # being traversed would corrupt the cursor positions.
                    impact_list.needs_refresh = True

    def _on_renormalize(self, factor: float) -> None:
        # Thresholds shrank by ``factor``; true ratios grew by the same
        # factor, so stored ratios must grow too to remain upper bounds.
        for impact_list in self._lists.values():
            for entry in impact_list.entries:
                entry[0] *= factor

    def _snapshot_structures(self) -> Optional[Dict[str, object]]:
        # Impact lists accumulate history: stored ratios lag the true ratios
        # until maintenance refreshes them, and the stale counters decide
        # *when* that happens.  Rebuilding the lists fresh on restore would
        # be correct but would traverse differently from the captured
        # engine; capturing them verbatim keeps recovery replay-exact.
        return {
            "lists": [
                [
                    term_id,
                    {
                        "entries": [
                            [self._pack_float(entry[0]), entry[1], entry[2]]
                            for entry in impact_list.entries
                        ],
                        "stale": impact_list.stale,
                        "needs_sort": impact_list.needs_sort,
                        "needs_refresh": impact_list.needs_refresh,
                    },
                ]
                for term_id, impact_list in sorted(self._lists.items())
            ]
        }

    def _restore_structures(self, structures: Optional[Dict[str, object]] = None) -> None:
        if structures is None:
            # Partial restore (e.g. shard rebalancing): registration already
            # rebuilt fresh lists; fall back to the generic refresh.
            super()._restore_structures(None)
            return
        self._lists = {}
        for term_id, captured in structures["lists"]:  # type: ignore[union-attr]
            impact_list = _ImpactList()
            for ratio, query_id, weight in captured["entries"]:
                entry = [self._unpack_float(ratio), float(query_id), float(weight)]
                impact_list.entries.append(entry)
                impact_list.by_query[int(query_id)] = entry
            impact_list.stale = int(captured["stale"])
            impact_list.needs_sort = bool(captured["needs_sort"])
            impact_list.needs_refresh = bool(captured["needs_refresh"])
            self._lists[term_id] = impact_list

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #

    def _process_document(
        self, document: Document, amplification: float
    ) -> List[ResultUpdate]:
        # One traversal implementation: the per-event path is the batched
        # walk over a single document.
        return self._process_batch_documents([document], [amplification])

    def _process_batch_documents(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        """TA traversal shared by both ingestion paths (lookups hoisted,
        scratch sets reused across documents).

        ``ensure_ready`` runs on each list's first touch to apply flags
        pending from *before* the batch.  It cannot fire mid-batch: inside
        ``process_batch`` threshold propagation is deferred to the batch
        boundary, so no new maintenance flags are raised while the batch's
        documents traverse the lists.
        """
        updates: List[ResultUpdate] = []
        lists = self._lists
        counters = self.counters
        queries_get = self.queries.get
        offer = self.offer
        ratio_of = self._ratio
        exact_score = self.exact_score
        involved: List[tuple] = []
        seen: Set[QueryId] = set()
        for document, amplification in zip(documents, amplifications):
            involved.clear()
            for term_id, doc_weight in document.vector.items():
                impact_list = lists.get(term_id)
                if impact_list is not None and impact_list.entries:
                    impact_list.ensure_ready(ratio_of)
                    involved.append((doc_weight, impact_list))
            if not involved:
                continue

            cursors = [0] * len(involved)
            seen.clear()
            doc_id = document.doc_id
            while True:
                threshold_sum = 0.0
                best_index = -1
                best_contribution = -1.0
                for idx, (doc_weight, impact_list) in enumerate(involved):
                    pos = cursors[idx]
                    if pos >= len(impact_list.entries):
                        continue
                    contribution = doc_weight * impact_list.entries[pos][0]
                    threshold_sum += contribution
                    if contribution > best_contribution:
                        best_contribution = contribution
                        best_index = idx
                if best_index < 0:
                    break
                if not threshold_sum * amplification >= 1.0:
                    break

                counters.iterations += 1
                doc_weight, impact_list = involved[best_index]
                entry = impact_list.entries[cursors[best_index]]
                cursors[best_index] += 1
                counters.postings_scanned += 1
                query_id = int(entry[1])
                if query_id in seen:
                    continue
                seen.add(query_id)
                query = queries_get(query_id)
                if query is None:
                    continue
                score = exact_score(query, document, amplification)
                counters.full_evaluations += 1
                update = offer(query_id, doc_id, score)
                if update is not None:
                    updates.append(update)
        return updates
