"""Exhaustive per-event evaluation — the correctness oracle.

Two modes exist:

* ``matching_only=True`` (default): only queries sharing at least one term
  with the arriving document are scored (queries with zero similarity can
  never enter a top-k, so this is exact);
* ``matching_only=False``: every registered query is scored — the most
  literal interpretation of "recompute everything", useful to sanity-check
  the matching-only shortcut itself.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.core.base import StreamAlgorithm
from repro.core.registry import register_algorithm
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.queries.query import Query
from repro.types import QueryId, TermId


@register_algorithm("exhaustive")
class ExhaustiveAlgorithm(StreamAlgorithm):
    """Scores the arriving document against all (matching) queries."""

    name = "exhaustive"

    def __init__(self, decay: ExponentialDecay | None = None, matching_only: bool = True):
        super().__init__(decay)
        self.matching_only = matching_only
        self._term_to_queries: Dict[TermId, Set[QueryId]] = {}

    # ------------------------------------------------------------------ #
    # Structures
    # ------------------------------------------------------------------ #

    def _register_structures(self, query: Query) -> None:
        for term_id in query.vector:
            self._term_to_queries.setdefault(term_id, set()).add(query.query_id)

    def _unregister_structures(self, query: Query) -> None:
        for term_id in query.vector:
            members = self._term_to_queries.get(term_id)
            if members is None:
                continue
            members.discard(query.query_id)
            if not members:
                del self._term_to_queries[term_id]

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #

    def _candidates(self, document: Document) -> Set[QueryId]:
        """Queries sharing a term with ``document`` (all queries when
        ``matching_only`` is off)."""
        if not self.matching_only:
            return set(self.queries)
        candidates: Set[QueryId] = set()
        for term_id in document.vector:
            members = self._term_to_queries.get(term_id)
            if members:
                candidates.update(members)
        return candidates

    def _process_document(
        self, document: Document, amplification: float
    ) -> List[ResultUpdate]:
        # One traversal implementation: the per-event path is the batched
        # walk over a single document.
        return self._process_batch_documents([document], [amplification])

    def _process_batch_documents(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        """Scoring walk shared by both ingestion paths.

        The candidate set is reused (cleared, not reallocated) and the
        similarity accumulation runs on local bindings, which matters when
        every document visits hundreds of candidate queries.
        """
        updates: List[ResultUpdate] = []
        term_to_queries = self._term_to_queries
        queries = self.queries
        counters = self.counters
        offer = self.offer
        matching_only = self.matching_only
        candidates: Set[QueryId] = set()
        for document, amplification in zip(documents, amplifications):
            candidates.clear()
            if matching_only:
                for term_id in document.vector:
                    members = term_to_queries.get(term_id)
                    if members:
                        candidates.update(members)
            else:
                candidates.update(queries)
            doc_id = document.doc_id
            doc_vector = document.vector
            doc_get = doc_vector.get
            for query_id in candidates:
                query_vector = queries[query_id].vector
                similarity = 0.0
                if len(query_vector) > len(doc_vector):
                    query_get = query_vector.get
                    for term_id, doc_weight in doc_vector.items():
                        other = query_get(term_id)
                        if other is not None:
                            similarity += doc_weight * other
                else:
                    for term_id, query_weight in query_vector.items():
                        other = doc_get(term_id)
                        if other is not None:
                            similarity += query_weight * other
                counters.full_evaluations += 1
                counters.postings_scanned += len(query_vector)
                if similarity <= 0.0:
                    continue
                update = offer(query_id, doc_id, similarity * amplification)
                if update is not None:
                    updates.append(update)
            counters.iterations += 1
        return updates
