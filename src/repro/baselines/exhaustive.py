"""Exhaustive per-event evaluation — the correctness oracle.

Two modes exist:

* ``matching_only=True`` (default): only queries sharing at least one term
  with the arriving document are scored (queries with zero similarity can
  never enter a top-k, so this is exact);
* ``matching_only=False``: every registered query is scored — the most
  literal interpretation of "recompute everything", useful to sanity-check
  the matching-only shortcut itself.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.base import StreamAlgorithm
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.queries.query import Query
from repro.types import QueryId, TermId


class ExhaustiveAlgorithm(StreamAlgorithm):
    """Scores the arriving document against all (matching) queries."""

    name = "exhaustive"

    def __init__(self, decay: ExponentialDecay | None = None, matching_only: bool = True):
        super().__init__(decay)
        self.matching_only = matching_only
        self._term_to_queries: Dict[TermId, Set[QueryId]] = {}

    # ------------------------------------------------------------------ #
    # Structures
    # ------------------------------------------------------------------ #

    def _register_structures(self, query: Query) -> None:
        for term_id in query.vector:
            self._term_to_queries.setdefault(term_id, set()).add(query.query_id)

    def _unregister_structures(self, query: Query) -> None:
        for term_id in query.vector:
            members = self._term_to_queries.get(term_id)
            if members is None:
                continue
            members.discard(query.query_id)
            if not members:
                del self._term_to_queries[term_id]

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #

    def _candidates(self, document: Document) -> Set[QueryId]:
        if not self.matching_only:
            return set(self.queries)
        candidates: Set[QueryId] = set()
        for term_id in document.vector:
            members = self._term_to_queries.get(term_id)
            if members:
                candidates.update(members)
        return candidates

    def _process_document(
        self, document: Document, amplification: float
    ) -> List[ResultUpdate]:
        updates: List[ResultUpdate] = []
        for query_id in self._candidates(document):
            query = self.queries[query_id]
            score = self.exact_score(query, document, amplification)
            self.counters.full_evaluations += 1
            self.counters.postings_scanned += len(query.vector)
            if score <= 0.0:
                continue
            update = self.offer(query_id, document.doc_id, score)
            if update is not None:
                updates.append(update)
        self.counters.iterations += 1
        return updates
