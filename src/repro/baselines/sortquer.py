"""SortQuer baseline (after Vouzoukidou, Amann, Christophides — CIKM 2012).

SortQuer keeps, per term, the registered queries ordered by how hard they are
to affect: ascending by their current result threshold ``S_k(q)``.  For an
arriving document, each of its term lists is scanned from the easiest query
onwards and the scan stops at the first query whose (stored) threshold
exceeds an upper bound on any score the document could achieve — every later
entry needs an even higher score, so none of them can be affected either.

Stored thresholds are snapshots taken at (re)sort time.  They can only lag
*below* the true thresholds (``S_k`` normally never decreases), which keeps
the stop rule sound; periodic refreshes re-sort with current values to keep
the scans short.  The exception — expiration lowering a threshold — is
handled in :meth:`_on_threshold_change`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.base import StreamAlgorithm
from repro.core.registry import register_algorithm
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.queries.query import Query
from repro.types import QueryId, TermId


class _ThresholdList:
    """One per-term list of ``[stored_threshold, query_id]`` entries.

    Maintenance is deferred exactly like in the RTA lists: threshold changes
    during document processing only raise flags, and :meth:`ensure_ready`
    applies them before the next traversal, so a scan never iterates a list
    that is being re-sorted underneath it.
    """

    __slots__ = ("entries", "by_query", "stale", "needs_sort", "needs_refresh")

    def __init__(self) -> None:
        self.entries: List[List[float]] = []
        self.by_query: Dict[QueryId, List[float]] = {}
        self.stale = 0
        self.needs_sort = False
        self.needs_refresh = False

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, query_id: QueryId, threshold: float) -> None:
        entry = [threshold, float(query_id)]
        self.entries.append(entry)
        self.by_query[query_id] = entry
        self.needs_sort = True

    def remove(self, query_id: QueryId) -> None:
        entry = self.by_query.pop(query_id, None)
        if entry is None:
            return
        self.entries.remove(entry)

    def resort(self) -> None:
        self.entries.sort(key=lambda entry: entry[0])
        self.needs_sort = False
        self.stale = 0

    def refresh(self, threshold_of) -> None:
        for entry in self.entries:
            entry[0] = threshold_of(int(entry[1]))
        self.needs_refresh = False
        self.resort()

    def ensure_ready(self, threshold_of) -> None:
        """Apply deferred maintenance before the list is traversed."""
        if self.needs_refresh:
            self.refresh(threshold_of)
        elif self.needs_sort:
            self.resort()


@register_algorithm("sortquer")
class SortQuerAlgorithm(StreamAlgorithm):
    """Threshold-ordered per-term query lists with unreachable-cutoff scans."""

    name = "sortquer"

    def __init__(
        self,
        decay: Optional[ExponentialDecay] = None,
        stale_fraction: float = 0.125,
        min_stale: int = 16,
    ) -> None:
        super().__init__(decay)
        self.stale_fraction = stale_fraction
        self.min_stale = min_stale
        self._lists: Dict[TermId, _ThresholdList] = {}

    # ------------------------------------------------------------------ #
    # Structures
    # ------------------------------------------------------------------ #

    def _register_structures(self, query: Query) -> None:
        threshold = self.results.threshold(query.query_id)
        for term_id in query.vector:
            threshold_list = self._lists.setdefault(term_id, _ThresholdList())
            threshold_list.add(query.query_id, threshold)

    def _unregister_structures(self, query: Query) -> None:
        for term_id in query.vector:
            threshold_list = self._lists.get(term_id)
            if threshold_list is None:
                continue
            threshold_list.remove(query.query_id)
            if not threshold_list.entries:
                del self._lists[term_id]

    def _on_threshold_change(self, query: Query) -> None:
        current = self.results.threshold(query.query_id)
        for term_id in query.vector:
            threshold_list = self._lists.get(term_id)
            if threshold_list is None:
                continue
            entry = threshold_list.by_query.get(query.query_id)
            if entry is None:
                continue
            if current < entry[0]:
                # Expiration lowered the threshold: the stored value must
                # follow it down (stored values may never exceed the truth).
                entry[0] = current
                threshold_list.needs_sort = True
            else:
                threshold_list.stale += 1
                limit = max(self.min_stale, int(self.stale_fraction * len(threshold_list)))
                if threshold_list.stale >= limit:
                    # Defer the refresh: re-sorting a list mid-traversal
                    # would corrupt the scan in progress.
                    threshold_list.needs_refresh = True

    def _on_renormalize(self, factor: float) -> None:
        # True thresholds were divided by ``factor``; stored snapshots follow
        # so they remain lower bounds (order is preserved by uniform scaling).
        for threshold_list in self._lists.values():
            for entry in threshold_list.entries:
                entry[0] /= factor

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #

    def _process_document(
        self, document: Document, amplification: float
    ) -> List[ResultUpdate]:
        # One traversal implementation: the per-event path is the batched
        # walk over a single document.
        return self._process_batch_documents([document], [amplification])

    def _process_batch_documents(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        """Threshold-ordered scans shared by both ingestion paths (lookups
        hoisted, scratch sets reused across documents).

        ``ensure_ready`` runs on each list's first touch to apply flags
        pending from *before* the batch; inside ``process_batch`` threshold
        propagation is deferred to the batch boundary, so no new flags are
        raised mid-batch.
        """
        updates: List[ResultUpdate] = []
        lists = self._lists
        counters = self.counters
        queries_get = self.queries.get
        offer = self.offer
        threshold_of = self.results.threshold
        exact_score = self.exact_score
        involved: List[_ThresholdList] = []
        seen: Set[QueryId] = set()
        for document, amplification in zip(documents, amplifications):
            involved.clear()
            reachable_sum = 0.0
            for term_id, doc_weight in document.vector.items():
                threshold_list = lists.get(term_id)
                if threshold_list is not None and threshold_list.entries:
                    threshold_list.ensure_ready(threshold_of)
                    involved.append(threshold_list)
                    reachable_sum += doc_weight
            if not involved:
                continue
            # No query keyword weight exceeds 1 (vectors are normalized), so
            # no query can score above ``amplification * reachable_sum``.
            score_cap = amplification * reachable_sum

            seen.clear()
            doc_id = document.doc_id
            for threshold_list in involved:
                counters.iterations += 1
                for entry in threshold_list.entries:
                    if entry[0] >= score_cap:
                        break
                    counters.postings_scanned += 1
                    query_id = int(entry[1])
                    if query_id in seen:
                        continue
                    seen.add(query_id)
                    query = queries_get(query_id)
                    if query is None:
                        continue
                    score = exact_score(query, document, amplification)
                    counters.full_evaluations += 1
                    update = offer(query_id, doc_id, score)
                    if update is not None:
                        updates.append(update)
        return updates
