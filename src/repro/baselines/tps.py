"""TPS baseline (after Shraer, Gurevich, Fontoura, Josifovski — PVLDB 2013).

Top-k publish/subscribe evaluates an arriving document ("publication")
against the subscriptions term-at-a-time: per term, the subscribed queries
are kept in descending weight order, the document's terms are processed in
decreasing order of their maximum possible contribution, and per-query score
accumulators are built up.  A query first encountered late in the traversal
is skipped outright when even its remaining upper bound cannot beat its
current k-th score — the pub/sub "skipping" optimization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import StreamAlgorithm
from repro.core.registry import register_algorithm
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.queries.query import Query
from repro.types import QueryId, TermId


class _WeightList:
    """One per-term list of ``(weight, query_id)`` entries, heaviest first."""

    __slots__ = ("entries", "sorted")

    def __init__(self) -> None:
        self.entries: List[Tuple[float, QueryId]] = []
        self.sorted = True

    def add(self, query_id: QueryId, weight: float) -> None:
        self.entries.append((weight, query_id))
        self.sorted = False

    def remove(self, query_id: QueryId) -> None:
        self.entries = [entry for entry in self.entries if entry[1] != query_id]

    def ensure_sorted(self) -> None:
        if not self.sorted:
            self.entries.sort(key=lambda entry: entry[0], reverse=True)
            self.sorted = True

    def max_weight(self) -> float:
        self.ensure_sorted()
        return self.entries[0][0] if self.entries else 0.0

    def __len__(self) -> int:
        return len(self.entries)


@register_algorithm("tps")
class TPSAlgorithm(StreamAlgorithm):
    """Term-at-a-time accumulator evaluation with per-query skipping."""

    name = "tps"

    def __init__(self, decay: Optional[ExponentialDecay] = None) -> None:
        super().__init__(decay)
        self._lists: Dict[TermId, _WeightList] = {}

    # ------------------------------------------------------------------ #
    # Structures
    # ------------------------------------------------------------------ #

    def _register_structures(self, query: Query) -> None:
        for term_id, weight in query.vector.items():
            self._lists.setdefault(term_id, _WeightList()).add(query.query_id, weight)

    def _unregister_structures(self, query: Query) -> None:
        for term_id in query.vector:
            weight_list = self._lists.get(term_id)
            if weight_list is None:
                continue
            weight_list.remove(query.query_id)
            if not weight_list.entries:
                del self._lists[term_id]

    def _on_threshold_change(self, query: Query) -> None:
        # The weight order is static; thresholds are read live during
        # processing, so nothing needs maintenance here.
        return

    def _on_renormalize(self, factor: float) -> None:
        return

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #

    def _process_document(
        self, document: Document, amplification: float
    ) -> List[ResultUpdate]:
        # One traversal implementation: the per-event path is the batched
        # walk over a single document.
        return self._process_batch_documents([document], [amplification])

    def _process_batch_documents(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        """Term-at-a-time walk shared by both ingestion paths (lookups
        hoisted, accumulator table cleared between documents rather than
        reallocated)."""
        updates: List[ResultUpdate] = []
        lists = self._lists
        counters = self.counters
        offer = self.offer
        thresholds = self.results.threshold
        involved: List[Tuple[float, _WeightList]] = []
        accumulators: Dict[QueryId, float] = {}
        for document, amplification in zip(documents, amplifications):
            involved.clear()
            for term_id, doc_weight in document.vector.items():
                weight_list = lists.get(term_id)
                if weight_list is not None and weight_list.entries:
                    weight_list.ensure_sorted()
                    involved.append((doc_weight, weight_list))
            if not involved:
                continue

            # Process terms in decreasing contribution caps so that
            # "remaining" upper bounds shrink as fast as possible,
            # maximizing skips.
            involved.sort(key=lambda item: item[0] * item[1].max_weight(), reverse=True)
            caps = [doc_weight * weight_list.max_weight() for doc_weight, weight_list in involved]
            remaining_after = [0.0] * len(involved)
            running = 0.0
            for idx in range(len(involved) - 1, -1, -1):
                remaining_after[idx] = running
                running += caps[idx]

            accumulators.clear()
            accumulators_get = accumulators.get
            for idx, (doc_weight, weight_list) in enumerate(involved):
                counters.iterations += 1
                remaining = remaining_after[idx]
                for weight, query_id in weight_list.entries:
                    counters.postings_scanned += 1
                    contribution = doc_weight * weight
                    current = accumulators_get(query_id)
                    if current is not None:
                        accumulators[query_id] = current + contribution
                        continue
                    threshold = thresholds(query_id)
                    if threshold > 0.0:
                        upper_bound = amplification * (contribution + remaining)
                        if upper_bound <= threshold:
                            # Even with every remaining term at its maximum
                            # this query cannot be affected; skip the
                            # accumulator.
                            continue
                    accumulators[query_id] = contribution

            doc_id = document.doc_id
            for query_id, similarity in accumulators.items():
                counters.full_evaluations += 1
                update = offer(query_id, doc_id, similarity * amplification)
                if update is not None:
                    updates.append(update)
        return updates
