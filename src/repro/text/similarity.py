"""Sparse-vector similarity primitives.

Vectors are plain ``dict[int, float]`` objects (term id -> weight).  The
scoring model of the paper uses cosine similarity; with L2-normalized vectors
the cosine reduces to the sparse dot product, which is the representation the
stream algorithms use internally.
"""

from __future__ import annotations

import math

from repro.types import SparseVector


def dot_product(a: SparseVector, b: SparseVector) -> float:
    """Sparse dot product; iterates over the smaller vector."""
    if len(a) > len(b):
        a, b = b, a
    total = 0.0
    for term_id, weight in a.items():
        other = b.get(term_id)
        if other is not None:
            total += weight * other
    return total


def l2_norm(vector: SparseVector) -> float:
    """Euclidean norm of a sparse vector."""
    return math.sqrt(sum(w * w for w in vector.values()))


def l2_normalize(vector: SparseVector) -> SparseVector:
    """Return a copy of ``vector`` scaled to unit Euclidean norm.

    The zero vector is returned unchanged (there is nothing to normalize and
    callers treat it as "matches nothing").
    """
    norm = l2_norm(vector)
    if norm == 0.0:
        return dict(vector)
    return {term_id: weight / norm for term_id, weight in vector.items()}


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity of two (not necessarily normalized) sparse vectors."""
    norm_a = l2_norm(a)
    norm_b = l2_norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot_product(a, b) / (norm_a * norm_b)


def is_normalized(vector: SparseVector, tolerance: float = 1e-9) -> bool:
    """True when ``vector`` has unit norm (within ``tolerance``) or is empty."""
    if not vector:
        return True
    return abs(l2_norm(vector) - 1.0) <= tolerance


def jaccard_terms(a: SparseVector, b: SparseVector) -> float:
    """Jaccard similarity of the two vectors' term sets (diagnostics only)."""
    keys_a = set(a)
    keys_b = set(b)
    if not keys_a and not keys_b:
        return 0.0
    return len(keys_a & keys_b) / len(keys_a | keys_b)
