"""Text analysis substrate.

Turns raw document / query text into the normalized sparse term vectors that
the continuous top-k scoring model consumes.  The pipeline mirrors what a
classical IR system applies to a Wikipedia-style corpus:

``tokenize -> lowercase -> stopword removal -> (optional) Porter stemming ->
term-id lookup -> TF or TF-IDF weighting -> L2 normalization``
"""

from repro.text.tokenizer import Tokenizer
from repro.text.stopwords import ENGLISH_STOPWORDS, StopwordFilter
from repro.text.stemmer import PorterStemmer
from repro.text.analyzer import Analyzer
from repro.text.vocabulary import Vocabulary
from repro.text.vectorizer import Vectorizer, WeightingScheme
from repro.text.similarity import cosine_similarity, dot_product, l2_normalize

__all__ = [
    "Tokenizer",
    "ENGLISH_STOPWORDS",
    "StopwordFilter",
    "PorterStemmer",
    "Analyzer",
    "Vocabulary",
    "Vectorizer",
    "WeightingScheme",
    "cosine_similarity",
    "dot_product",
    "l2_normalize",
]
