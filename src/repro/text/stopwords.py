"""English stopword list and a small filtering helper.

The list is the classic SMART-derived set of highly frequent English function
words.  Stopword removal matters for the monitoring workload because function
words would otherwise create enormous query posting lists that match every
document, inflating the work of every algorithm equally without changing
their relative behaviour.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

ENGLISH_STOPWORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can't cannot could
    couldn't did didn't do does doesn't doing don't down during each few for
    from further had hadn't has hasn't have haven't having he he'd he'll he's
    her here here's hers herself him himself his how how's i i'd i'll i'm
    i've if in into is isn't it it's its itself let's me more most mustn't my
    myself no nor not of off on once only or other ought our ours ourselves
    out over own same shan't she she'd she'll she's should shouldn't so some
    such than that that's the their theirs them themselves then there there's
    these they they'd they'll they're they've this those through to too under
    until up very was wasn't we we'd we'll we're we've were weren't what
    what's when when's where where's which while who who's whom why why's
    with won't would wouldn't you you'd you'll you're you've your yours
    yourself yourselves
    """.split()
)


class StopwordFilter:
    """Removes stopwords from a token sequence.

    A custom stopword set may be supplied; by default the English set above
    is used.  Additional words can be added per instance (e.g. corpus-specific
    boilerplate terms).
    """

    def __init__(self, stopwords: Iterable[str] | None = None) -> None:
        base = ENGLISH_STOPWORDS if stopwords is None else frozenset(
            w.lower() for w in stopwords
        )
        self._stopwords = set(base)

    @property
    def stopwords(self) -> FrozenSet[str]:
        return frozenset(self._stopwords)

    def add(self, *words: str) -> None:
        """Add extra stopwords to this filter instance."""
        for word in words:
            self._stopwords.add(word.lower())

    def is_stopword(self, token: str) -> bool:
        return token in self._stopwords

    def filter(self, tokens: Iterable[str]) -> List[str]:
        """Return ``tokens`` with stopwords removed."""
        return [token for token in tokens if token not in self._stopwords]

    def __call__(self, tokens: Iterable[str]) -> List[str]:
        return self.filter(tokens)

    def __len__(self) -> int:
        return len(self._stopwords)
