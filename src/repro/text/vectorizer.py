"""Turns analyzed text (or raw term counts) into normalized sparse vectors.

Supports the common weighting schemes of the IR literature:

* ``TF`` -- raw term frequency,
* ``LOG_TF`` -- ``1 + log(tf)`` (dampened),
* ``TF_IDF`` -- dampened TF multiplied by smoothed inverse document
  frequency taken from the vocabulary statistics.

All produced vectors are L2-normalized, which the stream-processing
algorithms assume (cosine similarity == dot product).
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.text.analyzer import Analyzer
from repro.text.similarity import l2_normalize
from repro.text.vocabulary import Vocabulary
from repro.types import SparseVector


class WeightingScheme(enum.Enum):
    """Term-weighting schemes supported by :class:`Vectorizer`."""

    TF = "tf"
    LOG_TF = "log_tf"
    TF_IDF = "tf_idf"


class Vectorizer:
    """Maps token bags to normalized sparse vectors over a vocabulary."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        scheme: WeightingScheme | str = WeightingScheme.LOG_TF,
        analyzer: Optional[Analyzer] = None,
        add_unknown_terms: bool = True,
    ) -> None:
        if isinstance(scheme, str):
            try:
                scheme = WeightingScheme(scheme)
            except ValueError as exc:
                raise ConfigurationError(f"unknown weighting scheme {scheme!r}") from exc
        self.vocabulary = vocabulary
        self.scheme = scheme
        self.analyzer = analyzer or Analyzer()
        self.add_unknown_terms = add_unknown_terms

    # ------------------------------------------------------------------ #
    # Weight computation
    # ------------------------------------------------------------------ #

    def _term_weight(self, term_id: int, count: int) -> float:
        if count <= 0:
            return 0.0
        if self.scheme is WeightingScheme.TF:
            base = float(count)
        else:
            base = 1.0 + math.log(count)
        if self.scheme is WeightingScheme.TF_IDF:
            base *= self._idf(term_id)
        return base

    def _idf(self, term_id: int) -> float:
        # Smoothed IDF; +1 keeps the weight strictly positive even for terms
        # appearing in every observed document.
        num_docs = max(self.vocabulary.num_documents, 1)
        df = self.vocabulary.doc_frequency(term_id)
        return math.log((1.0 + num_docs) / (1.0 + df)) + 1.0

    # ------------------------------------------------------------------ #
    # Vector construction
    # ------------------------------------------------------------------ #

    def vectorize_counts(self, counts: Mapping[str, int]) -> SparseVector:
        """Build a normalized vector from a term -> count mapping."""
        vector: Dict[int, float] = {}
        for term, count in counts.items():
            if self.add_unknown_terms and not self.vocabulary.frozen:
                term_id = self.vocabulary.add(term)
            else:
                maybe = self.vocabulary.get(term)
                if maybe is None:
                    continue
                term_id = maybe
            weight = self._term_weight(term_id, count)
            if weight > 0.0:
                vector[term_id] = vector.get(term_id, 0.0) + weight
        return l2_normalize(vector)

    def vectorize_id_counts(self, counts: Mapping[int, int]) -> SparseVector:
        """Build a normalized vector from a term-id -> count mapping."""
        vector: Dict[int, float] = {}
        for term_id, count in counts.items():
            weight = self._term_weight(term_id, count)
            if weight > 0.0:
                vector[term_id] = weight
        return l2_normalize(vector)

    def vectorize_text(self, text: str) -> SparseVector:
        """Analyze ``text`` and build its normalized vector."""
        return self.vectorize_counts(self.analyzer.term_frequencies(text))

    def vectorize_keywords(self, keywords: Iterable[str]) -> SparseVector:
        """Build a query vector from user keywords (each keyword counted once).

        Keywords run through the same analyzer so they land on the same stems
        as document terms.
        """
        counts: Dict[str, int] = {}
        for keyword in keywords:
            for token in self.analyzer.analyze(keyword):
                counts[token] = counts.get(token, 0) + 1
        return self.vectorize_counts(counts)
