"""Regex word tokenizer with lower-casing and length filtering."""

from __future__ import annotations

import re
from typing import Iterable, List


class Tokenizer:
    """Splits raw text into lowercase word tokens.

    The tokenizer keeps alphanumeric runs (``\\w+`` minus the underscore) and
    drops tokens shorter than ``min_length`` or longer than ``max_length``.
    Purely numeric tokens are dropped by default because they carry little
    topical signal for keyword filtering workloads.
    """

    _WORD_RE = re.compile(r"[A-Za-z0-9]+")

    def __init__(
        self,
        min_length: int = 2,
        max_length: int = 40,
        keep_numbers: bool = False,
        lowercase: bool = True,
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        if max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        self.min_length = min_length
        self.max_length = max_length
        self.keep_numbers = keep_numbers
        self.lowercase = lowercase

    def tokenize(self, text: str) -> List[str]:
        """Return the list of tokens extracted from ``text``."""
        if not text:
            return []
        if self.lowercase:
            text = text.lower()
        tokens = []
        for match in self._WORD_RE.finditer(text):
            token = match.group(0)
            if not self.min_length <= len(token) <= self.max_length:
                continue
            if not self.keep_numbers and token.isdigit():
                continue
            tokens.append(token)
        return tokens

    def tokenize_many(self, texts: Iterable[str]) -> List[List[str]]:
        """Tokenize each text in ``texts``."""
        return [self.tokenize(text) for text in texts]

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tokenizer(min_length={self.min_length}, max_length={self.max_length}, "
            f"keep_numbers={self.keep_numbers}, lowercase={self.lowercase})"
        )
