"""Analysis pipeline: tokenizer + stopword filter + optional stemmer."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional

from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import StopwordFilter
from repro.text.tokenizer import Tokenizer


class Analyzer:
    """Composes the text-processing steps into a single callable.

    ``analyze`` returns the processed token list; ``term_frequencies``
    returns the bag-of-words counter most callers (the vectorizer, the corpus
    reader) actually need.
    """

    def __init__(
        self,
        tokenizer: Optional[Tokenizer] = None,
        stopword_filter: Optional[StopwordFilter] = None,
        stemmer: Optional[PorterStemmer] = None,
        use_stemming: bool = True,
        use_stopwords: bool = True,
    ) -> None:
        self.tokenizer = tokenizer or Tokenizer()
        self.stopword_filter = stopword_filter or (StopwordFilter() if use_stopwords else None)
        if not use_stopwords:
            self.stopword_filter = None
        self.stemmer = stemmer or (PorterStemmer() if use_stemming else None)
        if not use_stemming:
            self.stemmer = None

    def analyze(self, text: str) -> List[str]:
        """Run the full pipeline on ``text`` and return the processed tokens."""
        tokens = self.tokenizer.tokenize(text)
        if self.stopword_filter is not None:
            tokens = self.stopword_filter.filter(tokens)
        if self.stemmer is not None:
            tokens = [self.stemmer.stem(token) for token in tokens]
        return tokens

    def term_frequencies(self, text: str) -> Dict[str, int]:
        """Return the term -> count mapping of the processed tokens."""
        return dict(Counter(self.analyze(text)))

    def analyze_many(self, texts: Iterable[str]) -> List[List[str]]:
        return [self.analyze(text) for text in texts]

    def __call__(self, text: str) -> List[str]:
        return self.analyze(text)
