"""Term dictionary mapping term strings to dense integer ids.

Both the document-side and the query-side inverted files key their posting
lists by integer term ids; the :class:`Vocabulary` is the single authority
for that mapping.  It also tracks document frequencies so the vectorizer can
compute IDF weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.exceptions import VocabularyError
from repro.types import TermId


class Vocabulary:
    """Bidirectional term <-> id mapping with document-frequency statistics."""

    def __init__(self, frozen: bool = False) -> None:
        self._term_to_id: Dict[str, TermId] = {}
        self._id_to_term: List[str] = []
        self._doc_freq: List[int] = []
        self._num_documents = 0
        self._frozen = frozen

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_terms(cls, terms: Iterable[str]) -> "Vocabulary":
        """Build a vocabulary containing ``terms`` in iteration order."""
        vocab = cls()
        for term in terms:
            vocab.add(term)
        return vocab

    @classmethod
    def synthetic(cls, size: int, prefix: str = "term") -> "Vocabulary":
        """Build a vocabulary of ``size`` synthetic terms ``term0001`` ...

        Used by the synthetic corpus generator so that vectors generated
        directly (without raw text) still map to stable human-readable terms.
        """
        return cls.from_terms(f"{prefix}{i:06d}" for i in range(size))

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def freeze(self) -> None:
        """Disallow the addition of new terms (lookups of unknown terms fail)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def add(self, term: str) -> TermId:
        """Return the id of ``term``, adding it if necessary."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        if self._frozen:
            raise VocabularyError(f"vocabulary is frozen; unknown term {term!r}")
        term_id = len(self._id_to_term)
        self._term_to_id[term] = term_id
        self._id_to_term.append(term)
        self._doc_freq.append(0)
        return term_id

    def observe_document(self, terms: Iterable[str], add_unknown: bool = True) -> None:
        """Update document-frequency statistics with one document's terms."""
        self._num_documents += 1
        seen: set[TermId] = set()
        for term in terms:
            if add_unknown and not self._frozen:
                term_id = self.add(term)
            else:
                maybe = self._term_to_id.get(term)
                if maybe is None:
                    continue
                term_id = maybe
            seen.add(term_id)
        for term_id in seen:
            self._doc_freq[term_id] += 1

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def id_of(self, term: str) -> TermId:
        """Return the id of ``term``; raise :class:`VocabularyError` if unknown."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            raise VocabularyError(f"unknown term {term!r}")
        return term_id

    def get(self, term: str) -> Optional[TermId]:
        """Return the id of ``term`` or ``None`` if it is unknown."""
        return self._term_to_id.get(term)

    def term_of(self, term_id: TermId) -> str:
        """Return the term string for ``term_id``."""
        if not 0 <= term_id < len(self._id_to_term):
            raise VocabularyError(f"unknown term id {term_id}")
        return self._id_to_term[term_id]

    def doc_frequency(self, term_id: TermId) -> int:
        """Number of observed documents containing the term."""
        if not 0 <= term_id < len(self._doc_freq):
            raise VocabularyError(f"unknown term id {term_id}")
        return self._doc_freq[term_id]

    @property
    def num_documents(self) -> int:
        """Number of documents observed via :meth:`observe_document`."""
        return self._num_documents

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary(size={len(self)}, frozen={self._frozen})"
