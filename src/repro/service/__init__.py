"""The serving layer: a long-running pub/sub notification service.

Everything above this package is a library you drive in-process; this
package puts a *service boundary* around it — the paper's actual framing,
where millions of users register continuous queries and are notified over
the wire as documents stream in:

* :mod:`repro.service.protocol` — the length-prefixed JSON wire protocol;
* :mod:`repro.service.server` — :class:`MonitorServer`, the asyncio server
  with micro-batched ingestion, bounded per-subscriber fan-out and
  graceful checkpoint-on-shutdown;
* :mod:`repro.service.registry` — query id → subscriber session routing;
* :mod:`repro.service.client` — :class:`MonitorClient`, the asyncio client.

See ``docs/service.md`` for the protocol specification, the slow-consumer
policies, and the shutdown/restart semantics.
"""

from repro.service.client import BatchPublishAck, MonitorClient, PublishAck
from repro.service.protocol import PROTOCOL_VERSION, Notification
from repro.service.registry import SubscriptionRegistry
from repro.service.server import (
    SLOW_CONSUMER_POLICIES,
    MonitorServer,
    ServiceConfig,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SLOW_CONSUMER_POLICIES",
    "BatchPublishAck",
    "MonitorClient",
    "MonitorServer",
    "Notification",
    "PublishAck",
    "ServiceConfig",
    "SubscriptionRegistry",
]
