"""The asyncio client of the pub/sub serving layer.

:class:`MonitorClient` speaks the length-prefixed JSON protocol of
:mod:`repro.service.protocol` against a
:class:`~repro.service.server.MonitorServer`: a background reader task
correlates replies to in-flight requests by id and parks ``update`` pushes
on an internal queue, so requests can be pipelined (``asyncio.gather`` a
burst of publishes and the server micro-batches them) while notifications
are consumed independently via :meth:`MonitorClient.next_update`.

Typical usage::

    client = await MonitorClient.connect("127.0.0.1", 7171)
    query_id = await client.subscribe({7: 0.8, 9: 0.6}, k=10)
    ack = await client.publish(document)          # server-stamped arrival
    update = await client.next_update(timeout=5)  # pushed notification
    await client.close()
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.documents.document import Document
from repro.exceptions import (
    ConnectionLostError,
    ProtocolError,
    RequestTimeoutError,
    ServiceError,
)
from repro.persistence import codec
from repro.service import protocol
from repro.service.protocol import Notification

#: Internal marker a closing reader pushes so blocked getters wake up.
_EOF = object()


class PublishAck(NamedTuple):
    """The server's answer to one ``publish``: where the document landed."""

    arrival: float
    batch: int


class BatchPublishAck(NamedTuple):
    """Per-document arrival times and batch numbers of one ``publish_batch``."""

    arrivals: List[float]
    batches: List[int]


class MonitorClient:
    """One connection to a :class:`~repro.service.server.MonitorServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: Dict[str, object],
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        request_timeout: Optional[float] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._hello = hello
        self._max_frame_bytes = max_frame_bytes
        #: Per-request reply deadline; ``None`` waits forever (the
        #: pre-cluster behaviour).  A timed-out request is abandoned —
        #: its late reply, should one arrive, is discarded — but the
        #: connection stays up for everything else.
        self.request_timeout = request_timeout
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._updates: "asyncio.Queue" = asyncio.Queue()
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._server_shutdown: Optional[str] = None
        self._reader_task = asyncio.create_task(self._read_loop())

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        sock=None,
        request_timeout: Optional[float] = None,
    ) -> "MonitorClient":
        """Connect and consume the server's ``hello`` push.

        ``sock`` substitutes a pre-connected socket (tests use this to
        shrink kernel buffers before connecting).  ``request_timeout``
        bounds every request's wait for its reply (see
        :attr:`request_timeout`); without it a request on a wedged — but
        not closed — server connection waits forever.
        """
        if sock is not None:
            reader, writer = await asyncio.open_connection(sock=sock)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        hello = await protocol.read_frame(reader, max_frame_bytes)
        if hello is None:
            raise ServiceError("server closed the connection before hello")
        if hello.get("push") != protocol.PUSH_HELLO:
            raise ProtocolError(f"expected a hello push, got {hello!r}")
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol version {hello.get('version')!r}, "
                f"this client speaks {protocol.PROTOCOL_VERSION}"
            )
        return cls(
            reader, writer, hello, max_frame_bytes, request_timeout=request_timeout
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def pause_reading(self) -> None:
        """Stop consuming the socket: inbound frames stay in the kernel.

        This is real flow control — once the receive buffers fill, the
        server's slow-consumer policy decides what happens to further
        notifications.  The backpressure tests use it to *be* the slow
        consumer; ordinary clients never need it.
        """
        self._writer.transport.pause_reading()

    def resume_reading(self) -> None:
        """Resume consuming the socket after :meth:`pause_reading`."""
        self._writer.transport.resume_reading()

    @property
    def server_shutdown(self) -> Optional[str]:
        """The reason of the server's ``shutdown`` push, once received."""
        return self._server_shutdown

    async def close(self) -> None:
        """Close the connection and fail anything still in flight."""
        if self._closed:
            return
        self._mark_closed(ServiceError("client closed"))
        self._reader_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (OSError, RuntimeError):  # pragma: no cover - platform quirks
            pass

    async def __aenter__(self) -> "MonitorClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def _mark_closed(self, error: Exception) -> None:
        if self._closed:
            return
        self._closed = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        self._updates.put_nowait(_EOF)

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await protocol.read_frame(
                    self._reader, self._max_frame_bytes
                )
                if message is None:
                    break
                if "reply" in message:
                    self._handle_reply(message)
                elif message.get("push") == protocol.PUSH_UPDATE:
                    self._updates.put_nowait(protocol.decode_update(message))
                elif message.get("push") == protocol.PUSH_SHUTDOWN:
                    self._server_shutdown = str(message.get("reason", ""))
                # Unknown pushes are ignored: forward compatibility.
        except (ProtocolError, OSError, RuntimeError) as exc:
            self._mark_closed(ConnectionLostError(f"connection lost: {exc}"))
            return
        self._mark_closed(ConnectionLostError("server closed the connection"))

    def _handle_reply(self, message: Dict[str, object]) -> None:
        request_id = message.get("reply")
        future = self._pending.pop(request_id, None)  # type: ignore[arg-type]
        if future is None or future.done():
            return
        if message.get("ok"):
            future.set_result(message)
        else:
            future.set_exception(ServiceError(str(message.get("error", "unknown error"))))

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #

    async def _request(
        self, op: str, timeout: Optional[float] = None, **fields: object
    ) -> Dict[str, object]:
        if self._closed:
            raise ServiceError("client is closed")
        request_id = next(self._request_ids)
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                await protocol.write_frame(
                    self._writer,
                    protocol.request(op, request_id, **fields),
                    self._max_frame_bytes,
                )
        except (OSError, RuntimeError) as exc:
            self._pending.pop(request_id, None)
            self._mark_closed(ConnectionLostError(f"connection lost: {exc}"))
            raise ConnectionLostError(f"connection lost: {exc}") from exc
        deadline = timeout if timeout is not None else self.request_timeout
        if deadline is None:
            return await future
        try:
            return await asyncio.wait_for(future, deadline)
        except asyncio.TimeoutError:
            # Abandon this request only: drop the pending slot so a late
            # reply is silently discarded by _handle_reply.
            self._pending.pop(request_id, None)
            raise RequestTimeoutError(
                f"request {op!r} (id {request_id}) got no reply within "
                f"{deadline}s"
            ) from None

    async def subscribe(
        self,
        vector: Dict[int, float],
        k: Optional[int] = None,
        user: Optional[str] = None,
    ) -> int:
        """Register a continuous query; returns the server-assigned id.

        The vector may be unnormalized — the server L2-normalizes it, like
        :meth:`~repro.core.monitor.ContinuousMonitor.register_vector`.
        This connection receives the query's notifications.
        """
        fields: Dict[str, object] = dict(protocol.encode_vector(vector))
        if k is not None:
            fields["k"] = int(k)
        if user is not None:
            fields["user"] = user
        reply = await self._request(protocol.OP_SUBSCRIBE, **fields)
        return int(reply["query_id"])  # type: ignore[arg-type]

    async def attach(self, query_id: int) -> None:
        """Claim an already-registered query's notification stream.

        This is the reconnect path: query registrations survive both a
        subscriber disconnect and (durably) a server restart; ``attach``
        re-establishes who receives the pushes.
        """
        await self._request(protocol.OP_ATTACH, query_id=int(query_id))

    async def unsubscribe(self, query_id: int) -> None:
        """Unregister a query from the monitor (and stop its pushes)."""
        await self._request(protocol.OP_UNSUBSCRIBE, query_id=int(query_id))

    async def publish(self, document: Document) -> PublishAck:
        """Publish one document; the ack arrives after its batch commits.

        A document without an arrival time is stamped by the server's
        stream clock; an explicit arrival time must respect stream order.
        """
        reply = await self._request(
            protocol.OP_PUBLISH, doc=codec.encode_document(document)
        )
        return PublishAck(
            arrival=float(reply["arrival"]),  # type: ignore[arg-type]
            batch=int(reply["batch"]),  # type: ignore[arg-type]
        )

    async def publish_batch(self, documents: Sequence[Document]) -> BatchPublishAck:
        """Publish an arrival-ordered batch as one operation.

        The whole batch is stamped atomically (all documents or none) and
        processed in at most ``ceil(n / max_batch)`` engine batches.
        """
        reply = await self._request(
            protocol.OP_PUBLISH_BATCH,
            docs=[codec.encode_document(document) for document in documents],
        )
        return BatchPublishAck(
            arrivals=[float(arrival) for arrival in reply["arrivals"]],  # type: ignore[union-attr]
            batches=[int(batch) for batch in reply["batches"]],  # type: ignore[union-attr]
        )

    async def stats(self) -> Dict[str, object]:
        """The server's stats snapshot (see docs/service.md)."""
        reply = await self._request(protocol.OP_STATS)
        return reply["stats"]  # type: ignore[return-value]

    async def metrics(self) -> Dict[str, object]:
        """The server's telemetry snapshot (see docs/observability.md).

        Carries the mergeable histogram wire form plus a pre-computed
        percentile summary; empty histogram/summary sections when the
        server runs with telemetry disabled.
        """
        reply = await self._request(protocol.OP_METRICS)
        return reply["metrics"]  # type: ignore[return-value]

    async def checkpoint(self) -> int:
        """Force a checkpoint round on a durable server; returns its LSN."""
        reply = await self._request(protocol.OP_CHECKPOINT)
        return int(reply["lsn"])  # type: ignore[arg-type]

    async def ping(self, timeout: Optional[float] = None) -> None:
        """Round-trip a no-op (the health check; ``timeout`` overrides
        :attr:`request_timeout` for this one probe)."""
        await self._request(protocol.OP_PING, timeout=timeout)

    # ------------------------------------------------------------------ #
    # Notifications
    # ------------------------------------------------------------------ #

    def updates_pending(self) -> int:
        """Number of notifications already received and not yet consumed."""
        count = self._updates.qsize()
        # The EOF marker is not a notification.
        if self._closed and count:
            count -= 1
        return count

    async def next_update(self, timeout: Optional[float] = None) -> Notification:
        """The next pushed notification (FIFO).

        Raises :class:`ServiceError` once the connection is closed and no
        buffered notifications remain, and :class:`asyncio.TimeoutError`
        when ``timeout`` elapses first.
        """
        if timeout is None:
            update = await self._updates.get()
        else:
            update = await asyncio.wait_for(self._updates.get(), timeout)
        if update is _EOF:
            # Leave the marker for any other waiter, then report.
            self._updates.put_nowait(_EOF)
            raise ServiceError("connection is closed; no further updates")
        return update

    async def drain_updates(self, idle_timeout: float = 0.25) -> List[Notification]:
        """Collect notifications until none arrives for ``idle_timeout``."""
        collected: List[Notification] = []
        while True:
            try:
                collected.append(await self.next_update(timeout=idle_timeout))
            except asyncio.TimeoutError:
                return collected
            except ServiceError:
                return collected
