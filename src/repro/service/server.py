"""The asyncio pub/sub server: the monitor stack behind a socket.

:class:`MonitorServer` hosts any monitor flavour —
:class:`~repro.core.monitor.ContinuousMonitor`,
:class:`~repro.runtime.sharded.ShardedMonitor` or a crash-safe
:class:`~repro.persistence.durable.DurableMonitor` — behind the
length-prefixed JSON protocol of :mod:`repro.service.protocol`.  Clients
``subscribe`` continuous queries (server-assigned ids), ``publish``
documents, and receive coalesced result notifications pushed over their
connection; ``stats`` and ``checkpoint`` cover operations.

Three design points carry the throughput and robustness story:

* **Micro-batched ingestion** — publishes are never processed one by one:
  every ``publish``/``publish_batch`` lands on one ingest queue that a
  single pipeline task drains into
  :meth:`~repro.core.monitor.ContinuousMonitor.process_batch` calls of up
  to ``max_batch`` documents (the PR-1 fast path).  Publishers receive
  their ack *after* their documents' batch has been processed, carrying
  the server-stamped arrival times and the batch sequence numbers — which
  is also what makes the service differentially testable against an
  offline run.
* **Bounded fan-out with an explicit slow-consumer policy** — every
  subscriber owns a bounded notification queue drained by its own writer
  task.  When a queue is full the configured policy decides: ``block``
  (backpressure the ingest pipeline — no subscriber ever misses an
  update), ``drop`` (evict the *oldest* queued notification, counted in
  :class:`~repro.metrics.counters.ServiceCounters`), or ``disconnect``
  (close the slow session; its queries stay registered for re-attach).
* **Graceful shutdown = durable shutdown** — :meth:`MonitorServer.stop`
  stops accepting, drains the ingest queue, delivers outstanding acks and
  notifications, pushes a ``shutdown`` frame to every subscriber, and —
  when the monitor is durable — takes a final checkpoint before closing
  it.  A server restarted on the same directory resumes with replay-exact
  engine state, a continuing stream clock, and no reissued query ids;
  clients re-attach their subscriptions by id.

Typical usage::

    monitor = DurableMonitor.open(durability, MonitorConfig(algorithm="mrio"))
    server = MonitorServer(monitor, ServiceConfig(port=7171))
    await server.start()
    ...
    await server.stop()        # drains, checkpoints, closes the monitor
"""

from __future__ import annotations

import asyncio
import socket
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from repro.documents.document import Document
from repro.exceptions import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    ServiceError,
    UnknownQueryError,
)
from repro.metrics.counters import ServiceCounters
from repro.obs.histogram import LatencyHistogram
from repro.obs.prometheus import render_prometheus
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.service import protocol
from repro.service.registry import SubscriptionRegistry

#: Roles a service process can run as.  ``"monitor"`` is the pub/sub
#: server this module implements; ``"shard-host"`` serves one engine shard
#: over the cluster wire protocol (see :func:`serve_shard_host`).
ROLE_MONITOR = "monitor"
ROLE_SHARD_HOST = "shard-host"
SERVICE_ROLES = (ROLE_MONITOR, ROLE_SHARD_HOST)

#: Slow-consumer policies (see the module docstring and docs/service.md).
POLICY_BLOCK = "block"
POLICY_DROP = "drop"
POLICY_DISCONNECT = "disconnect"
SLOW_CONSUMER_POLICIES = (POLICY_BLOCK, POLICY_DROP, POLICY_DISCONNECT)

_SERVER_NAME = "repro-monitor-server"

#: Ingest-queue sentinel: stop the pipeline after everything queued before it.
_STOP = object()
#: Notification-queue sentinel: flush what precedes it, then end the pump.
_CLOSE = object()


@dataclass
class ServiceConfig:
    """Knobs of the serving layer.

    Attributes
    ----------
    host, port:
        Listen address.  Port 0 (default) picks a free port; read it back
        from :attr:`MonitorServer.port` after :meth:`MonitorServer.start`.
    max_batch:
        Documents per ``process_batch`` call of the ingest pipeline.
        Publishes are coalesced up to this size; larger client batches are
        chunked to it.
    linger_yields:
        Event-loop yields the pipeline waits for more publishes to join a
        micro-batch before processing a short one.  0 processes whatever
        one queue read returned; small values (the default 2) let
        concurrently arriving publishes coalesce without adding latency
        when the server is idle.
    subscriber_queue:
        Per-subscriber notification queue capacity (the backpressure
        bound).
    slow_consumer_policy:
        What happens when a subscriber's queue is full: ``"block"``
        (default — backpressure the ingest pipeline), ``"drop"`` (evict
        the oldest queued notification, counted), or ``"disconnect"``
        (close the session; its queries remain registered).
    arrival_interval:
        Stream-time increment used to stamp published documents that carry
        no arrival time of their own.  The stamp clock starts at the
        monitor's :attr:`last_arrival`, so it resumes seamlessly across a
        restart.
    max_frame_bytes:
        Per-frame payload cap, both directions.
    max_pending_documents:
        Cap on documents queued for ingestion but not yet processed;
        publishes beyond it are refused (a firehose of pipelined publishes
        must not hold the whole backlog in memory).
    write_buffer_limit:
        Per-connection transport write-buffer high-water mark in bytes
        (``None`` keeps asyncio's default).  Together with
        ``send_buffer_bytes`` this bounds how much undelivered data a slow
        consumer can park outside its notification queue; tests use tiny
        limits to surface slow-consumer behaviour with small data volumes.
    send_buffer_bytes:
        Per-connection kernel ``SO_SNDBUF`` size (``None`` keeps the OS
        default).  The kernel send buffer is invisible queueing in front
        of a slow consumer — shrink it when the notification queue bound
        should be the bound that matters.
    checkpoint_on_shutdown:
        Take a final checkpoint in :meth:`MonitorServer.stop` when the
        monitor is durable.
    close_monitor:
        Close the monitor in :meth:`MonitorServer.stop` (the server owns
        its monitor by default; pass ``False`` to manage it yourself).
    shutdown_timeout:
        Seconds :meth:`MonitorServer.stop` waits for each draining step
        (ingest queue, outstanding acks, per-subscriber flush) before
        forcing it.
    role:
        What this service process serves: ``"monitor"`` (default — the
        pub/sub server) or ``"shard-host"`` (one engine shard behind the
        cluster wire protocol; launched with :func:`serve_shard_host`, not
        with :class:`MonitorServer`).
    telemetry:
        Record pipeline stage timers (publish receive, micro-batch
        enqueue, engine probe, notification write) into mergeable latency
        histograms, served by the ``metrics`` op.  Off by default: the
        disabled path is a single attribute read per stage — no clock
        calls, no allocation.
    metrics_port:
        When not ``None``, additionally serve Prometheus text exposition
        on ``GET /metrics`` at this port (0 picks a free one; read it back
        from :attr:`MonitorServer.metrics_port`).  Setting a port implies
        ``telemetry=True``.
    metrics_host:
        Listen address of the ``/metrics`` endpoint.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 256
    linger_yields: int = 2
    subscriber_queue: int = 256
    slow_consumer_policy: str = POLICY_BLOCK
    arrival_interval: float = 1.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    max_pending_documents: int = 16384
    write_buffer_limit: Optional[int] = None
    send_buffer_bytes: Optional[int] = None
    checkpoint_on_shutdown: bool = True
    close_monitor: bool = True
    shutdown_timeout: float = 30.0
    role: str = ROLE_MONITOR
    telemetry: bool = False
    metrics_port: Optional[int] = None
    metrics_host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.role not in SERVICE_ROLES:
            raise ConfigurationError(
                f"role must be one of {SERVICE_ROLES}, got {self.role!r}"
            )
        if self.max_batch <= 0:
            raise ConfigurationError(f"max_batch must be > 0, got {self.max_batch}")
        if self.linger_yields < 0:
            raise ConfigurationError(
                f"linger_yields must be >= 0, got {self.linger_yields}"
            )
        if self.subscriber_queue <= 0:
            raise ConfigurationError(
                f"subscriber_queue must be > 0, got {self.subscriber_queue}"
            )
        if self.slow_consumer_policy not in SLOW_CONSUMER_POLICIES:
            raise ConfigurationError(
                f"slow_consumer_policy must be one of {SLOW_CONSUMER_POLICIES}, "
                f"got {self.slow_consumer_policy!r}"
            )
        if self.arrival_interval <= 0:
            raise ConfigurationError(
                f"arrival_interval must be > 0, got {self.arrival_interval}"
            )
        if self.max_frame_bytes <= 0:
            raise ConfigurationError(
                f"max_frame_bytes must be > 0, got {self.max_frame_bytes}"
            )
        if self.max_pending_documents <= 0:
            raise ConfigurationError(
                f"max_pending_documents must be > 0, got {self.max_pending_documents}"
            )
        if self.shutdown_timeout <= 0:
            raise ConfigurationError(
                f"shutdown_timeout must be > 0, got {self.shutdown_timeout}"
            )
        if self.metrics_port is not None and self.metrics_port < 0:
            raise ConfigurationError(
                f"metrics_port must be >= 0 (or None), got {self.metrics_port}"
            )


def serve_shard_host(
    shard_id: int,
    config,
    options=None,
    host: str = "127.0.0.1",
    port: int = 0,
    on_ready=None,
) -> None:
    """Run one engine shard behind the cluster wire protocol (blocking).

    The ``shard-host`` role: where :class:`MonitorServer` fronts a whole
    monitor with the pub/sub JSON protocol, a shard host serves a single
    :class:`~repro.runtime.shard.EngineShard` over length-prefixed codec
    frames (:mod:`repro.cluster.transport`) for a
    :class:`~repro.cluster.remote.RemoteShardExecutor` to drive — and,
    when journaling, accepts WAL subscribers (hot standbys) on the same
    listen socket.  Blocks until a ``shutdown`` command arrives over the
    wire; ``on_ready`` receives the bound ``(host, port)`` once listening
    (port 0 picks a free one).

    ``config`` is the :class:`~repro.core.config.MonitorConfig` for the
    hosted shard; ``options`` a :class:`~repro.cluster.host.HostOptions`
    (``None`` hosts a plain non-journaling primary).
    """
    # Function-level import: the cluster package pulls in persistence and
    # runtime layers the plain pub/sub path never needs.
    from repro.cluster.host import HostOptions, ShardHost

    shard_host = ShardHost(shard_id, config, options or HostOptions())
    shard_host.serve(host=host, port=port, on_ready=on_ready)


class _IngestItem:
    """One publish operation queued for the ingest pipeline."""

    __slots__ = ("documents", "future", "enqueued_at")

    def __init__(
        self,
        documents: List[Document],
        future: "asyncio.Future",
        enqueued_at: float = 0.0,
    ) -> None:
        self.documents = documents
        self.future = future
        #: ``perf_counter()`` at enqueue time (0.0 with telemetry off);
        #: anchors the ``service.batch_enqueue`` and
        #: ``service.publish_to_notify`` stage timers.
        self.enqueued_at = enqueued_at


class _Session:
    """One client connection: its writer lock, notification queue and pump."""

    def __init__(
        self,
        session_id: int,
        writer: asyncio.StreamWriter,
        queue_size: int,
        max_frame_bytes: int,
        counters: ServiceCounters,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        self.session_id = session_id
        self.writer = writer
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_size)
        self.max_frame_bytes = max_frame_bytes
        self.counters = counters
        self.telemetry = telemetry
        self.closed = False
        self.retired = False
        self.pump_task: Optional["asyncio.Task"] = None
        self.reply_tasks: List["asyncio.Task"] = []
        self._write_lock = asyncio.Lock()

    async def send(self, message: Dict[str, object]) -> None:
        """Write one frame under the session's write lock (may raise)."""
        async with self._write_lock:
            await protocol.write_frame(self.writer, message, self.max_frame_bytes)

    async def send_safe(self, message: Dict[str, object]) -> bool:
        """Best-effort send: ``False`` instead of raising on a dead peer."""
        if self.closed:
            return False
        try:
            await self.send(message)
            return True
        except (OSError, RuntimeError):
            return False

    def track_reply(self, task: "asyncio.Task") -> None:
        self.reply_tasks = [t for t in self.reply_tasks if not t.done()]
        self.reply_tasks.append(task)

    async def pump(self) -> None:
        """Drain the notification queue onto the socket, frame by frame."""
        while True:
            message = await self.queue.get()
            if message is _CLOSE:
                return
            started = perf_counter() if self.telemetry.enabled else 0.0
            try:
                await self.send(message)
            except (OSError, RuntimeError):
                # Dead peer: the read loop will notice and retire us; stop
                # pumping so the queue drains into the void via close().
                return
            if self.telemetry.enabled:
                self.telemetry.observe("service.notify_write", perf_counter() - started)
            self.counters.notifications_sent += 1

    def close(self) -> None:
        """Tear the session down (idempotent): pump, acks, queue, transport."""
        if self.closed:
            return
        self.closed = True
        if self.pump_task is not None:
            self.pump_task.cancel()
        for task in self.reply_tasks:
            if not task.done():
                task.cancel()
        # Free the queue so any producer blocked on put() resumes; the
        # drained messages go nowhere — the session is gone.
        while True:
            try:
                self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
        try:
            self.writer.close()
        except (OSError, RuntimeError):  # pragma: no cover - platform quirks
            pass


class MonitorServer:
    """Serves a monitor's full lifecycle over asyncio sockets.

    Example::

        server = MonitorServer(ContinuousMonitor(config), ServiceConfig())
        await server.start()
        print("listening on", server.port)
        ...
        await server.stop()
    """

    def __init__(self, monitor, config: Optional[ServiceConfig] = None) -> None:
        self._monitor = monitor
        self._config = config or ServiceConfig()
        if self._config.role != ROLE_MONITOR:
            raise ConfigurationError(
                f"MonitorServer serves the {ROLE_MONITOR!r} role; the "
                f"{self._config.role!r} role is launched with serve_shard_host()"
            )
        self._counters = ServiceCounters()
        # One recorder for the whole serving pipeline; the shared no-op
        # keeps every stage timer a single attribute read when disabled.
        if self._config.telemetry or self._config.metrics_port is not None:
            self._telemetry: Telemetry = Telemetry()
        else:
            self._telemetry = NULL_TELEMETRY
        self._registry: SubscriptionRegistry[_Session] = SubscriptionRegistry()
        self._sessions: Set[_Session] = set()
        self._server: Optional["asyncio.base_events.Server"] = None
        self._metrics_server: Optional["asyncio.base_events.Server"] = None
        self._loop_lag_task: Optional["asyncio.Task"] = None
        self._ingest_queue: Optional["asyncio.Queue"] = None
        self._ingest_task: Optional["asyncio.Task"] = None
        self._ingest_failure: Optional[BaseException] = None
        self._pending_documents = 0
        self._clock: Optional[float] = None
        self._batch_seq = 0
        self._next_session_id = 0
        self._stopping = False
        self._stopped = False
        self._ops = {
            protocol.OP_SUBSCRIBE: self._op_subscribe,
            protocol.OP_ATTACH: self._op_attach,
            protocol.OP_UNSUBSCRIBE: self._op_unsubscribe,
            protocol.OP_PUBLISH: self._op_publish,
            protocol.OP_PUBLISH_BATCH: self._op_publish_batch,
            protocol.OP_STATS: self._op_stats,
            protocol.OP_METRICS: self._op_metrics,
            protocol.OP_CHECKPOINT: self._op_checkpoint,
            protocol.OP_PING: self._op_ping,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listen socket and start the ingest pipeline."""
        if self._server is not None:
            raise ServiceError("server is already started")
        self._clock = getattr(self._monitor, "last_arrival", None)
        self._ingest_queue = asyncio.Queue()
        self._ingest_task = asyncio.create_task(self._ingest_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._config.host, port=self._config.port
        )
        if self._config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http,
                host=self._config.metrics_host,
                port=self._config.metrics_port,
            )
        if self._telemetry.enabled:
            self._loop_lag_task = asyncio.create_task(self._loop_lag_probe())

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients connect to."""
        return (self._config.host, self.port)

    @property
    def monitor(self):
        """The served monitor (read-mostly escape hatch)."""
        return self._monitor

    async def stop(self, reason: str = "server shutting down") -> None:
        """Graceful shutdown: drain, notify, checkpoint, close (idempotent).

        In order: stop accepting connections, drain the ingest queue
        through the pipeline, deliver outstanding publish acks, flush each
        subscriber's notification queue followed by a ``shutdown`` push,
        close every session — and finally close the monitor, taking a last
        checkpoint when it is durable and ``checkpoint_on_shutdown`` is
        set.  Each draining step is bounded by ``shutdown_timeout``.
        """
        if self._stopped or self._stopping:
            return
        self._stopping = True
        timeout = self._config.shutdown_timeout
        if self._loop_lag_task is not None:
            self._loop_lag_task.cancel()
            self._loop_lag_task = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._ingest_task is not None:
            assert self._ingest_queue is not None
            self._ingest_queue.put_nowait(_STOP)
            try:
                await asyncio.wait_for(self._ingest_task, timeout)
            except asyncio.TimeoutError:  # pragma: no cover - pathological peer
                self._ingest_task.cancel()
        reply_tasks = [
            task
            for session in self._sessions
            for task in session.reply_tasks
            if not task.done()
        ]
        if reply_tasks:
            await asyncio.wait(reply_tasks, timeout=timeout)
        if self._sessions:
            # In parallel: one stuck subscriber must not serialize the
            # whole shutdown — the wall clock is bounded by the worst
            # session, not the sum.
            await asyncio.gather(
                *[
                    self._flush_and_close(session, reason)
                    for session in list(self._sessions)
                ]
            )
        self._sessions.clear()
        try:
            if self._config.close_monitor:
                self._close_monitor()
        finally:
            # Even a failed monitor close leaves the server fully stopped
            # (sessions closed, pipeline drained) — a retried stop() must
            # not re-run the teardown half-way.
            self._stopped = True

    def _close_monitor(self) -> None:
        close = getattr(self._monitor, "close", None)
        if close is None:
            return
        if self._is_durable():
            self._monitor.close(checkpoint=self._config.checkpoint_on_shutdown)
        else:
            close()

    def _is_durable(self) -> bool:
        return hasattr(self._monitor, "checkpoint")

    async def _flush_and_close(self, session: _Session, reason: str) -> None:
        """Flush a session's queued notifications, push ``shutdown``, close."""
        timeout = self._config.shutdown_timeout
        try:
            await asyncio.wait_for(
                session.queue.put(protocol.shutdown_push(reason)), timeout
            )
            await asyncio.wait_for(session.queue.put(_CLOSE), timeout)
            if session.pump_task is not None:
                await asyncio.wait_for(asyncio.shield(session.pump_task), timeout)
        except (asyncio.TimeoutError, OSError, RuntimeError):
            pass
        self._retire_session(session)

    async def __aenter__(self) -> "MonitorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopping:
            writer.close()
            return
        if self._config.write_buffer_limit is not None:
            writer.transport.set_write_buffer_limits(
                high=self._config.write_buffer_limit
            )
        if self._config.send_buffer_bytes is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_SNDBUF,
                    self._config.send_buffer_bytes,
                )
        self._next_session_id += 1
        session = _Session(
            self._next_session_id,
            writer,
            self._config.subscriber_queue,
            self._config.max_frame_bytes,
            self._counters,
            telemetry=self._telemetry,
        )
        self._sessions.add(session)
        self._counters.subscribers_connected += 1
        session.pump_task = asyncio.create_task(session.pump())
        try:
            await session.send(protocol.hello_push(_SERVER_NAME))
            while True:
                message = await protocol.read_frame(
                    reader, self._config.max_frame_bytes
                )
                if message is None:
                    break
                await self._dispatch(session, message)
        except (ProtocolError, OSError, RuntimeError):
            # A torn frame or a vanished peer: nothing sensible to answer.
            pass
        finally:
            self._retire_session(session)
            self._sessions.discard(session)

    def _retire_session(self, session: _Session) -> None:
        """Detach and close a session (idempotent; queries stay registered)."""
        if session.retired:
            return
        session.retired = True
        self._registry.release_session(session)
        self._counters.subscribers_disconnected += 1
        session.close()

    async def _dispatch(self, session: _Session, message: Dict[str, object]) -> None:
        if session.retired:
            # The session was force-closed (slow-consumer disconnect) while
            # this frame was already buffered.  No reply can be delivered
            # and an attach/subscribe would orphan the query on a dead
            # session, so drop the request entirely.
            return
        op = message.get("op")
        request_id = message.get("id")
        if not isinstance(op, str) or not isinstance(request_id, int):
            raise ProtocolError("request must carry a string 'op' and an integer 'id'")
        handler = self._ops.get(op)
        if handler is None:
            self._counters.request_errors += 1
            await session.send_safe(
                protocol.error_reply(request_id, f"unknown op {op!r}")
            )
            return
        telemetry = self._telemetry
        if not telemetry.enabled:
            try:
                await handler(session, request_id, message)
            except ReproError as exc:
                self._counters.request_errors += 1
                await session.send_safe(protocol.error_reply(request_id, exc))
            return
        # The publish-receive stage: decode, validate and hand off (the
        # deferred ack is its own stage, service.publish_to_notify).
        telemetry.incr(f"service.requests.{op}")
        started = perf_counter()
        try:
            await handler(session, request_id, message)
        except ReproError as exc:
            self._counters.request_errors += 1
            await session.send_safe(protocol.error_reply(request_id, exc))
        finally:
            telemetry.observe(f"service.op.{op}", perf_counter() - started)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    async def _op_subscribe(self, session, request_id: int, message) -> None:
        vector = protocol.decode_vector(message)
        k = message.get("k")
        if k is not None and not isinstance(k, int):
            raise ProtocolError("'k' must be an integer")
        user = message.get("user")
        if user is not None and not isinstance(user, str):
            raise ServiceError("'user' must be a string")
        query = self._monitor.register_vector(vector, k=k, user=user)
        self._registry.attach(query.query_id, session)
        self._counters.subscribes += 1
        await session.send_safe(
            protocol.ok_reply(request_id, query_id=query.query_id, k=query.k)
        )

    async def _op_attach(self, session, request_id: int, message) -> None:
        query_id = self._require_query_id(message)
        try:
            self._monitor.top_k(query_id)
        except UnknownQueryError:
            raise ServiceError(f"query {query_id} is not registered") from None
        self._registry.attach(query_id, session)
        self._counters.attaches += 1
        await session.send_safe(protocol.ok_reply(request_id, query_id=query_id))

    async def _op_unsubscribe(self, session, request_id: int, message) -> None:
        query_id = self._require_query_id(message)
        owner = self._registry.owner(query_id)
        if owner is not None and owner is not session:
            raise ServiceError(
                f"query {query_id} is attached to another subscriber"
            )
        self._monitor.unregister(query_id)
        self._registry.detach(query_id, session)
        self._counters.unsubscribes += 1
        await session.send_safe(protocol.ok_reply(request_id, query_id=query_id))

    @staticmethod
    def _require_query_id(message: Dict[str, object]) -> int:
        query_id = message.get("query_id")
        if not isinstance(query_id, int):
            raise ProtocolError("request must carry an integer 'query_id'")
        return query_id

    async def _op_publish(self, session, request_id: int, message) -> None:
        published = protocol.decode_published_document(message.get("doc") or {})
        self._enqueue_publish(session, request_id, [published], single=True)

    async def _op_publish_batch(self, session, request_id: int, message) -> None:
        encoded = message.get("docs")
        if not isinstance(encoded, list) or not encoded:
            raise ProtocolError("'docs' must be a non-empty array")
        published = [protocol.decode_published_document(doc) for doc in encoded]
        self._enqueue_publish(session, request_id, published, single=False)

    def _enqueue_publish(
        self, session, request_id: int, published, single: bool
    ) -> None:
        """Validate, queue for the pipeline, and schedule the deferred ack."""
        if self._stopping:
            raise ServiceError("server is stopping; publish refused")
        if self._ingest_failure is not None:
            raise ServiceError(
                f"ingestion pipeline failed: {self._ingest_failure}; "
                "the server must be restarted"
            )
        if (
            self._pending_documents + len(published)
            > self._config.max_pending_documents
        ):
            raise ServiceError(
                f"ingest backlog exceeds {self._config.max_pending_documents} "
                "documents; retry later"
            )
        # Document construction validates the vector (normalization,
        # positive weights) *before* anything reaches the pipeline.
        documents = [
            Document(
                doc_id=item.doc_id,
                vector=item.vector,
                arrival_time=item.arrival_time,
                text=item.text,
            )
            for item in published
        ]
        assert self._ingest_queue is not None, "server is not started"
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        self._pending_documents += len(documents)
        self._counters.publishes += 1
        enqueued_at = perf_counter() if self._telemetry.enabled else 0.0
        if self._telemetry.enabled:
            self._telemetry.set_gauge(
                "service.pending_documents", float(self._pending_documents)
            )
        self._ingest_queue.put_nowait(_IngestItem(documents, future, enqueued_at))
        # The ack is resolved by the pipeline after the documents' batches
        # are processed; replying from a separate task keeps this
        # connection's read loop free to submit further publishes — which
        # is exactly what the micro-batcher coalesces.
        session.track_reply(
            asyncio.create_task(
                self._publish_reply(session, request_id, future, single)
            )
        )

    async def _publish_reply(
        self, session, request_id: int, future: "asyncio.Future", single: bool
    ) -> None:
        try:
            arrivals, batches = await future
        except ReproError as exc:
            self._counters.request_errors += 1
            await session.send_safe(protocol.error_reply(request_id, exc))
            return
        if single:
            payload = {"arrival": arrivals[0], "batch": batches[0]}
        else:
            payload = {"arrivals": arrivals, "batches": batches}
        await session.send_safe(protocol.ok_reply(request_id, **payload))

    async def _op_stats(self, session, request_id: int, message) -> None:
        await session.send_safe(
            protocol.ok_reply(request_id, stats=self.stats_snapshot())
        )

    async def _op_metrics(self, session, request_id: int, message) -> None:
        await session.send_safe(
            protocol.ok_reply(request_id, metrics=self.metrics_snapshot())
        )

    async def _op_checkpoint(self, session, request_id: int, message) -> None:
        if not self._is_durable():
            raise ServiceError("monitor is not durable; checkpoint unavailable")
        lsn = self._monitor.checkpoint()
        await session.send_safe(protocol.ok_reply(request_id, lsn=lsn))

    async def _op_ping(self, session, request_id: int, message) -> None:
        await session.send_safe(protocol.ok_reply(request_id))

    def stats_snapshot(self) -> Dict[str, object]:
        """The ``stats`` op payload (see docs/service.md for the contract)."""
        replication = getattr(self._monitor, "replication_summary", None)
        self._counters.adopt_replication(replication)
        snapshot: Dict[str, object] = {
            "protocol": protocol.PROTOCOL_VERSION,
            "server": _SERVER_NAME,
            "engine": self._monitor.statistics.snapshot(),
            "service": self._counters.snapshot(),
            "num_queries": self._monitor.num_queries,
            "attached_queries": len(self._registry),
            "subscribers": len(self._sessions),
            "batches": self._batch_seq,
            "clock": self._clock,
            "durable": self._is_durable(),
            "policy": self._config.slow_consumer_policy,
        }
        if replication is not None:
            snapshot["replication"] = replication
        return snapshot

    @property
    def counters(self) -> ServiceCounters:
        """The served-traffic counters (the ``service`` section of stats)."""
        return self._counters

    @property
    def telemetry(self) -> Telemetry:
        """The serving pipeline's lap recorder (the shared no-op when off)."""
        return self._telemetry

    def _merged_telemetry(self) -> Dict[str, object]:
        """Server-pipeline laps merged with the engine's own telemetry.

        Each scrape collects *full current snapshots* and merges them —
        the same fresh-collection discipline ``stats`` uses for counters —
        so the merged histograms are exactly the histograms of the
        combined sample streams, whatever executor hosts the shards.
        """
        merged = Telemetry.from_snapshot(self._telemetry.snapshot())
        engine_snapshot = getattr(self._monitor, "telemetry_snapshot", None)
        if engine_snapshot is not None:
            merged.merge_snapshot(engine_snapshot())
        return merged.snapshot()

    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``metrics`` op payload (see docs/observability.md).

        ``telemetry`` is the mergeable wire form (histograms as sparse
        bucket counts, counters, gauges); ``summary`` pre-computes the
        publish→notify and per-op percentiles operators usually want.
        """
        self._counters.telemetry_scrapes += 1
        snapshot = self._merged_telemetry()
        summary: Dict[str, object] = {}
        histograms = snapshot.get("histograms")
        if isinstance(histograms, dict):
            for name, encoded in histograms.items():
                summary[name] = LatencyHistogram.from_snapshot(encoded).summary()
        return {
            "enabled": self._telemetry.enabled,
            "telemetry": snapshot,
            "service": self._counters.snapshot(),
            "summary": summary,
        }

    async def _loop_lag_probe(self, interval: float = 0.25) -> None:
        """Sample event-loop lag: how late a timed sleep actually fires.

        The overshoot of ``asyncio.sleep`` is the time ready callbacks
        (frame parsing, engine probes) held the loop — the service twin of
        a GC-pause gauge.
        """
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(interval)
            lag = max(0.0, loop.time() - before - interval)
            self._telemetry.set_gauge("service.event_loop_lag", lag)
            self._telemetry.observe("service.event_loop_lag", lag)

    # ------------------------------------------------------------------ #
    # The /metrics exposition endpoint
    # ------------------------------------------------------------------ #

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound ``/metrics`` port (``None`` when not serving it)."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A deliberately minimal HTTP/1.0-style responder for scrapers.

        One request per connection: parse the request line, drain headers,
        answer ``GET /metrics`` with Prometheus text exposition, everything
        else with 404 — no keep-alive, no chunking, no dependencies.
        """
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            while True:
                header = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if header in (b"", b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1].split("?", 1)[0] if len(parts) >= 2 else ""
            if len(parts) >= 2 and parts[0] == "GET" and path == "/metrics":
                self._counters.telemetry_scrapes += 1
                body = render_prometheus(
                    self._merged_telemetry(),
                    service_counters=self._counters.snapshot(),
                ).encode("utf-8")
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"not found\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (asyncio.TimeoutError, OSError, RuntimeError, ValueError):
            pass
        finally:
            try:
                writer.close()
            except (OSError, RuntimeError):  # pragma: no cover - platform quirks
                pass

    # ------------------------------------------------------------------ #
    # The ingest pipeline
    # ------------------------------------------------------------------ #

    async def _ingest_loop(self) -> None:
        """Drain the ingest queue into micro-batched ``process_batch`` calls."""
        queue = self._ingest_queue
        assert queue is not None
        stopping = False
        while not stopping:
            item = await queue.get()
            if item is _STOP:
                break
            pending = [item]
            total = len(item.documents)
            yields = 0
            # Coalesce: everything already queued joins immediately; a few
            # event-loop yields let in-flight publish handlers land too.
            while total < self._config.max_batch and yields <= self._config.linger_yields:
                if queue.empty():
                    yields += 1
                    if yields <= self._config.linger_yields:
                        await asyncio.sleep(0)
                    continue
                nxt = queue.get_nowait()
                if nxt is _STOP:
                    stopping = True
                    break
                pending.append(nxt)
                total += len(nxt.documents)
            await self._ingest(pending)

    async def _ingest(self, pending: List[_IngestItem]) -> None:
        """Stamp, batch, process and fan out one drained set of publishes."""
        if self._ingest_failure is not None:
            # The pipeline was poisoned by an earlier drain; items already
            # queued behind the failure must not be applied to an engine
            # whose state can no longer be trusted.
            for item in pending:
                self._pending_documents -= len(item.documents)
                item.future.set_exception(
                    ServiceError(
                        f"ingestion pipeline failed: {self._ingest_failure}; "
                        "the server must be restarted"
                    )
                )
            return
        telemetry = self._telemetry
        drain_started = perf_counter() if telemetry.enabled else 0.0
        accepted: List[Tuple[_IngestItem, List[Document]]] = []
        for item in pending:
            self._pending_documents -= len(item.documents)
            if telemetry.enabled and item.enqueued_at:
                # Queue-wait + micro-batch linger: enqueue to drain start.
                telemetry.observe(
                    "service.batch_enqueue", drain_started - item.enqueued_at
                )
            try:
                stamped = self._stamp(item.documents)
            except ReproError as exc:
                item.future.set_exception(exc)
                continue
            accepted.append((item, stamped))
        documents = [doc for _, stamped in accepted for doc in stamped]
        # Per-item document offsets into the concatenated drain, so acks
        # resolve as soon as an item's last document has been processed —
        # a later chunk's failure must not disown work already committed.
        offsets: List[int] = []
        total = 0
        for _, stamped in accepted:
            offsets.append(total)
            total += len(stamped)
        results: List[Tuple[float, int]] = []
        resolved = 0

        def resolve_ready() -> None:
            nonlocal resolved
            while resolved < len(accepted):
                item, stamped = accepted[resolved]
                end = offsets[resolved] + len(stamped)
                if len(results) < end:
                    return
                slice_ = results[offsets[resolved] : end]
                if telemetry.enabled and item.enqueued_at:
                    # End-to-end publish latency: enqueue to ack-ready,
                    # after the batch was processed and fanned out.
                    telemetry.observe(
                        "service.publish_to_notify",
                        perf_counter() - item.enqueued_at,
                    )
                item.future.set_result(
                    (
                        [arrival for arrival, _ in slice_],
                        [batch for _, batch in slice_],
                    )
                )
                resolved += 1

        try:
            for start in range(0, len(documents), self._config.max_batch):
                chunk = documents[start : start + self._config.max_batch]
                self._batch_seq += 1
                if telemetry.enabled:
                    probe_started = perf_counter()
                    updates = self._monitor.process_batch(chunk)
                    telemetry.observe(
                        "service.engine_probe", perf_counter() - probe_started
                    )
                else:
                    updates = self._monitor.process_batch(chunk)
                self._counters.batches_processed += 1
                self._counters.documents_ingested += len(chunk)
                for document in chunk:
                    results.append((document.arrival_time, self._batch_seq))
                await self._fan_out(self._batch_seq, updates)
                resolve_ready()
        except Exception as exc:
            # The engine (or its WAL) failed mid-drain: its state can no
            # longer be trusted to advance, so poison the pipeline.  Items
            # whose documents all committed in earlier chunks were already
            # acked above; the rest fail with an honest warning — their
            # documents may be partially applied (and, when durable,
            # partially journaled), so a blind retry can duplicate them.
            self._ingest_failure = exc
            for item, _ in accepted[resolved:]:
                if not item.future.done():
                    item.future.set_exception(
                        ServiceError(
                            f"ingestion failed mid-drain: {exc}; this "
                            "publish may be partially applied"
                        )
                    )

    def _stamp(self, documents: List[Document]) -> List[Document]:
        """Assign monotone arrival times; all-or-nothing per publish.

        Documents published without an arrival time advance the stream
        clock by ``arrival_interval``; explicit arrival times are accepted
        when they respect stream order.  A violation raises *before* the
        clock moves, so a rejected publish leaves no trace.
        """
        clock = self._clock
        stamped: List[Document] = []
        for document in documents:
            if document.arrival_time is None:
                arrival = (
                    0.0 if clock is None else clock
                ) + self._config.arrival_interval
                document = document.with_arrival_time(arrival)
            else:
                arrival = document.arrival_time
                if clock is not None and arrival < clock:
                    raise ServiceError(
                        f"document {document.doc_id} arrives at {arrival}, "
                        f"before the stream clock at {clock}"
                    )
            clock = arrival
            stamped.append(document)
        self._clock = clock
        return stamped

    async def _fan_out(self, batch_seq: int, updates) -> None:
        """Route one batch's coalesced updates to their subscribers."""
        policy = self._config.slow_consumer_policy
        for update in updates:
            session = self._registry.owner(update.query_id)
            if session is None or session.closed:
                continue
            message = protocol.update_push(batch_seq, update)
            if policy == POLICY_BLOCK:
                # Backpressure: the pipeline (and with it every publisher's
                # ack) waits for the slow consumer.  session.close() drains
                # the queue, so a dying session unblocks this put.
                await session.queue.put(message)
            elif policy == POLICY_DROP:
                if session.queue.full():
                    try:
                        session.queue.get_nowait()
                        self._counters.notifications_dropped += 1
                    except asyncio.QueueEmpty:  # pragma: no cover - pump raced
                        pass
                session.queue.put_nowait(message)
            else:  # POLICY_DISCONNECT
                if session.queue.full():
                    self._counters.slow_disconnects += 1
                    self._retire_session(session)
                    continue
                session.queue.put_nowait(message)
            self._counters.notifications_enqueued += 1
        if self._telemetry.enabled and updates:
            self._telemetry.set_gauge(
                "service.subscriber_queue_depth",
                float(
                    max(
                        (s.queue.qsize() for s in self._sessions if not s.closed),
                        default=0,
                    )
                ),
            )
