"""The subscription registry: which session receives which query's updates.

Query *registration* lives in the monitor (and, when durable, in the WAL);
the registry only tracks the volatile push routing — query id → connected
session.  A query therefore survives its subscriber's disconnect: the
monitor keeps maintaining its top-k, nobody receives the pushes, and a
reconnecting client claims the stream again with the ``attach`` op (the
graceful-restart story relies on exactly this split: the engine state is
recovered from disk, the routing is re-established by the clients).
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, TypeVar

from repro.exceptions import ServiceError
from repro.types import QueryId

SessionT = TypeVar("SessionT")


class SubscriptionRegistry(Generic[SessionT]):
    """Maps query ids to the session that receives their notifications.

    Each query has at most one owning session (notifications are unicast —
    a query *is* one user's subscription); a session owns any number of
    queries.  Claiming a query owned by another live session is refused:
    subscriptions are capabilities, and silently stealing one would
    redirect a user's notification stream.
    """

    def __init__(self) -> None:
        self._owners: Dict[QueryId, SessionT] = {}
        self._queries: Dict[SessionT, List[QueryId]] = {}

    def attach(self, query_id: QueryId, session: SessionT) -> None:
        """Route a query's notifications to ``session``.

        Idempotent for the owning session; raises :class:`ServiceError`
        when another session currently owns the query.
        """
        owner = self._owners.get(query_id)
        if owner is session:
            return
        if owner is not None:
            raise ServiceError(
                f"query {query_id} is already attached to another subscriber"
            )
        self._owners[query_id] = session
        self._queries.setdefault(session, []).append(query_id)

    def detach(self, query_id: QueryId, session: SessionT) -> None:
        """Stop routing a query to ``session`` (no-op when not the owner)."""
        if self._owners.get(query_id) is session:
            del self._owners[query_id]
            self._queries[session].remove(query_id)
            if not self._queries[session]:
                del self._queries[session]

    def release_session(self, session: SessionT) -> List[QueryId]:
        """Drop every attachment of a closing session; returns the query ids."""
        query_ids = self._queries.pop(session, [])
        for query_id in query_ids:
            del self._owners[query_id]
        return query_ids

    def owner(self, query_id: QueryId) -> Optional[SessionT]:
        """The session receiving this query's pushes, or ``None``."""
        return self._owners.get(query_id)

    def queries_of(self, session: SessionT) -> List[QueryId]:
        """The query ids currently attached to ``session``."""
        return list(self._queries.get(session, []))

    def __len__(self) -> int:
        return len(self._owners)

    def __contains__(self, query_id: QueryId) -> bool:
        return query_id in self._owners
