"""The wire protocol of the serving layer: length-prefixed JSON frames.

One *frame* is a 4-byte big-endian unsigned payload length followed by the
payload: one JSON object encoded with the persistence codec's canonical
dumps (sorted keys, no whitespace, ``NaN`` rejected, floats as ``repr`` —
so scores survive the wire bit-for-bit, exactly as they survive the WAL).
Three message shapes flow over a connection:

* **requests** (client → server): ``{"op": <str>, "id": <int>, ...}`` —
  the ``id`` is a client-chosen correlation token;
* **replies** (server → client): ``{"reply": <id>, "ok": true, ...}`` or
  ``{"reply": <id>, "ok": false, "error": <str>}`` — replies may arrive
  out of order relative to other requests (``publish`` acks are resolved
  by the ingest pipeline), the ``id`` correlates them;
* **pushes** (server → client, unsolicited): ``{"push": <kind>, ...}`` —
  ``hello`` once on connect, ``update`` per result notification,
  ``shutdown`` on graceful server stop.

Documents and query vectors use the persistence codec's parallel-array
encoding (``"t"``: term ids, ``"w"``: weights), so the service, the WAL
and the checkpoints speak one serialization.  The full message catalogue
is documented in ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, NamedTuple, Optional, Tuple

from repro.core.results import BatchUpdate, ResultEntry
from repro.exceptions import ProtocolError
from repro.persistence import codec

#: Version stamped into the ``hello`` push; a client refuses a mismatch.
PROTOCOL_VERSION = 1

#: Default cap on one frame's payload.  A publish batch of 1024 dense
#: documents is ~2 MiB; 16 MiB leaves headroom without letting a garbage
#: length prefix allocate the moon.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

# Request operations.
OP_SUBSCRIBE = "subscribe"
OP_ATTACH = "attach"
OP_UNSUBSCRIBE = "unsubscribe"
OP_PUBLISH = "publish"
OP_PUBLISH_BATCH = "publish_batch"
OP_STATS = "stats"
OP_METRICS = "metrics"
OP_CHECKPOINT = "checkpoint"
OP_PING = "ping"

# Push kinds.
PUSH_HELLO = "hello"
PUSH_UPDATE = "update"
PUSH_SHUTDOWN = "shutdown"


# ---------------------------------------------------------------------- #
# Framing
# ---------------------------------------------------------------------- #


def encode_frame(message: Dict[str, object], max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One message as length-prefixed canonical JSON bytes."""
    payload = codec.canonical_dumps(message).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, object]:
    """Parse one frame payload; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    An EOF *inside* a frame (torn header or payload) raises
    :class:`ProtocolError` — the peer vanished mid-message.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit {max_frame_bytes})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside a frame payload") from exc
    return decode_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter,
    message: Dict[str, object],
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Write one frame and drain (so backpressure reaches the caller)."""
    writer.write(encode_frame(message, max_frame_bytes))
    await writer.drain()


# ---------------------------------------------------------------------- #
# Message constructors
# ---------------------------------------------------------------------- #


def request(op: str, request_id: int, **fields: object) -> Dict[str, object]:
    message: Dict[str, object] = {"op": op, "id": int(request_id)}
    message.update(fields)
    return message


def ok_reply(request_id: int, **fields: object) -> Dict[str, object]:
    message: Dict[str, object] = {"reply": int(request_id), "ok": True}
    message.update(fields)
    return message


def error_reply(request_id: int, error: object) -> Dict[str, object]:
    return {"reply": int(request_id), "ok": False, "error": str(error)}


def hello_push(server: str) -> Dict[str, object]:
    return {"push": PUSH_HELLO, "version": PROTOCOL_VERSION, "server": server}


def shutdown_push(reason: str) -> Dict[str, object]:
    return {"push": PUSH_SHUTDOWN, "reason": reason}


def encode_vector(vector: Dict[int, float]) -> Dict[str, object]:
    """A sparse vector as the codec's parallel-array shape."""
    return {"t": list(vector.keys()), "w": list(vector.values())}


def decode_vector(message: Dict[str, object]) -> Dict[int, float]:
    terms = message.get("t")
    weights = message.get("w")
    if not isinstance(terms, list) or not isinstance(weights, list) or len(terms) != len(weights):
        raise ProtocolError("vector must carry parallel 't'/'w' arrays")
    try:
        return {int(term): float(weight) for term, weight in zip(terms, weights)}
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"vector terms/weights must be numeric: {exc}") from exc


def update_push(batch: int, update: BatchUpdate) -> Dict[str, object]:
    """One coalesced result notification as a push message.

    ``entries`` are ``[doc_id, score]`` pairs, best first; ``evicted`` the
    net-evicted doc ids, ascending — the exact content of the
    :class:`~repro.core.results.BatchUpdate`, plus the ingestion batch
    sequence number it belongs to.
    """
    return {
        "push": PUSH_UPDATE,
        "batch": int(batch),
        "query_id": int(update.query_id),
        "entries": [[int(entry.doc_id), float(entry.score)] for entry in update.entries],
        "evicted": [int(doc_id) for doc_id in update.evicted_doc_ids],
    }


class Notification(NamedTuple):
    """A decoded ``update`` push: one query's net result change.

    ``batch`` is the server-assigned ingestion batch sequence number
    (monotone within one server run); ``entries`` and ``evicted_doc_ids``
    mirror :class:`~repro.core.results.BatchUpdate`.
    """

    batch: int
    query_id: int
    entries: Tuple[ResultEntry, ...]
    evicted_doc_ids: Tuple[int, ...]


def decode_update(message: Dict[str, object]) -> Notification:
    try:
        return Notification(
            batch=int(message["batch"]),  # type: ignore[arg-type]
            query_id=int(message["query_id"]),  # type: ignore[arg-type]
            entries=tuple(
                ResultEntry(int(doc_id), float(score))
                for doc_id, score in message["entries"]  # type: ignore[union-attr]
            ),
            evicted_doc_ids=tuple(int(doc_id) for doc_id in message["evicted"]),  # type: ignore[union-attr]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed update push: {exc}") from exc


def encode_published_document(
    doc_id: int,
    vector: Dict[int, float],
    arrival_time: Optional[float] = None,
    text: Optional[str] = None,
) -> Dict[str, object]:
    """A to-be-published document (``arrival_time=None`` = server stamps)."""
    encoded: Dict[str, object] = {"i": int(doc_id), "a": arrival_time}
    encoded.update(encode_vector(vector))
    if text is not None:
        encoded["x"] = text
    return encoded


class PublishedDocument(NamedTuple):
    """A decoded publish payload, before arrival stamping."""

    doc_id: int
    vector: Dict[int, float]
    arrival_time: Optional[float]
    text: Optional[str]


def decode_published_document(message: object) -> PublishedDocument:
    if not isinstance(message, dict):
        raise ProtocolError("published document must be a JSON object")
    if "i" not in message:
        raise ProtocolError("published document is missing its 'i' (doc id)")
    arrival = message.get("a")
    text = message.get("x")
    if text is not None and not isinstance(text, str):
        raise ProtocolError("published document 'x' (text) must be a string")
    try:
        doc_id = int(message["i"])  # type: ignore[arg-type]
        arrival_time = None if arrival is None else float(arrival)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"published document fields must be numeric: {exc}") from exc
    return PublishedDocument(
        doc_id=doc_id,
        vector=decode_vector(message),
        arrival_time=arrival_time,
        text=text,
    )
