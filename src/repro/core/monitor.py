"""The continuous-monitoring server facade.

:class:`ContinuousMonitor` is the public entry point most applications use:
it owns the processing algorithm (MRIO by default), the decay model, the
optional window-expiration manager and — when a vectorizer is supplied — the
text pipeline that turns user keywords and raw document text into normalized
vectors.

Typical usage::

    monitor = ContinuousMonitor(MonitorConfig(algorithm="mrio", lam=1e-3))
    query = monitor.register_vector({term_a: 0.8, term_b: 0.6}, k=10)
    for document in stream:
        updates = monitor.process(document)
        for update in updates:
            notify_user(update.query_id, update.doc_id)

High-throughput ingestion goes through the batch fast path instead::

    for batch in BatchingStream(stream, max_batch=64):
        for update in monitor.process_batch(batch):
            notify_user(update.query_id, update.entries)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.base import StreamAlgorithm, UpdateListener
from repro.core.config import MonitorConfig
from repro.core.expiration import ExpirationManager
from repro.core.factory import create_algorithm
from repro.core.results import BatchUpdate, ResultEntry, ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.exceptions import ConfigurationError
from repro.metrics.counters import EventCounters
from repro.obs.telemetry import Telemetry
from repro.queries.query import Query
from repro.text.similarity import l2_normalize
from repro.text.vectorizer import Vectorizer
from repro.types import QueryId, SparseVector


class ContinuousMonitor:
    """Hosts continuous top-k queries and refreshes them on every stream event.

    Example::

        monitor = ContinuousMonitor(MonitorConfig(algorithm="mrio"))
        query = monitor.register_vector({7: 0.8, 9: 0.6}, k=10)
        monitor.process(document)                  # per-event ingestion
        monitor.process_batch(batch)               # batched fast path
        entries = monitor.top_k(query.query_id)    # best first
    """

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        algorithm: Optional[StreamAlgorithm] = None,
        vectorizer: Optional[Vectorizer] = None,
    ) -> None:
        self.config = config or MonitorConfig()
        if algorithm is not None:
            self.algorithm = algorithm
        else:
            decay = ExponentialDecay(
                lam=self.config.lam, max_amplification=self.config.max_amplification
            )
            kwargs: Dict[str, object] = {}
            if self.config.algorithm.lower() == "mrio":
                kwargs["ub_variant"] = self.config.ub_variant
            self.algorithm = create_algorithm(self.config.algorithm, decay, **kwargs)
        if self.config.telemetry and not self.algorithm.telemetry.enabled:
            self.algorithm.telemetry = Telemetry()
        self.vectorizer = vectorizer
        self._expiration: Optional[ExpirationManager] = None
        if self.config.window_horizon is not None:
            self._expiration = ExpirationManager(self.algorithm, self.config.window_horizon)
            self.algorithm.add_update_listener(self._expiration.on_result_update)
        self._next_query_id = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """A no-op, deliberately: the in-memory engine holds no external
        resources.  It exists so that every monitor flavour
        (:class:`ContinuousMonitor`, :class:`~repro.runtime.sharded.ShardedMonitor`,
        :class:`~repro.persistence.durable.DurableMonitor`) can be managed
        uniformly, e.g. by the serving layer or a ``with`` block.  Reads
        and writes keep working after ``close()``."""

    def __enter__(self) -> "ContinuousMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Query registration
    # ------------------------------------------------------------------ #

    def _take_query_id(self) -> QueryId:
        query_id = self._next_query_id
        self._next_query_id += 1
        return query_id

    def register_query(self, query: Query) -> Query:
        """Register a fully formed :class:`Query` (caller-assigned id)."""
        self.algorithm.register(query)
        self._next_query_id = max(self._next_query_id, query.query_id + 1)
        return query

    def register_queries(self, queries: Iterable[Query]) -> List[Query]:
        return [self.register_query(query) for query in queries]

    def register_vector(
        self, vector: SparseVector, k: Optional[int] = None, user: Optional[str] = None
    ) -> Query:
        """Register a query from a (possibly unnormalized) sparse vector."""
        query = Query(
            query_id=self._take_query_id(),
            vector=l2_normalize(vector),
            k=k or self.config.default_k,
            user=user,
        )
        self.algorithm.register(query)
        return query

    def register_keywords(
        self,
        keywords: Iterable[str],
        k: Optional[int] = None,
        user: Optional[str] = None,
    ) -> Query:
        """Register a query from raw keywords (requires a vectorizer)."""
        if self.vectorizer is None:
            raise ConfigurationError(
                "register_keywords requires a Vectorizer; pass one to the monitor"
            )
        vector = self.vectorizer.vectorize_keywords(keywords)
        if not vector:
            raise ConfigurationError(
                "the supplied keywords produced an empty vector (all stopwords "
                "or unknown terms)"
            )
        return self.register_vector(vector, k=k, user=user)

    def unregister(self, query_id: QueryId) -> Query:
        """Remove a continuous query from the monitor."""
        return self.algorithm.unregister(query_id)

    @property
    def num_queries(self) -> int:
        return self.algorithm.num_queries

    # ------------------------------------------------------------------ #
    # Stream processing
    # ------------------------------------------------------------------ #

    def process(self, document: Document) -> List[ResultUpdate]:
        """Process one stream event; returns the result updates it caused."""
        updates = self.algorithm.process(document)
        if self._expiration is not None:
            self._expiration.observe(document)
            assert document.arrival_time is not None
            self._expiration.expire(document.arrival_time)
        return updates

    def process_text(self, doc_id: int, text: str, arrival_time: float) -> List[ResultUpdate]:
        """Vectorize raw text and process it (requires a vectorizer)."""
        if self.vectorizer is None:
            raise ConfigurationError(
                "process_text requires a Vectorizer; pass one to the monitor"
            )
        vector = self.vectorizer.vectorize_text(text)
        if not vector:
            return []
        document = Document(
            doc_id=doc_id, vector=vector, arrival_time=arrival_time, text=text
        )
        return self.process(document)

    def process_stream(
        self, documents: Iterable[Document], limit: Optional[int] = None
    ) -> List[ResultUpdate]:
        """Process a sequence (or a bounded prefix) of stream documents
        through the per-event path."""
        updates: List[ResultUpdate] = []
        for count, document in enumerate(documents):
            if limit is not None and count >= limit:
                break
            updates.extend(self.process(document))
        return updates

    def process_batch(self, documents: Sequence[Document]) -> List[BatchUpdate]:
        """Process an arrival-ordered batch of documents as one unit.

        This is the high-throughput ingestion path: decay renormalization and
        timing run once per batch, the algorithm reuses its traversal
        structures across the batch's documents, and the returned updates are
        coalesced to at most one :class:`BatchUpdate` per affected query.
        Window expiration (when configured) runs once at the batch boundary;
        because expiration re-evaluates affected queries over the live
        window, the final top-k state matches per-event processing.
        """
        docs = documents if isinstance(documents, list) else list(documents)
        updates = self.algorithm.process_batch(docs)
        if self._expiration is not None and docs:
            for document in docs:
                self._expiration.observe(document)
            assert docs[-1].arrival_time is not None
            self._expiration.expire(docs[-1].arrival_time)
        return updates

    def process_batches(
        self, batches: Iterable[Sequence[Document]]
    ) -> List[BatchUpdate]:
        """Drain an iterable of batches (e.g. a
        :class:`~repro.documents.stream.BatchingStream`) through
        :meth:`process_batch`."""
        updates: List[BatchUpdate] = []
        for batch in batches:
            updates.extend(self.process_batch(batch))
        return updates

    # ------------------------------------------------------------------ #
    # Results and diagnostics
    # ------------------------------------------------------------------ #

    def top_k(self, query_id: QueryId) -> List[ResultEntry]:
        """The current top-k of a query, best first."""
        return self.algorithm.top_k(query_id)

    def threshold(self, query_id: QueryId) -> float:
        """The query's current S_k (0.0 while fewer than k documents match)."""
        return self.algorithm.threshold(query_id)

    def all_results(self) -> Dict[QueryId, List[ResultEntry]]:
        """A snapshot of every query's current result."""
        return {
            query_id: self.algorithm.top_k(query_id)
            for query_id in self.algorithm.queries
        }

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback invoked for every result update."""
        self.algorithm.add_update_listener(listener)

    @property
    def statistics(self) -> EventCounters:
        return self.algorithm.counters

    @property
    def response_times(self) -> List[float]:
        """Per-event processing time in seconds."""
        return self.algorithm.response_times

    @property
    def batch_response_times(self) -> List[tuple]:
        """One ``(batch_size, elapsed_seconds)`` pair per processed batch."""
        return self.algorithm.batch_response_times

    @property
    def telemetry(self) -> Telemetry:
        """The engine's lap recorder (the shared no-op when disabled)."""
        return self.algorithm.telemetry

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The engine's telemetry wire dict (empty when disabled)."""
        return self.algorithm.telemetry.snapshot()

    @property
    def live_window_size(self) -> Optional[int]:
        """Number of live documents when a window horizon is configured."""
        if self._expiration is None:
            return None
        return self._expiration.live_documents

    @property
    def last_arrival(self) -> Optional[float]:
        """Arrival time of the most recent event (``None`` before the first)."""
        return self.algorithm.last_arrival

    def renormalize(self, new_origin: float) -> float:
        """Rebase the decay origin explicitly; returns the rescale factor.

        The engine renormalizes by itself whenever amplification exceeds the
        configured bound; this entry point exists for operational rebases
        (e.g. before archiving scores) and is journaled as its own record by
        the durability layer.
        """
        return self.algorithm.renormalize(new_origin)

    @property
    def next_query_id(self) -> int:
        """The id the next ``register_vector``/``register_keywords`` will use."""
        return self._next_query_id

    def ensure_next_query_id(self, minimum: int) -> None:
        """Never auto-assign a query id below ``minimum``.

        Recovery uses this so ids of queries that were registered and later
        unregistered are not reissued after a restart.
        """
        self._next_query_id = max(self._next_query_id, minimum)

    def describe(self) -> Dict[str, object]:
        info = self.algorithm.describe()
        info["window_horizon"] = self.config.window_horizon
        return info

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """Capture the full engine state (plus the live window if any).

        The capture is what the sharded runtime moves between engine shards
        when rebalancing; restoring it into a fresh monitor resumes the
        stream exactly where this one stopped.
        """
        state = self.algorithm.snapshot()
        if self._expiration is not None:
            state["expiration"] = self._expiration.snapshot()
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`snapshot` capture into this monitor."""
        self.algorithm.restore(state)
        if self._expiration is not None and "expiration" in state:
            self._expiration.restore(state["expiration"])  # type: ignore[arg-type]
        self._next_query_id = max(
            (query_id + 1 for query_id in self.algorithm.queries),
            default=self._next_query_id,
        )
