"""RIO — Reverse ID-Ordering (the paper's preliminary method, Sec. 4).

RIO introduces the ID-ordering paradigm that MRIO refines: the registered
queries live in an ID-ordered inverted file (:mod:`repro.index.query_index`)
and every arriving document is probed against it with the shared pivot loop
of :class:`~repro.core.idordering.ReverseIDOrderingBase`.

Its per-term upper bound (Eq. 2) is the maximum normalized preference
``max_q w_j / S_k(q)`` over the *entire* posting list, maintained
incrementally by :class:`~repro.core.bounds.GlobalMaxBounds`.  Relative to
MRIO this makes RIO cheaper per bound lookup but far less selective: one
hard-to-satisfy query anywhere in a list inflates the bound for every zone,
so cursor jumps are shorter and more queries are fully evaluated.  Because
the global bound covers every remaining query id, a failed pivot search
terminates the event (MRIO's local bound, by contrast, only prunes the
current zone — see :mod:`repro.core.mrio`).

RIO is kept both as the paper's baseline for MRIO's ablations and as the
reference implementation of the paradigm without zone machinery.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bounds import GlobalMaxBounds, NEG_INF
from repro.core.cursors import ListCursor
from repro.core.idordering import ReverseIDOrderingBase
from repro.core.registry import register_algorithm
from repro.documents.decay import ExponentialDecay


@register_algorithm("rio")
class RIOAlgorithm(ReverseIDOrderingBase):
    """Reverse ID-Ordering with the global per-list bound (Eq. 2).

    Example::

        algorithm = RIOAlgorithm(ExponentialDecay(lam=1e-3))
        algorithm.register(Query(query_id=0, vector={3: 1.0}, k=5))
        updates = algorithm.process(document)   # or process_batch([...])
    """

    name = "rio"
    #: The global bound covers every query id at or after the first cursor,
    #: so a failed pivot search means no remaining query can be affected.
    prunes_all_on_no_pivot = True

    def __init__(self, decay: Optional[ExponentialDecay] = None) -> None:
        super().__init__(decay)

    def _make_bounds(self) -> GlobalMaxBounds:
        return GlobalMaxBounds(self.index, self.results)

    def _prepare_cursors(self, cursors: List[ListCursor], amplification: float) -> None:
        # The per-list maximum normalized preference is snapshotted once per
        # document (pre-multiplied by f_j and the amplification), making the
        # pivot search a plain running sum.  Thresholds can only grow while
        # the document is processed, so the snapshot stays an upper bound.
        for cursor in cursors:
            bound = self.bounds.global_max(cursor.plist)
            self.counters.bound_computations += 1
            if bound == NEG_INF:
                cursor.cached_bound = 0.0
            else:
                cursor.cached_bound = cursor.doc_weight * bound * amplification

    def _find_pivot(
        self, active: List[ListCursor], aqids: List[int], amplification: float
    ) -> Optional[int]:
        accumulated = 0.0
        for index, cursor in enumerate(active):
            accumulated += cursor.cached_bound
            if accumulated >= 1.0:
                return index
        return None
