"""RIO — Reverse ID-Ordering (the paper's preliminary method).

RIO indexes the registered queries in an ID-ordered inverted file and probes
every arriving document against it.  The per-term upper bound of Eq. 2 uses
the maximum normalized preference ``max_q w_j / S_k(q)`` over the *entire*
posting list, maintained incrementally by
:class:`~repro.core.bounds.GlobalMaxBounds`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bounds import GlobalMaxBounds, NEG_INF
from repro.core.cursors import ListCursor
from repro.core.idordering import ReverseIDOrderingBase
from repro.documents.decay import ExponentialDecay


class RIOAlgorithm(ReverseIDOrderingBase):
    """Reverse ID-Ordering with the global per-list bound (Eq. 2)."""

    name = "rio"
    #: The global bound covers every query id at or after the first cursor,
    #: so a failed pivot search means no remaining query can be affected.
    prunes_all_on_no_pivot = True

    def __init__(self, decay: Optional[ExponentialDecay] = None) -> None:
        super().__init__(decay)

    def _make_bounds(self) -> GlobalMaxBounds:
        return GlobalMaxBounds(self.index, self.results)

    def _prepare_cursors(self, cursors: List[ListCursor], amplification: float) -> None:
        # The per-list maximum normalized preference is snapshotted once per
        # document (pre-multiplied by f_j and the amplification), making the
        # pivot search a plain running sum.  Thresholds can only grow while
        # the document is processed, so the snapshot stays an upper bound.
        for cursor in cursors:
            bound = self.bounds.global_max(cursor.plist)
            self.counters.bound_computations += 1
            if bound == NEG_INF:
                cursor.cached_bound = 0.0
            else:
                cursor.cached_bound = cursor.doc_weight * bound * amplification

    def _find_pivot(self, active: List[ListCursor], amplification: float) -> Optional[int]:
        accumulated = 0.0
        for index, cursor in enumerate(active):
            accumulated += cursor.cached_bound
            if accumulated >= 1.0:
                return index
        return None
