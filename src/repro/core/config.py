"""Configuration of the :class:`~repro.core.monitor.ContinuousMonitor`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.utils.validation import require_non_negative, require_positive


@dataclass
class MonitorConfig:
    """End-to-end configuration of the monitoring server facade.

    Example::

        config = MonitorConfig(algorithm="mrio", lam=1e-3, default_k=10,
                               window_horizon=3600.0)
        monitor = ContinuousMonitor(config)

    Attributes
    ----------
    algorithm:
        The processing algorithm: ``"mrio"`` (default), ``"rio"``, or one of
        the baselines (``"rta"``, ``"sortquer"``, ``"tps"``,
        ``"exhaustive"``).
    ub_variant:
        MRIO's zone-bound implementation: ``"tree"`` (default), ``"exact"``
        or ``"block"``.
    lam:
        The decay parameter λ of the scoring function.
    max_amplification:
        Renormalization trigger: when ``exp(λ·(τ - origin))`` exceeds this
        value all stored scores are rescaled.
    window_horizon:
        Optional hard staleness horizon.  When set, documents older than the
        horizon are expelled from every result and affected queries are
        re-evaluated over the live window.
    default_k:
        The k used by the keyword-registration convenience API when the
        caller does not specify one.
    telemetry:
        Record per-lap latency histograms (see :mod:`repro.obs`).  Off by
        default: the disabled recorder is a shared no-op, so the hot path
        pays one attribute read per event.  The flag travels with the
        config into worker processes and remote shard hosts, which answer
        the ``telemetry`` command with their local histograms.
    """

    algorithm: str = "mrio"
    ub_variant: str = "tree"
    lam: float = 1e-3
    max_amplification: float = 1e60
    window_horizon: Optional[float] = None
    default_k: int = 10
    telemetry: bool = False

    def __post_init__(self) -> None:
        require_non_negative(self.lam, "lam")
        require_positive(self.max_amplification, "max_amplification")
        require_positive(self.default_k, "default_k")
        if self.window_horizon is not None:
            require_positive(self.window_horizon, "window_horizon")
        if self.ub_variant not in ("tree", "exact", "block"):
            raise ConfigurationError(
                f"ub_variant must be 'tree', 'exact' or 'block', got {self.ub_variant!r}"
            )
