"""Per-query top-k result maintenance.

Every continuous query owns a :class:`TopKResult`: a bounded min-heap of the
k highest amplified scores seen so far.  Its *threshold* ``S_k(q)`` — the
amplified score of the k-th best document, or 0 while fewer than k documents
have matched — is the normalization factor of every pruning bound in the
paper (Eq. 2 and 3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import UnknownQueryError
from repro.queries.query import Query
from repro.types import DocId, QueryId


@dataclass(frozen=True)
class ResultEntry:
    """One entry of a query's current top-k: a document and its amplified score."""

    doc_id: DocId
    score: float


@dataclass(frozen=True)
class ResultUpdate:
    """Notification that a query's top-k changed because of a stream event.

    ``evicted_doc_id`` is the document that dropped out of the top-k to make
    room (``None`` while the result was not yet full or after an expiration
    refill).
    """

    query_id: QueryId
    doc_id: DocId
    score: float
    evicted_doc_id: Optional[DocId] = None


class TopKResult:
    """Bounded container of the k best (amplified score, doc) pairs.

    Acceptance is *strict*: a new document replaces the current k-th result
    only when its amplified score is strictly larger, matching the pruning
    rule (a bound equal to the threshold may be pruned safely).
    """

    __slots__ = ("k", "_heap", "_scores")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        self.k = k
        self._heap: List[Tuple[float, DocId]] = []
        self._scores: Dict[DocId, float] = {}

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, doc_id: DocId) -> bool:
        return doc_id in self._scores

    @property
    def full(self) -> bool:
        return len(self._scores) >= self.k

    @property
    def threshold(self) -> float:
        """``S_k(q)``: the k-th best amplified score (0 while not full)."""
        return self._heap[0][0] if self.full else 0.0

    def score_of(self, doc_id: DocId) -> Optional[float]:
        return self._scores.get(doc_id)

    def entries(self) -> List[ResultEntry]:
        """Current results, best first (ties broken towards lower doc id)."""
        ordered = sorted(self._scores.items(), key=lambda item: (-item[1], item[0]))
        return [ResultEntry(doc_id=doc_id, score=score) for doc_id, score in ordered]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def offer(self, doc_id: DocId, score: float) -> Tuple[bool, Optional[DocId]]:
        """Consider a candidate; returns ``(accepted, evicted_doc_id)``."""
        if score <= 0.0 or doc_id in self._scores:
            return False, None
        if not self.full:
            heapq.heappush(self._heap, (score, doc_id))
            self._scores[doc_id] = score
            return True, None
        if score > self._heap[0][0]:
            evicted_score, evicted_doc = heapq.heapreplace(self._heap, (score, doc_id))
            del self._scores[evicted_doc]
            self._scores[doc_id] = score
            return True, evicted_doc
        return False, None

    def would_accept(self, score: float) -> bool:
        """True when ``offer`` with this score could change the result."""
        return not self.full or score > self.threshold

    def remove(self, doc_id: DocId) -> bool:
        """Drop a document from the result (used by window expiration)."""
        if doc_id not in self._scores:
            return False
        del self._scores[doc_id]
        self._heap = [(score, did) for score, did in self._heap if did != doc_id]
        heapq.heapify(self._heap)
        return True

    def clear(self) -> None:
        self._heap.clear()
        self._scores.clear()

    def scale(self, factor: float) -> None:
        """Divide every stored score by ``factor`` (decay renormalization)."""
        if factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self._heap = [(score / factor, doc_id) for score, doc_id in self._heap]
        heapq.heapify(self._heap)
        self._scores = {doc_id: score / factor for doc_id, score in self._scores.items()}

    def replace_all(self, entries: List[Tuple[DocId, float]]) -> None:
        """Replace the whole result set (expiration re-evaluation path)."""
        self.clear()
        for doc_id, score in entries:
            self.offer(doc_id, score)


class ResultStore:
    """Holds the :class:`TopKResult` of every registered query."""

    def __init__(self) -> None:
        self._results: Dict[QueryId, TopKResult] = {}

    def add_query(self, query: Query) -> None:
        if query.query_id not in self._results:
            self._results[query.query_id] = TopKResult(query.k)

    def remove_query(self, query_id: QueryId) -> None:
        self._results.pop(query_id, None)

    def get(self, query_id: QueryId) -> TopKResult:
        result = self._results.get(query_id)
        if result is None:
            raise UnknownQueryError(f"query {query_id} has no result store")
        return result

    def threshold(self, query_id: QueryId) -> float:
        """``S_k`` of the query; 0.0 also for unknown queries (safe: no pruning)."""
        result = self._results.get(query_id)
        return result.threshold if result is not None else 0.0

    def offer(self, query_id: QueryId, doc_id: DocId, score: float) -> Optional[ResultUpdate]:
        """Offer a scored document to a query; returns an update when accepted."""
        result = self.get(query_id)
        accepted, evicted = result.offer(doc_id, score)
        if not accepted:
            return None
        return ResultUpdate(
            query_id=query_id, doc_id=doc_id, score=score, evicted_doc_id=evicted
        )

    def scale_all(self, factor: float) -> None:
        for result in self._results.values():
            result.scale(factor)

    def query_ids(self) -> List[QueryId]:
        return list(self._results.keys())

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, query_id: QueryId) -> bool:
        return query_id in self._results
