"""Per-query top-k result maintenance.

Every continuous query owns a :class:`TopKResult`: a bounded min-heap of the
k highest amplified scores seen so far.  Its *threshold* ``S_k(q)`` — the
amplified score of the k-th best document, or 0 while fewer than k documents
have matched — is the normalization factor of every pruning bound in the
paper (Eq. 2 and 3).

Two notification granularities exist:

* :class:`ResultUpdate` — one accepted (document, query) insertion, emitted
  by the per-event path and fed to update listeners;
* :class:`BatchUpdate` — the *net* effect of one ingestion batch on one
  query, produced by :func:`coalesce_updates`: documents admitted and then
  evicted within the same batch cancel out, so a consumer sees at most one
  consolidated notification per query per batch.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.exceptions import UnknownQueryError
from repro.queries.query import Query
from repro.types import DocId, QueryId


class ResultEntry(NamedTuple):
    """One entry of a query's current top-k: a document and its amplified score.

    A :class:`~typing.NamedTuple` rather than a dataclass: these records are
    created on every accepted result update and construction cost is visible
    in the hot path.

    Example::

        for entry in monitor.top_k(query_id):
            print(entry.doc_id, entry.score)
    """

    doc_id: DocId
    score: float


class ResultUpdate(NamedTuple):
    """Notification that a query's top-k changed because of a stream event.

    ``evicted_doc_id`` is the document that dropped out of the top-k to make
    room (``None`` while the result was not yet full or after an expiration
    refill).

    Example::

        for update in monitor.process(document):
            notify_user(update.query_id, update.doc_id, update.score)
    """

    query_id: QueryId
    doc_id: DocId
    score: float
    evicted_doc_id: Optional[DocId] = None


class BatchUpdate(NamedTuple):
    """The net effect of one ingestion batch on one query's top-k.

    ``entries`` are the documents the batch added to the query's result *and*
    that are still members when the batch ends, best score first.  A document
    admitted and evicted by later arrivals of the same batch appears in
    neither tuple.  ``evicted_doc_ids`` are the documents that were in the
    top-k before the batch and were pushed out by it, ascending by id.

    Example::

        updates = algorithm.process_batch(batch)
        for update in updates:
            best = update.entries[0]
            notify_user(update.query_id, best.doc_id, best.score)
    """

    query_id: QueryId
    entries: Tuple[ResultEntry, ...]
    evicted_doc_ids: Tuple[DocId, ...] = ()


def coalesce_updates(updates: Iterable[ResultUpdate]) -> List[BatchUpdate]:
    """Collapse per-event :class:`ResultUpdate` notifications into at most one
    :class:`BatchUpdate` per query.

    Within a batch a document can be admitted to a query's result and later
    evicted by a stronger arrival of the same batch; such churn is invisible
    in the batch's net effect and is cancelled here.  Queries whose churn
    fully cancels (everything admitted was also evicted and nothing
    pre-existing was displaced) produce no batch update at all.

    The returned list preserves the order in which queries were first
    touched, which keeps batch output deterministic.
    """
    by_query: Dict[QueryId, List[ResultUpdate]] = {}
    for update in updates:
        group = by_query.get(update.query_id)
        if group is None:
            by_query[update.query_id] = [update]
        else:
            group.append(update)

    batch_updates: List[BatchUpdate] = []
    for query_id, group in by_query.items():
        if len(group) == 1:
            # Overwhelmingly common case: one admission, nothing to cancel.
            update = group[0]
            batch_updates.append(
                BatchUpdate(
                    query_id,
                    (ResultEntry(update.doc_id, update.score),),
                    () if update.evicted_doc_id is None else (update.evicted_doc_id,),
                )
            )
            continue
        docs: Dict[DocId, float] = {}
        gone: set = set()
        for update in group:
            docs[update.doc_id] = update.score
            gone.discard(update.doc_id)
            evicted_doc = update.evicted_doc_id
            if evicted_doc is not None:
                if evicted_doc in docs:
                    # Admitted earlier in this batch and displaced again: the
                    # two notifications cancel out.
                    del docs[evicted_doc]
                else:
                    gone.add(evicted_doc)
        if not docs and not gone:
            continue
        entries = tuple(
            ResultEntry(doc_id, score)
            for doc_id, score in sorted(docs.items(), key=lambda item: (-item[1], item[0]))
        )
        batch_updates.append(BatchUpdate(query_id, entries, tuple(sorted(gone))))
    return batch_updates


class TopKResult:
    """Bounded container of the k best (amplified score, doc) pairs.

    Acceptance is *strict*: a new document replaces the current k-th result
    only when its amplified score is strictly larger, matching the pruning
    rule (a bound equal to the threshold may be pruned safely).

    Example::

        result = TopKResult(k=2)
        result.offer(doc_id=1, score=0.5)
        result.offer(doc_id=2, score=0.9)
        assert result.threshold == 0.5          # S_k once full
        assert result.entries()[0].doc_id == 2  # best first
    """

    __slots__ = ("k", "_heap", "_scores")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        self.k = k
        self._heap: List[Tuple[float, DocId]] = []
        self._scores: Dict[DocId, float] = {}

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, doc_id: DocId) -> bool:
        return doc_id in self._scores

    @property
    def full(self) -> bool:
        return len(self._scores) >= self.k

    @property
    def threshold(self) -> float:
        """``S_k(q)``: the k-th best amplified score (0 while not full)."""
        return self._heap[0][0] if self.full else 0.0

    def score_of(self, doc_id: DocId) -> Optional[float]:
        return self._scores.get(doc_id)

    def entries(self) -> List[ResultEntry]:
        """Current results, best first (ties broken towards lower doc id)."""
        ordered = sorted(self._scores.items(), key=lambda item: (-item[1], item[0]))
        return [ResultEntry(doc_id=doc_id, score=score) for doc_id, score in ordered]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def offer(self, doc_id: DocId, score: float) -> Tuple[bool, Optional[DocId]]:
        """Consider a candidate; returns ``(accepted, evicted_doc_id)``."""
        accepted, evicted, _ = self.offer_tracked(doc_id, score)
        return accepted, evicted

    def offer_tracked(
        self, doc_id: DocId, score: float
    ) -> Tuple[bool, Optional[DocId], bool]:
        """Like :meth:`offer` but also reports whether ``S_k`` changed.

        Returns ``(accepted, evicted_doc_id, threshold_changed)``; the hot
        ingestion paths use the flag directly instead of sampling the
        :attr:`threshold` property around the call.
        """
        scores = self._scores
        if score <= 0.0 or doc_id in scores:
            return False, None, False
        heap = self._heap
        if len(scores) < self.k:
            heapq.heappush(heap, (score, doc_id))
            scores[doc_id] = score
            # The threshold switches from 0 to the heap head when the k-th
            # slot fills; before that it stays 0.
            return True, None, len(scores) >= self.k
        head = heap[0][0]
        if score > head:
            _, evicted_doc = heapq.heapreplace(heap, (score, doc_id))
            del scores[evicted_doc]
            scores[doc_id] = score
            return True, evicted_doc, heap[0][0] != head
        return False, None, False

    def would_accept(self, score: float) -> bool:
        """True when ``offer`` with this score could change the result."""
        return not self.full or score > self.threshold

    def remove(self, doc_id: DocId) -> bool:
        """Drop a document from the result (used by window expiration)."""
        if doc_id not in self._scores:
            return False
        del self._scores[doc_id]
        self._heap = [(score, did) for score, did in self._heap if did != doc_id]
        heapq.heapify(self._heap)
        return True

    def clear(self) -> None:
        self._heap.clear()
        self._scores.clear()

    def scale(self, factor: float) -> None:
        """Divide every stored score by ``factor`` (decay renormalization)."""
        if factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self._heap = [(score / factor, doc_id) for score, doc_id in self._heap]
        heapq.heapify(self._heap)
        self._scores = {doc_id: score / factor for doc_id, score in self._scores.items()}

    def replace_all(self, entries: List[Tuple[DocId, float]]) -> None:
        """Replace the whole result set (expiration re-evaluation path)."""
        self.clear()
        for doc_id, score in entries:
            self.offer(doc_id, score)

    # ------------------------------------------------------------------ #
    # Snapshot / restore (shard rebalancing)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """The result state as a plain dict of primitives.

        The heap is stored as-is (score, doc_id) pairs; restoring heapifies
        the same values, so the threshold and every stored score are
        bit-for-bit identical to the captured state.
        """
        return {"k": self.k, "heap": list(self._heap)}

    def restore(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.k = int(state["k"])  # type: ignore[arg-type]
        self._heap = [(float(score), doc_id) for score, doc_id in state["heap"]]  # type: ignore[union-attr]
        heapq.heapify(self._heap)
        self._scores = {doc_id: score for score, doc_id in self._heap}


class ResultStore:
    """Holds the :class:`TopKResult` of every registered query.

    Backed by a :class:`~repro.queries.store.QueryStore`, result heaps are
    materialized *lazily* on first access: a query that has never matched a
    document owns no heap at all, and its threshold reads as 0.0 — exactly
    the threshold of an empty heap, so every pruning bound is unchanged.
    At a million registered queries this is the difference between a heap
    object per query and a few bytes per query.

    Example::

        store = ResultStore()
        store.add_query(query)
        update = store.offer(query.query_id, doc_id=7, score=1.2)
        threshold = store.threshold(query.query_id)
    """

    def __init__(self, store: Optional[object] = None) -> None:
        self._results: Dict[QueryId, TopKResult] = {}
        #: Optional QueryStore supplying ``k`` for lazy materialization.
        self._store = store

    def add_query(self, query: Query) -> None:
        if self._store is not None:
            return  # lazy: the heap is materialized on first access
        if query.query_id not in self._results:
            self._results[query.query_id] = TopKResult(query.k)

    def remove_query(self, query_id: QueryId) -> None:
        self._results.pop(query_id, None)

    def get(self, query_id: QueryId) -> TopKResult:
        result = self._results.get(query_id)
        if result is None:
            store = self._store
            if store is not None and query_id in store:  # type: ignore[operator]
                result = TopKResult(store.k_of(query_id))  # type: ignore[attr-defined]
                self._results[query_id] = result
                return result
            raise UnknownQueryError(f"query {query_id} has no result store")
        return result

    def threshold(self, query_id: QueryId) -> float:
        """``S_k`` of the query; 0.0 also for unknown queries (safe: no pruning)."""
        result = self._results.get(query_id)
        return result.threshold if result is not None else 0.0

    def offer(self, query_id: QueryId, doc_id: DocId, score: float) -> Optional[ResultUpdate]:
        """Offer a scored document to a query; returns an update when accepted."""
        result = self.get(query_id)
        accepted, evicted = result.offer(doc_id, score)
        if not accepted:
            return None
        return ResultUpdate(
            query_id=query_id, doc_id=doc_id, score=score, evicted_doc_id=evicted
        )

    def scale_all(self, factor: float) -> None:
        for result in self._results.values():
            result.scale(factor)

    def snapshot(self) -> Dict[QueryId, Dict[str, object]]:
        """Per-query :meth:`TopKResult.snapshot` dicts (shard rebalancing).

        In the lazy (query-store-backed) mode, *empty* heaps are omitted:
        an empty heap is indistinguishable from an unmaterialized one, and
        whether a heap was ever materialized depends on which queries an
        engine happened to consider — engine-specific history that must not
        leak into snapshots (differential suites compare them bytewise
        across engines).  Emptiness, by contrast, is determined purely by
        the accepted offers, which are identical across engines.
        """
        if self._store is None:
            return {
                query_id: result.snapshot()
                for query_id, result in self._results.items()
            }
        return {
            query_id: result.snapshot()
            for query_id, result in self._results.items()
            if len(result) > 0
        }

    def restore(self, state: Dict[QueryId, Dict[str, object]]) -> None:
        """Restore every captured query result present in this store.

        Queries are restored by id; a captured query that is not (or no
        longer) registered here is skipped, which is what a router relies on
        when it re-partitions one engine's snapshot across several shards.
        """
        store = self._store
        for query_id, result_state in state.items():
            result = self._results.get(query_id)
            if result is None and store is not None and query_id in store:  # type: ignore[operator]
                result = self._results[query_id] = TopKResult(
                    store.k_of(query_id)  # type: ignore[attr-defined]
                )
            if result is not None:
                result.restore(result_state)

    def query_ids(self) -> List[QueryId]:
        """Ids of the queries whose heap is materialized (has ever been
        offered to, restored, or read)."""
        return list(self._results.keys())

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, query_id: QueryId) -> bool:
        return query_id in self._results
