"""Cursors over query posting lists used by the ID-ordering drivers."""

from __future__ import annotations

from typing import List

from repro.documents.document import Document
from repro.index.postings import QueryPostingList
from repro.index.query_index import QueryIndex
from repro.types import QueryId


class ListCursor:
    """A cursor walking one query posting list in query-id order.

    ``doc_weight`` is the weight of the corresponding term in the document
    currently being processed (``f_j`` in the paper), cached here because the
    pivot search multiplies it into every bound.  ``cached_bound`` is a
    per-document scratch slot used by RIO to hold the pre-multiplied term
    bound ``f_j · max_q(w_j / S_k) · amplification`` so the pivot search is a
    plain running sum.
    """

    __slots__ = ("plist", "doc_weight", "pos", "cached_bound")

    def __init__(self, plist: QueryPostingList, doc_weight: float) -> None:
        self.plist = plist
        self.doc_weight = doc_weight
        self.pos = 0
        self.cached_bound = 0.0

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.plist.qids)

    @property
    def current_qid(self) -> QueryId:
        return self.plist.qids[self.pos]

    @property
    def current_weight(self) -> float:
        return self.plist.weights[self.pos]

    def advance(self) -> int:
        """Move to the next entry; returns the number of entries skipped (1)."""
        self.pos += 1
        return 1

    def seek(self, query_id: QueryId) -> int:
        """Jump to the first entry with id >= ``query_id``.

        Returns the number of entries skipped over, which the instrumentation
        reports as "postings jumped".
        """
        old = self.pos
        self.pos = self.plist.first_geq(query_id, start=self.pos)
        return self.pos - old


def gather_cursors(index: QueryIndex, document: Document) -> List[ListCursor]:
    """Create one cursor per document term that has a non-empty posting list."""
    cursors: List[ListCursor] = []
    for term_id, doc_weight in document.vector.items():
        plist = index.get(term_id)
        if plist is not None and len(plist) > 0:
            cursors.append(ListCursor(plist, doc_weight))
    return cursors
