"""Decorator-based registry of stream-processing algorithms.

Algorithms announce themselves with :func:`register_algorithm` instead of
being hard-coded in the factory::

    @register_algorithm("mrio")
    class MRIOAlgorithm(ReverseIDOrderingBase):
        ...

which lets shard workers, tests and third-party extensions plug in new
implementations without editing :mod:`repro.core.factory`.  The registry
lives in its own module precisely so concrete algorithm modules can import
it without creating a cycle through the factory (which must import the
concrete modules to trigger their registration).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type, Union

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.base import StreamAlgorithm

#: name (lower case) -> algorithm class.  Populated by the decorator.
_REGISTRY: Dict[str, Type["StreamAlgorithm"]] = {}


def register_algorithm(
    name: str, cls: Optional[Type["StreamAlgorithm"]] = None
) -> Union[Callable[[Type["StreamAlgorithm"]], Type["StreamAlgorithm"]], Type["StreamAlgorithm"]]:
    """Register an algorithm class under ``name``.

    Usable both as a decorator (``@register_algorithm("mrio")``) and as a
    plain call (``register_algorithm("mrio", MRIOAlgorithm)``).  Registering
    an already-taken name raises unless it re-registers the same class
    (which makes module reloads idempotent).
    """
    key = name.lower()

    def decorate(algorithm_cls: Type["StreamAlgorithm"]) -> Type["StreamAlgorithm"]:
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not algorithm_cls:
            raise ConfigurationError(
                f"algorithm name {key!r} is already registered to "
                f"{existing.__qualname__}"
            )
        _REGISTRY[key] = algorithm_cls
        return algorithm_cls

    if cls is not None:
        return decorate(cls)
    return decorate


def unregister_algorithm(name: str) -> None:
    """Remove ``name`` from the registry (primarily for test cleanup)."""
    _REGISTRY.pop(name.lower(), None)


def registered_algorithms() -> List[str]:
    """Sorted names currently in the registry."""
    return sorted(_REGISTRY)


def resolve_algorithm(name: str) -> Type["StreamAlgorithm"]:
    """Look up a registered algorithm class by (case-insensitive) name."""
    cls = _REGISTRY.get(name.lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; expected one of {registered_algorithms()}"
        )
    return cls
