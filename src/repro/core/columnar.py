"""Columnar (struct-of-arrays) engine: the vectorized batch probe.

The scalar engines walk ID-ordered posting lists with Python-level cursor
objects; this engine drives the same probe over the packed columns of
:class:`~repro.index.columnar.ColumnarQueryIndex`, so one ingestion batch
is a handful of array operations:

1. concatenate the batch's document vectors and sort the postings by term
   id (one stable argsort — this *is* the ID-ordering of the paper, applied
   to the document side);
2. per matched term, a document-level upper bound accumulates
   ``doc_weight * max_weight(term)`` (the term maximum is certified by the
   zone maxima); documents whose amplified bound cannot beat the smallest
   live ``S_k`` are skipped wholesale — the vectorized form of the zone
   skip test;
3. surviving documents accumulate exact cosines into a dense
   ``documents x slots`` block, one fancy-indexed add per matched term;
4. a single ``scores > thresholds`` mask selects candidates, which are
   offered to the per-query heaps in arrival order.

Float-summation order contract
------------------------------

Both the exact accumulation (step 3) and the upper bound (step 2) add
their per-term products in **ascending term id** order, one IEEE-754
addition per term — the same canonical summation the scalar MRIO/RIO
engines use when they sort moved cursors by term id before accumulating.
Scores are therefore *bitwise identical* to the scalar engines', not just
close, which is what keeps the differential suites and the shard-
partitioning equivalence byte-exact.  ``tests/test_columnar_differential.py``
pins this contract.

Replay-exact counters
---------------------

Work counters are defined purely in terms of *live* queries and the
documents' match structure — never in terms of slot-table layout (capacity,
tombstones, chunk shape).  A restored engine compacts its slot table, so
anything layout-dependent would diverge between an uninterrupted engine and
a crash-recovered one.  Chunk boundaries are keyed off the live-query
count for the same reason.

numpy is optional: without it the engine runs a scalar probe over the same
packed columns with identical chunking, pruning decisions, accumulation
order and counters, so results *and* work accounting are independent of
numpy's presence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.base import StreamAlgorithm
from repro.core.registry import register_algorithm
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.index.columnar import HAVE_NUMPY, ColumnarQueryIndex
from repro.queries.query import Query

if HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - numpy ships with the toolchain
    np = None

#: Upper bound on the dense accumulator size (documents x slots cells) of
#: one probe chunk; ~16 MiB of float64 at the default.
DEFAULT_CELL_BUDGET = 1 << 21


@register_algorithm("columnar")
class ColumnarAlgorithm(StreamAlgorithm):
    """Drop-in engine probing packed term columns instead of cursor objects.

    Example::

        algorithm = create_algorithm("columnar", ExponentialDecay(lam=1e-4))
        algorithm.register_all(queries)
        updates = algorithm.process_batch(batch)
    """

    name = "columnar"

    def __init__(
        self,
        decay: Optional[ExponentialDecay] = None,
        zone_size: int = 64,
        cell_budget: int = DEFAULT_CELL_BUDGET,
    ) -> None:
        super().__init__(decay)
        if cell_budget <= 0:
            raise ValueError(f"cell_budget must be > 0, got {cell_budget}")
        self.cell_budget = cell_budget
        # Shares the engine's packed definition store: the index keeps only
        # membership + slot columns and joins weights in at rebuild time.
        self.index = ColumnarQueryIndex(zone_size=zone_size, store=self.store)

    # ------------------------------------------------------------------ #
    # Structure hooks
    # ------------------------------------------------------------------ #

    def _register_structures(self, query: Query) -> None:
        self.index.register(query)

    def _unregister_structures(self, query: Query) -> None:
        self.index.unregister(query)

    def _on_threshold_change(self, query: Query) -> None:
        # Exact refresh from the result heap: correct for both increases
        # (stream processing) and decreases (window expiration).
        self.index.set_threshold(query.query_id, self.results.threshold(query.query_id))

    def _on_renormalize(self, factor: float) -> None:
        # The heaps divided every score by ``factor``; dividing the packed
        # threshold column by the same factor is the same IEEE operation,
        # so the column stays bitwise equal to re-reading every heap.
        self.index.scale_thresholds(factor)

    def _restore_structures(self, structures: Optional[Dict[str, object]] = None) -> None:
        # The packed columns are pure functions of the registered queries
        # (already re-registered by restore()); only the threshold column
        # carries result state, reloaded here.  No structure history exists,
        # so ``structures`` is always None and counters stay replay-exact.
        self.index.refresh_thresholds(self.results.threshold)

    # ------------------------------------------------------------------ #
    # Probe
    # ------------------------------------------------------------------ #

    def _process_document(self, document: Document, amplification: float) -> List[ResultUpdate]:
        # One traversal implementation: the per-event path is the batched
        # probe over a single document.
        return self._process_batch_documents([document], [amplification])

    def _process_batch_documents(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        if np is not None:
            return self._probe_vectorized(documents, amplifications)
        return self._probe_scalar(documents, amplifications)

    def _chunk_rows(self) -> int:
        # Keyed off the *live* query count, not the slot-table width:
        # chunk boundaries influence pruning decisions (thresholds are
        # sampled per chunk) and therefore the work counters, which must
        # not depend on how many tombstones the table happens to carry.
        return max(1, self.cell_budget // max(1, self.index.num_live))

    def _probe_vectorized(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        updates: List[ResultUpdate] = []
        index = self.index
        counters = self.counters
        counters.iterations += len(documents)
        if index.size == 0 or index.num_live == 0:
            return updates
        thresholds = index.thresholds_view()  # writable float64 view
        slot_qids = index.qids_view()
        num_live = index.num_live
        results_get = self.results.get
        chunk_rows = self._chunk_rows()

        term_keys, csr_starts, csr_ends, slot_col, weight_col, max_weights = (
            index.global_view()
        )
        size = index.size

        for start in range(0, len(documents), chunk_rows):
            chunk = documents[start : start + chunk_rows]
            n_docs = len(chunk)
            counters.bound_computations += n_docs
            amps = np.asarray(amplifications[start : start + n_docs], dtype=np.float64)

            # Flatten the chunk's vectors into parallel (term, weight, row)
            # columns and ID-order them by term — after this sort every
            # per-row accumulation below visits terms in ascending id order,
            # which is the float-summation order contract.
            counts = [len(document.vector) for document in chunk]
            total = sum(counts)
            if total == 0:
                continue
            term_ids = np.empty(total, dtype=np.int64)
            doc_weights = np.empty(total, dtype=np.float64)
            rows = np.repeat(np.arange(n_docs, dtype=np.int64), counts)
            position = 0
            for document, count in zip(chunk, counts):
                vector = document.vector
                term_ids[position : position + count] = np.fromiter(
                    vector.keys(), dtype=np.int64, count=count
                )
                doc_weights[position : position + count] = np.fromiter(
                    vector.values(), dtype=np.float64, count=count
                )
                position += count
            order = np.argsort(term_ids, kind="stable")
            term_ids = term_ids[order]
            doc_weights = doc_weights[order]
            rows = rows[order]

            # Join the batch postings against the index's term CSR.
            if len(term_keys) == 0:
                continue
            lookup = np.searchsorted(term_keys, term_ids)
            lookup[lookup == len(term_keys)] = 0  # clamp; can't match below
            matched = term_keys[lookup] == term_ids
            if not matched.any():
                continue
            m_lookup = lookup[matched]
            m_rows = rows[matched]
            m_weights = doc_weights[matched]

            # Document-level upper bound: per matched term (ascending), one
            # IEEE add of doc_weight * max_weight(term) — bincount adds each
            # bin's contributions in input order, i.e. ascending term id.
            # Rounding is monotone, so the bound dominates every query's
            # exact score computed in the same term order; pruning on it is
            # exact-safe.
            upper = np.bincount(
                m_rows, weights=m_weights * max_weights[m_lookup], minlength=n_docs
            )
            alive = (upper * amps) > index.min_live_threshold()
            n_alive = int(np.count_nonzero(alive))
            counters.bound_computations += n_alive * num_live
            if n_alive == 0:
                continue
            keep = alive[m_rows]
            m_lookup = m_lookup[keep]
            m_rows = m_rows[keep]
            m_weights = m_weights[keep]

            # Expand each surviving (document, term) posting into its term's
            # CSR span: pair i joins document-side weight m_weights[i] with
            # every (slot, weight) of the term's packed column.
            pair_counts = csr_ends[m_lookup] - csr_starts[m_lookup]
            total_pairs = int(pair_counts.sum())
            counters.postings_scanned += total_pairs
            pair_base = np.repeat(np.cumsum(pair_counts) - pair_counts, pair_counts)
            pair_positions = (
                np.arange(total_pairs, dtype=np.int64)
                - pair_base
                + np.repeat(csr_starts[m_lookup], pair_counts)
            )
            pair_rows = np.repeat(m_rows, pair_counts)
            products = np.repeat(m_weights, pair_counts) * weight_col[pair_positions]

            # Segment-sum the pair products per (document, slot) cell.
            # Input order is ascending term id (inherited from the batch
            # sort), and bincount accumulates each cell sequentially in
            # input order — the canonical summation, bit for bit.
            cells = pair_rows * size + slot_col[pair_positions]
            unique_cells, inverse = np.unique(cells, return_inverse=True)
            similarities = np.bincount(
                inverse, weights=products, minlength=len(unique_cells)
            )
            counters.full_evaluations += int(np.count_nonzero(similarities))

            cell_rows = unique_cells // size
            cell_slots = unique_cells % size
            scores = similarities * amps[cell_rows]
            passing = scores > thresholds[cell_slots]
            if not passing.any():
                continue
            cand_rows = cell_rows[passing]
            cand_slots = cell_slots[passing]
            cand_scores = scores[passing]
            cand_qids = slot_qids[cand_slots]
            # Offer in arrival order (row), query-id order within a
            # document — the same sequence the scalar engines produce, and
            # independent of slot-table layout.
            offer_order = np.lexsort((cand_qids, cand_rows))
            doc_ids = [document.doc_id for document in chunk]
            for position in offer_order.tolist():
                row = int(cand_rows[position])
                column = int(cand_slots[position])
                query_id = int(cand_qids[position])
                score = float(cand_scores[position])
                result = results_get(query_id)
                accepted, evicted, threshold_changed = result.offer_tracked(
                    doc_ids[row], score
                )
                if not accepted:
                    continue
                counters.result_updates += 1
                updates.append(
                    ResultUpdate(
                        query_id=query_id,
                        doc_id=doc_ids[row],
                        score=score,
                        evicted_doc_id=evicted,
                    )
                )
                if threshold_changed:
                    thresholds[column] = result.threshold
        return updates

    def _probe_scalar(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        """numpy-free probe over the same packed columns.

        Mirrors :meth:`_probe_vectorized` decision for decision — same
        chunking, same chunk-start threshold sampling, same ascending-term
        accumulation — so states *and* counters are identical whether or
        not numpy is installed.
        """
        updates: List[ResultUpdate] = []
        index = self.index
        counters = self.counters
        counters.iterations += len(documents)
        if index.size == 0 or index.num_live == 0:
            return updates
        thresholds = index.thresholds_view()
        slot_qids = index.qids_view()
        num_live = index.num_live
        results_get = self.results.get
        chunk_rows = self._chunk_rows()

        for start in range(0, len(documents), chunk_rows):
            chunk = documents[start : start + chunk_rows]
            counters.bound_computations += len(chunk)
            # The vectorized probe samples thresholds once per chunk (the
            # mask is computed against a snapshot); freeze them here too so
            # candidate selection is a bit-identical superset.
            frozen = list(thresholds)
            min_threshold = index.min_live_threshold()
            for offset, document in enumerate(chunk):
                amplification = amplifications[start + offset]
                matched = []
                vector = document.vector
                for term_id in sorted(vector):
                    postings = index.term(term_id)
                    if postings is not None:
                        matched.append((vector[term_id], postings))
                if not matched:
                    continue
                upper = 0.0
                for doc_weight, postings in matched:
                    upper += doc_weight * postings.max_weight
                if not upper * amplification > min_threshold:
                    continue
                acc: Dict[int, float] = {}
                acc_get = acc.get
                for doc_weight, postings in matched:
                    slots = postings.slots
                    weights = postings.weights
                    for index_in_term in range(len(slots)):
                        slot = slots[index_in_term]
                        acc[slot] = acc_get(slot, 0.0) + doc_weight * weights[index_in_term]
                    counters.postings_scanned += len(slots)
                counters.full_evaluations += sum(
                    1 for similarity in acc.values() if similarity != 0.0
                )
                counters.bound_computations += num_live
                candidates = []
                for slot, similarity in acc.items():
                    score = similarity * amplification
                    if score > frozen[slot]:
                        candidates.append((int(slot_qids[slot]), slot, score))
                candidates.sort()
                for query_id, slot, score in candidates:
                    result = results_get(query_id)
                    accepted, evicted, threshold_changed = result.offer_tracked(
                        document.doc_id, score
                    )
                    if not accepted:
                        continue
                    counters.result_updates += 1
                    updates.append(
                        ResultUpdate(
                            query_id=query_id,
                            doc_id=document.doc_id,
                            score=score,
                            evicted_doc_id=evicted,
                        )
                    )
                    if threshold_changed:
                        thresholds[slot] = result.threshold
        return updates
