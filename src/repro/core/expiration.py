"""Hard staleness horizon: window expiration and query re-evaluation.

The decay model already makes old documents fade from the results as newer
ones arrive, but applications often also want a hard guarantee ("never show
anything older than a day").  When the monitor is configured with a
``window_horizon`` this manager

* keeps every live document in a :class:`SlidingWindowStore` and a
  :class:`DocumentIndex`,
* tracks which queries currently hold which documents,
* on expiration removes the document everywhere and re-evaluates the
  affected queries over the live window, and
* tells the algorithm that those queries' thresholds may have *decreased*
  (the only event that can lower a threshold), so pruning bounds stay safe.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.base import StreamAlgorithm
from repro.core.results import ResultUpdate
from repro.documents.document import Document
from repro.documents.window import SlidingWindowStore
from repro.index.doc_index import DocumentIndex
from repro.types import DocId, QueryId


class ExpirationManager:
    """Maintains the live window and re-evaluates queries on expiration."""

    def __init__(self, algorithm: StreamAlgorithm, horizon: float) -> None:
        self.algorithm = algorithm
        self.store = SlidingWindowStore(horizon)
        self.doc_index = DocumentIndex()
        self._holders: Dict[DocId, Set[QueryId]] = {}

    # ------------------------------------------------------------------ #
    # Bookkeeping driven by the normal stream path
    # ------------------------------------------------------------------ #

    def on_result_update(self, update: ResultUpdate) -> None:
        """Track which queries hold which documents (listener callback)."""
        self._holders.setdefault(update.doc_id, set()).add(update.query_id)
        if update.evicted_doc_id is not None:
            holders = self._holders.get(update.evicted_doc_id)
            if holders is not None:
                holders.discard(update.query_id)
                if not holders:
                    del self._holders[update.evicted_doc_id]

    def observe(self, document: Document) -> None:
        """Record a freshly processed document as live."""
        self.store.add(document)
        self.doc_index.add(document)

    # ------------------------------------------------------------------ #
    # Expiration
    # ------------------------------------------------------------------ #

    def expire(self, now: float) -> List[QueryId]:
        """Expire documents older than the horizon; returns affected query ids."""
        expired = self.store.expire(now)
        if not expired:
            return []
        affected: Set[QueryId] = set()
        for document in expired:
            self.doc_index.remove(document.doc_id)
            holders = self._holders.pop(document.doc_id, set())
            affected.update(holders)
        for query_id in affected:
            if query_id in self.algorithm.queries:
                self._reevaluate(query_id)
        return sorted(affected)

    def _reevaluate(self, query_id: QueryId) -> None:
        """Recompute a query's top-k over the live window from scratch."""
        query = self.algorithm.queries[query_id]
        result = self.algorithm.results.get(query_id)
        old_docs = {entry.doc_id for entry in result.entries()}

        # Accumulate similarities over the live window, then amplify by each
        # document's own arrival time (the same score the stream path used).
        similarities: Dict[DocId, float] = {}
        for term_id, query_weight in query.vector.items():
            plist = self.doc_index.get(term_id)
            if plist is None:
                continue
            for doc_id, doc_weight in plist.iter_live():
                similarities[doc_id] = similarities.get(doc_id, 0.0) + query_weight * doc_weight
        scored = []
        for doc_id, similarity in similarities.items():
            document = self.doc_index.document(doc_id)
            if document is None or document.arrival_time is None:
                continue
            score = similarity * self.algorithm.decay.amplification(document.arrival_time)
            scored.append((doc_id, score))
        scored.sort(key=lambda item: (-item[1], item[0]))
        result.replace_all(scored[: query.k])

        # Update the reverse map to reflect the new membership.
        new_docs = {entry.doc_id for entry in result.entries()}
        for doc_id in old_docs - new_docs:
            holders = self._holders.get(doc_id)
            if holders is not None:
                holders.discard(query_id)
                if not holders:
                    del self._holders[doc_id]
        for doc_id in new_docs:
            self._holders.setdefault(doc_id, set()).add(query_id)

        # The threshold may have decreased; the algorithm must refresh any
        # cached bound that depends on it.
        self.algorithm.notify_threshold_change(query_id)

    # ------------------------------------------------------------------ #
    # Snapshot / restore (shard rebalancing)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """The live window in arrival order (documents shared by reference)."""
        return {"horizon": self.store.horizon, "live": self.store.live_documents()}

    def restore(self, state: Dict[str, object]) -> None:
        """Rebuild the window store, the document index and the reverse map.

        The holder map is derived from the *algorithm's* current result
        membership rather than captured, so a restore that adopted only a
        subset of the captured queries (shard rebalancing) ends up exactly
        consistent with what that subset holds.
        """
        self.store = SlidingWindowStore(float(state["horizon"]))  # type: ignore[arg-type]
        self.doc_index = DocumentIndex()
        for document in state["live"]:  # type: ignore[union-attr]
            self.store.add(document)
            self.doc_index.add(document)
        self._holders = {}
        for query_id in self.algorithm.queries:
            for entry in self.algorithm.results.get(query_id).entries():
                self._holders.setdefault(entry.doc_id, set()).add(query_id)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def live_documents(self) -> int:
        return len(self.store)

    def holders_of(self, doc_id: DocId) -> Set[QueryId]:
        """Queries currently holding ``doc_id`` in their top-k."""
        return set(self._holders.get(doc_id, set()))
