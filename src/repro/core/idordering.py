"""Shared driver of the Reverse ID-Ordering algorithms (RIO and MRIO).

Both algorithms process an arriving document in iterations over the posting
lists of the document's terms in the *query* index:

1. order the non-exhausted lists by the query id under their cursor,
2. find the *pivot*: the first prefix of lists whose accumulated upper bound
   reaches 1 (i.e. some query in the covered id zone might still admit the
   document into its top-k),
3. if the pivot list's cursor equals the first cursor, that query's exact
   score is computed and offered to its result heap; otherwise every cursor
   left of the pivot jumps ("seeks") to the pivot id, skipping all the
   queries in between, which the bound proved cannot be affected.

The two algorithms differ only in how the per-term upper bounds are obtained
(:class:`~repro.core.bounds.GlobalMaxBounds` vs. the zone maintainers) and in
what a failed pivot search implies (RIO's global bound covers every remaining
query, so it terminates; MRIO's local bound only covers the current zone, so
it jumps past it and continues).

Batched ingestion (:meth:`StreamAlgorithm.process_batch`) runs the same
pivot loop per document but keeps one :class:`ListCursor` per term alive for
the whole batch: the posting-list lookups and the cursor allocations are
paid once per (term, batch) instead of once per (term, document).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence

from repro.core.base import StreamAlgorithm
from repro.core.bounds import BoundMaintainer
from repro.core.cursors import ListCursor, gather_cursors
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.index.query_index import QueryIndex
from repro.queries.query import Query
from repro.types import TermId


def _cursor_qid(cursor: ListCursor) -> int:
    """Sort key: the query id currently under the cursor."""
    return cursor.plist.qids[cursor.pos]


def _cursor_term(cursor: ListCursor) -> int:
    """Sort key: the term of the cursor's posting list.

    Full evaluations accumulate a dot product over the prefix of cursors
    sitting on the pivot query; summing those contributions in term order
    makes the floating-point result independent of cursor insertion history
    — and therefore identical across per-event/batched ingestion and any
    partitioning of the query set over engine shards.
    """
    return cursor.plist.term_id


class ReverseIDOrderingBase(StreamAlgorithm):
    """Common machinery of RIO and MRIO."""

    #: Whether a failed pivot search proves that *no* remaining query can be
    #: affected (true only for bounds that cover the whole remaining id range).
    prunes_all_on_no_pivot = True

    #: Total-entry cap of the persistent zone-bound memo.  Terms whose
    #: queries never change threshold are never invalidated, so without a
    #: cap a long-running stream accumulates windows forever (worst case
    #: quadratic in the posting-list length per term).  Checked once per
    #: batch; exceeding it clears the memo wholesale.
    zone_cache_limit = 1 << 18

    def __init__(self, decay: Optional[ExponentialDecay] = None) -> None:
        super().__init__(decay)
        self.index = QueryIndex(store=self.store)
        self.bounds: BoundMaintainer = self._make_bounds()
        #: Persistent two-level memo of zone-bound lookups:
        #: ``term_id -> {(start_pos, boundary_qid): (end_pos, zone_value)}``.
        #: Only consulted while a batch is processed (``_bound_cache`` points
        #: here), but kept across batches: a term's sub-map is dropped
        #: whenever any query containing the term changes its threshold, is
        #: (un)registered, or scores are renormalized, so cold terms keep
        #: their memo indefinitely while hot terms re-compute.
        self._zone_cache: Dict[TermId, Dict] = {}
        #: Alias of :attr:`_zone_cache` while a batch is in flight, ``None``
        #: otherwise (the pivot search keys its fast path off this).
        self._bound_cache: Optional[Dict[TermId, Dict]] = None
        #: Per-batch cache of ``bounds.zone_query_fn`` handles; reset every
        #: batch because structure rebuilds may occur between batches.
        self._batch_zone_fns: Dict[TermId, object] = {}

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def _make_bounds(self) -> BoundMaintainer:  # pragma: no cover - abstract
        raise NotImplementedError

    def _find_pivot(
        self, active: List[ListCursor], aqids: List[int], amplification: float
    ) -> Optional[int]:
        """Return the pivot index in ``active`` or ``None`` when no prefix
        of upper bounds reaches 1.

        ``aqids`` mirrors ``active``: ``aqids[i]`` is the query id under
        ``active[i]``, maintained by the driver so the pivot search reads
        plain ints instead of chasing cursor attributes.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Structure maintenance (delegated to the query index + bound maintainer)
    # ------------------------------------------------------------------ #

    def _register_structures(self, query: Query) -> None:
        self.index.register(query)
        self._invalidate_zone_terms(query)

    def _unregister_structures(self, query: Query) -> None:
        self.index.unregister(query.query_id, query)
        self._invalidate_zone_terms(query)

    def _invalidate_zone_terms(self, query: Query) -> None:
        """Drop the memoized windows of exactly the query's own terms.

        Registration and unregistration shift posting positions only in the
        posting lists of the terms the query contains; every other term's
        list — and therefore its memoized ``(start, boundary) -> (end,
        bound)`` windows — is untouched.  Incremental invalidation is what
        keeps sustained register/unregister churn from stalling ingest: the
        previous wholesale ``clear()`` made every registration cost one
        full memo rebuild across all hot terms.
        """
        cache = self._zone_cache
        if cache:
            for term_id in query.vector:
                cache.pop(term_id, None)

    def _on_threshold_change(self, query: Query) -> None:
        self.bounds.on_threshold_change(query)
        # A zone of term t can only contain queries that have term t, so
        # dropping the changed query's terms is exactly the set of memoized
        # windows the new threshold can affect.
        cache = self._zone_cache
        if cache:
            for term_id in query.vector:
                cache.pop(term_id, None)

    def _on_renormalize(self, factor: float) -> None:
        self.bounds.on_renormalize(factor)
        self._zone_cache.clear()

    def _snapshot_structures(self) -> Optional[Dict[str, object]]:
        # The zone-bound memo is the one structure whose content depends on
        # access *history*, not just on queries + thresholds: a memo miss is
        # what ``bound_computations`` counts, so crash recovery must bring
        # the memo back verbatim for work counters to stay replay-exact.
        # (The bound structures' stored ratios are recomputed — pure
        # functions of the current thresholds at a batch boundary — but
        # *which* terms have built structures is history too: a structure
        # missing at restore would be rebuilt lazily mid-batch from already
        # risen thresholds and prune differently, so the clean-built term
        # set rides along and is rebuilt eagerly.)
        structures: Dict[str, object] = {
            "zone_cache": [
                [
                    term_id,
                    [
                        [start_pos, boundary_qid, end_pos, self._pack_float(zone_value)]
                        for (start_pos, boundary_qid), (end_pos, zone_value) in sorted(
                            windows.items()
                        )
                    ],
                ]
                for term_id, windows in sorted(self._zone_cache.items())
            ]
        }
        built = self.bounds.built_terms()
        if built is not None:
            structures["built_terms"] = built
        return structures

    def _restore_structures(self, structures: Optional[Dict[str, object]] = None) -> None:
        # A restore may move every threshold in either direction at once;
        # wholesale invalidation of the bound structures is cheaper than
        # per-query point updates (stored ratios are recomputed lazily from
        # the restored thresholds).  The zone memo is reinstated when the
        # capture carried one, cleared otherwise.
        self.bounds.restore()
        self._zone_cache.clear()
        if structures is not None:
            for term_id, windows in structures["zone_cache"]:  # type: ignore[union-attr]
                self._zone_cache[term_id] = {
                    (start_pos, boundary_qid): (end_pos, self._unpack_float(zone_value))
                    for start_pos, boundary_qid, end_pos, zone_value in windows
                }
            self.bounds.rebuild_terms(structures.get("built_terms", ()))  # type: ignore[arg-type]
        self._batch_zone_fns = {}

    # ------------------------------------------------------------------ #
    # Document processing
    # ------------------------------------------------------------------ #

    def _prepare_cursors(self, cursors: List[ListCursor], amplification: float) -> None:
        """Per-document cursor preparation hook (RIO caches its term bounds here)."""

    def _process_document(
        self, document: Document, amplification: float
    ) -> List[ResultUpdate]:
        cursors = gather_cursors(self.index, document)
        if not cursors:
            return []
        self._prepare_cursors(cursors, amplification)
        updates: List[ResultUpdate] = []
        self._drive_cursors(document.doc_id, cursors, amplification, updates)
        return updates

    def _process_batch_documents(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        """Batched walk: reuse one cursor per term across the whole batch.

        Registration cannot happen mid-batch, so a term's posting list (and
        its emptiness) is stable for the duration: the ``index.get`` lookup
        and the :class:`ListCursor` allocation happen once per distinct term
        instead of once per document, and every cursor is rewound in place.
        """
        index_get = self.index.get
        prepare = self._prepare_cursors
        drive = self._batch_drive_cursors
        cursor_cache: Dict[TermId, Optional[ListCursor]] = {}
        updates: List[ResultUpdate] = []
        self._bound_cache = self._zone_cache
        self._batch_zone_fns = {}
        try:
            for document, amplification in zip(documents, amplifications):
                cursors: List[ListCursor] = []
                for term_id, doc_weight in document.vector.items():
                    cursor = cursor_cache.get(term_id)
                    if cursor is None:
                        if term_id in cursor_cache:
                            continue  # known term without any registered query
                        plist = index_get(term_id)
                        if plist is None or len(plist) == 0:
                            cursor_cache[term_id] = None
                            continue
                        cursor = ListCursor(plist, doc_weight)
                        cursor_cache[term_id] = cursor
                    else:
                        # ``cached_bound`` needs no reset: RIO overwrites it
                        # for every cursor in _prepare_cursors and MRIO never
                        # reads it.
                        cursor.doc_weight = doc_weight
                        cursor.pos = 0
                    cursors.append(cursor)
                if not cursors:
                    continue
                prepare(cursors, amplification)
                drive(document.doc_id, cursors, amplification, updates)
        finally:
            self._bound_cache = None
            zone_cache = self._zone_cache
            if (
                len(zone_cache) > 0
                and sum(map(len, zone_cache.values())) > self.zone_cache_limit
            ):
                zone_cache.clear()
        return updates

    def _batch_drive_cursors(
        self,
        doc_id: int,
        cursors: List[ListCursor],
        amplification: float,
        updates: List[ResultUpdate],
    ) -> None:
        """Pivot loop used by the batch driver.

        Defaults to the per-event :meth:`_drive_cursors`; MRIO overrides it
        with a fused loop that inlines the pivot search and the result offer
        (batch mode trades the modular per-event structure for lower
        Python-level dispatch cost).
        """
        self._drive_cursors(doc_id, cursors, amplification, updates)

    def _drive_cursors(
        self,
        doc_id: int,
        cursors: List[ListCursor],
        amplification: float,
        updates: List[ResultUpdate],
    ) -> None:
        """Run the pivot loop for one document, appending accepted updates."""
        # ``active`` is kept sorted by the query id under each cursor, with
        # ``aqids`` as a parallel plain-int mirror of those ids: re-insertion
        # of moved cursors and the prefix scan then run on C ``bisect`` over
        # an int list instead of Python-level comparisons through cursor
        # attributes.  Only cursors that actually moved are re-inserted,
        # instead of re-sorting the whole set on every iteration.
        active = sorted(cursors, key=_cursor_qid)
        aqids = [cursor.plist.qids[cursor.pos] for cursor in active]
        counters = self.counters
        find_pivot = self._find_pivot
        offer = self.offer
        iterations = 0
        postings_scanned = 0
        full_evaluations = 0

        while active:
            iterations += 1
            pivot_index = find_pivot(active, aqids, amplification)
            if pivot_index is None:
                if self.prunes_all_on_no_pivot:
                    break
                # The local bound only covered ids up to the largest cursor;
                # skip past that zone and keep going.
                target = aqids[-1] + 1
                moved = active
                active = []
                aqids = []
                for cursor in moved:
                    qids = cursor.plist.qids
                    pos = bisect_left(qids, target, cursor.pos)
                    cursor.pos = pos
                    if pos < len(qids):
                        qid = qids[pos]
                        at = bisect_left(aqids, qid)
                        aqids.insert(at, qid)
                        active.insert(at, cursor)
                continue

            pivot_qid = aqids[pivot_index]
            if aqids[0] == pivot_qid:
                # Full evaluation: every cursor positioned on the pivot forms
                # a prefix of the sorted order (the equal run of ``aqids``).
                prefix_end = bisect_right(aqids, pivot_qid)
                similarity = 0.0
                moved = active[:prefix_end]
                if prefix_end > 1:
                    # Canonical (term-ordered) summation: see _cursor_term.
                    moved.sort(key=_cursor_term)
                for cursor in moved:
                    similarity += cursor.doc_weight * cursor.plist.weights[cursor.pos]
                postings_scanned += prefix_end
                full_evaluations += 1
                del active[:prefix_end]
                del aqids[:prefix_end]
                update = offer(pivot_qid, doc_id, similarity * amplification)
                if update is not None:
                    updates.append(update)
                for cursor in moved:
                    pos = cursor.pos + 1
                    cursor.pos = pos
                    qids = cursor.plist.qids
                    if pos < len(qids):
                        qid = qids[pos]
                        at = bisect_left(aqids, qid)
                        aqids.insert(at, qid)
                        active.insert(at, cursor)
            else:
                moved = active[:pivot_index]
                del active[:pivot_index]
                del aqids[:pivot_index]
                for cursor in moved:
                    qids = cursor.plist.qids
                    pos = bisect_left(qids, pivot_qid, cursor.pos)
                    cursor.pos = pos
                    if pos < len(qids):
                        qid = qids[pos]
                        at = bisect_left(aqids, qid)
                        aqids.insert(at, qid)
                        active.insert(at, cursor)

        counters.iterations += iterations
        counters.postings_scanned += postings_scanned
        counters.full_evaluations += full_evaluations

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    def describe(self) -> dict:
        info = super().describe()
        info["bounds"] = self.bounds.name
        info["indexed_terms"] = self.index.num_terms
        info["indexed_postings"] = self.index.num_postings
        return info
