"""Shared driver of the Reverse ID-Ordering algorithms (RIO and MRIO).

Both algorithms process an arriving document in iterations over the posting
lists of the document's terms in the *query* index:

1. order the non-exhausted lists by the query id under their cursor,
2. find the *pivot*: the first prefix of lists whose accumulated upper bound
   reaches 1 (i.e. some query in the covered id zone might still admit the
   document into its top-k),
3. if the pivot list's cursor equals the first cursor, that query's exact
   score is computed and offered to its result heap; otherwise every cursor
   left of the pivot jumps ("seeks") to the pivot id, skipping all the
   queries in between, which the bound proved cannot be affected.

The two algorithms differ only in how the per-term upper bounds are obtained
(:class:`~repro.core.bounds.GlobalMaxBounds` vs. the zone maintainers) and in
what a failed pivot search implies (RIO's global bound covers every remaining
query, so it terminates; MRIO's local bound only covers the current zone, so
it jumps past it and continues).
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional

from repro.core.base import StreamAlgorithm
from repro.core.bounds import BoundMaintainer
from repro.core.cursors import ListCursor, gather_cursors
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.index.query_index import QueryIndex
from repro.queries.query import Query


def _cursor_qid(cursor: ListCursor) -> int:
    """Sort key: the query id currently under the cursor."""
    return cursor.plist.qids[cursor.pos]


class ReverseIDOrderingBase(StreamAlgorithm):
    """Common machinery of RIO and MRIO."""

    #: Whether a failed pivot search proves that *no* remaining query can be
    #: affected (true only for bounds that cover the whole remaining id range).
    prunes_all_on_no_pivot = True

    def __init__(self, decay: Optional[ExponentialDecay] = None) -> None:
        super().__init__(decay)
        self.index = QueryIndex()
        self.bounds: BoundMaintainer = self._make_bounds()

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def _make_bounds(self) -> BoundMaintainer:  # pragma: no cover - abstract
        raise NotImplementedError

    def _find_pivot(self, active: List[ListCursor], amplification: float) -> Optional[int]:
        """Return the pivot index in ``active`` or ``None`` when no prefix
        of upper bounds reaches 1."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Structure maintenance (delegated to the query index + bound maintainer)
    # ------------------------------------------------------------------ #

    def _register_structures(self, query: Query) -> None:
        self.index.register(query)

    def _unregister_structures(self, query: Query) -> None:
        self.index.unregister(query.query_id)

    def _on_threshold_change(self, query: Query) -> None:
        self.bounds.on_threshold_change(query)

    def _on_renormalize(self, factor: float) -> None:
        self.bounds.on_renormalize(factor)

    # ------------------------------------------------------------------ #
    # Document processing
    # ------------------------------------------------------------------ #

    def _prepare_cursors(self, cursors: List[ListCursor], amplification: float) -> None:
        """Per-document cursor preparation hook (RIO caches its term bounds here)."""

    def _process_document(
        self, document: Document, amplification: float
    ) -> List[ResultUpdate]:
        cursors = gather_cursors(self.index, document)
        if not cursors:
            return []
        self._prepare_cursors(cursors, amplification)

        # ``active`` is kept sorted by the query id under each cursor; only
        # cursors that actually moved are re-inserted, instead of re-sorting
        # the whole set on every iteration.
        qid_key = _cursor_qid
        active = sorted(cursors, key=qid_key)
        updates: List[ResultUpdate] = []
        counters = self.counters
        doc_id = document.doc_id

        while active:
            counters.iterations += 1
            pivot_index = self._find_pivot(active, amplification)
            if pivot_index is None:
                if self.prunes_all_on_no_pivot:
                    break
                # The local bound only covered ids up to the largest cursor;
                # skip past that zone and keep going.
                target = active[-1].current_qid + 1
                moved = active
                active = []
                for cursor in moved:
                    cursor.seek(target)
                    if not cursor.exhausted:
                        insort(active, cursor, key=qid_key)
                continue

            pivot_qid = active[pivot_index].current_qid
            if active[0].current_qid == pivot_qid:
                # Full evaluation: every cursor positioned on the pivot forms
                # a prefix of the sorted order.
                prefix_end = 0
                similarity = 0.0
                size = len(active)
                while prefix_end < size:
                    cursor = active[prefix_end]
                    if cursor.plist.qids[cursor.pos] != pivot_qid:
                        break
                    similarity += cursor.doc_weight * cursor.plist.weights[cursor.pos]
                    prefix_end += 1
                counters.postings_scanned += prefix_end
                counters.full_evaluations += 1
                moved = active[:prefix_end]
                del active[:prefix_end]
                update = self.offer(pivot_qid, doc_id, similarity * amplification)
                if update is not None:
                    updates.append(update)
                for cursor in moved:
                    cursor.pos += 1
                    if cursor.pos < len(cursor.plist.qids):
                        insort(active, cursor, key=qid_key)
            else:
                moved = active[:pivot_index]
                del active[:pivot_index]
                for cursor in moved:
                    cursor.seek(pivot_qid)
                    if not cursor.exhausted:
                        insort(active, cursor, key=qid_key)
        return updates

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    def describe(self) -> dict:
        info = super().describe()
        info["bounds"] = self.bounds.name
        info["indexed_terms"] = self.index.num_terms
        info["indexed_postings"] = self.index.num_postings
        return info
