"""Upper-bound maintainers for the ID-ordering algorithms.

The pruning power of RIO and MRIO comes from per-term upper bounds on the
*normalized preference* ``w_j(q) / S_k(q)`` of the registered queries:

* RIO (Eq. 2) uses, per posting list, the maximum over the **whole list**
  (:class:`GlobalMaxBounds`);
* MRIO (Eq. 3) uses, per posting list, the maximum over the **zone of query
  ids currently at risk** — the locally adaptive bound that makes it optimal
  in the number of considered queries.  Three interchangeable
  implementations are provided, spanning the tightness/cost trade-off the
  journal's Sec. 5.2 discusses:

  - :class:`ExactZoneBounds` — scans the zone and uses the *current* ratios
    (tightest, no staleness, linear scan per bound),
  - :class:`TreeZoneBounds` — segment tree over stored ratios (logarithmic
    range maxima, point updates on threshold changes),
  - :class:`BlockZoneBounds` — per-block maxima over stored ratios (cheapest
    queries, loosest bounds: whole blocks only).

Stored ratios may lag behind the true ones.  Because a query's threshold
``S_k`` normally only increases, a stale stored ratio is an *over*-estimate,
which keeps pruning safe.  The one situation where thresholds can decrease —
window expiration dropping a result — is routed through
:meth:`on_threshold_change`, which every maintainer handles for both
directions.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.core.results import ResultStore
from repro.exceptions import ConfigurationError
from repro.index.postings import QueryPostingList
from repro.index.query_index import QueryIndex, QueryIndexListener
from repro.index.rangemax import NEG_INF, BlockMax, SegmentTreeMax
from repro.queries.query import Query
from repro.types import QueryId, TermId

INF = float("inf")


def preference_ratio(weight: float, threshold: float) -> float:
    """The normalized preference ``w / S_k`` (``+inf`` while ``S_k`` is 0).

    A query whose result heap is not yet full accepts any positive score, so
    its ratio must be infinite — such a query can never be pruned.
    """
    if threshold <= 0.0:
        return INF
    return weight / threshold


class BoundMaintainer(QueryIndexListener):
    """Common plumbing shared by every bound maintainer."""

    name = "abstract"

    def __init__(self, index: QueryIndex, results: ResultStore) -> None:
        self.index = index
        self.results = results
        index.add_listener(self)

    # -- ratio helpers --------------------------------------------------- #

    def current_ratio(self, query_id: QueryId, weight: float) -> float:
        return preference_ratio(weight, self.results.threshold(query_id))

    # -- crash-recovery capture of lazily built structures ---------------- #

    def built_terms(self) -> Optional[List[TermId]]:
        """Clean-built structure terms, or None when the maintainer keeps no
        lazily built per-term structures (see the stored-ratio override)."""
        return None

    def rebuild_terms(self, term_ids: Iterable[TermId]) -> None:
        """Eagerly rebuild the given terms' structures (default: nothing)."""

    # -- interface used by the algorithms -------------------------------- #

    def global_max(self, plist: QueryPostingList) -> float:
        """Upper bound of ``w/S_k`` over the whole posting list."""
        raise NotImplementedError

    def zone_max(self, plist: QueryPostingList, start_pos: int, boundary_qid: int) -> float:
        """Upper bound of ``w/S_k`` over entries at positions >= ``start_pos``
        whose query id is < ``boundary_qid``.
        """
        end_pos = plist.first_geq(boundary_qid, start=start_pos)
        return self.zone_max_range(plist, start_pos, end_pos)

    def zone_max_range(self, plist: QueryPostingList, start_pos: int, end_pos: int) -> float:
        """Upper bound of ``w/S_k`` over entry positions ``[start_pos, end_pos)``.

        The position-based variant lets the MRIO driver reuse the boundary
        bisect it already performs for its window bookkeeping.
        """
        raise NotImplementedError

    def zone_query_fn(self, plist: QueryPostingList):
        """A ``(start_pos, end_pos) -> zone max`` callable for one term.

        The batched MRIO driver resolves this once per (term, batch) and
        calls it directly on memo misses, skipping the per-call dispatch
        through :meth:`zone_max_range`.  The callable is only valid until
        the term's underlying structure changes (threshold point update,
        rebuild, registration, renormalization), so callers must not hold
        it across batches.
        """

        def query(start_pos: int, end_pos: int) -> float:
            return self.zone_max_range(plist, start_pos, end_pos)

        return query

    def on_threshold_change(self, query: Query) -> None:
        """The query's ``S_k`` changed (either direction)."""
        raise NotImplementedError

    def on_renormalize(self, factor: float) -> None:
        """Every stored threshold was divided by ``factor`` (ratios grew)."""
        raise NotImplementedError

    def restore(self) -> None:
        """Engine state was restored from a snapshot; every threshold may
        have changed in either direction, so any cached ratio is void.

        The default rebuilds via :meth:`on_threshold_change` per query,
        which is correct for every maintainer; subclasses override it when
        a wholesale invalidation is cheaper.
        """
        for query in self.index.queries():
            self.on_threshold_change(query)

    # -- QueryIndexListener ----------------------------------------------- #

    def on_query_registered(self, query: Query) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def on_query_unregistered(self, query: Query) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class GlobalMaxBounds(BoundMaintainer):
    """Per-list global maximum ratio (the RIO bound of Eq. 2).

    The maximum and the query attaining it are cached per term; the cache is
    recomputed only when the cached maximizer's own threshold changes (or it
    is unregistered), otherwise a threshold increase elsewhere leaves the
    cached value a valid upper bound.

    Example::

        bounds = GlobalMaxBounds(index, results)   # what RIO constructs
        ub = bounds.global_max(index.get(term_id))
    """

    name = "global"

    def __init__(self, index: QueryIndex, results: ResultStore) -> None:
        super().__init__(index, results)
        self._max: Dict[TermId, float] = {}
        self._argmax: Dict[TermId, Optional[QueryId]] = {}
        #: Terms whose cached maximum must be recomputed before use
        #: (deferred refresh: unregistering the maximizer only marks the
        #: term stale, so churn storms do not pay an O(list) rescan per
        #: operation — the rescan happens at most once, on next probe).
        self._stale: set = set()
        for plist in index.posting_lists():
            self._recompute_term(plist.term_id)

    # -- internals -------------------------------------------------------- #

    def _recompute_term(self, term_id: TermId) -> None:
        self._stale.discard(term_id)
        plist = self.index.get(term_id)
        if plist is None or len(plist) == 0:
            self._max.pop(term_id, None)
            self._argmax.pop(term_id, None)
            return
        best = NEG_INF
        best_qid: Optional[QueryId] = None
        for qid, weight in plist:
            ratio = self.current_ratio(qid, weight)
            if ratio > best:
                best = ratio
                best_qid = qid
        self._max[term_id] = best
        self._argmax[term_id] = best_qid

    # -- interface --------------------------------------------------------- #

    def global_max(self, plist: QueryPostingList) -> float:
        term_id = plist.term_id
        value = self._max.get(term_id)
        if value is None or term_id in self._stale:
            self._recompute_term(term_id)
            value = self._max.get(term_id, NEG_INF)
        return value

    def zone_max(self, plist: QueryPostingList, start_pos: int, boundary_qid: int) -> float:
        # The global maximum is a (loose but valid) zone bound, which lets the
        # MRIO driver run with this maintainer for comparison purposes.
        if start_pos >= len(plist) or plist.qids[start_pos] >= boundary_qid:
            return NEG_INF
        return self.global_max(plist)

    def zone_max_range(self, plist: QueryPostingList, start_pos: int, end_pos: int) -> float:
        if end_pos <= start_pos:
            return NEG_INF
        return self.global_max(plist)

    def on_threshold_change(self, query: Query) -> None:
        for term_id, weight in query.vector.items():
            if term_id not in self._max or term_id in self._stale:
                continue  # stale terms recompute wholesale on next probe
            ratio = self.current_ratio(query.query_id, weight)
            if ratio > self._max[term_id]:
                # Threshold dropped (expiration): raise the cached maximum.
                self._max[term_id] = ratio
                self._argmax[term_id] = query.query_id
            elif self._argmax.get(term_id) == query.query_id:
                # The cached maximizer tightened; recompute to stay tight.
                self._recompute_term(term_id)

    def on_renormalize(self, factor: float) -> None:
        for term_id in list(self._max):
            if math.isfinite(self._max[term_id]):
                self._max[term_id] *= factor

    def restore(self) -> None:
        for term_id in list(self._max):
            self._recompute_term(term_id)

    def on_query_registered(self, query: Query) -> None:
        for term_id, weight in query.vector.items():
            ratio = self.current_ratio(query.query_id, weight)
            if term_id not in self._max or ratio > self._max[term_id]:
                self._max[term_id] = ratio
                self._argmax[term_id] = query.query_id

    def on_query_unregistered(self, query: Query) -> None:
        for term_id in query.vector:
            if self._argmax.get(term_id) == query.query_id:
                # Deferred: the stale cached value is recomputed on next
                # access (removing the maximizer can only lower the true
                # maximum, so no probe can read an unsafe bound meanwhile).
                plist = self.index.get(term_id)
                if plist is None or len(plist) == 0:
                    self._max.pop(term_id, None)
                    self._argmax.pop(term_id, None)
                    self._stale.discard(term_id)
                else:
                    self._stale.add(term_id)


class ExactZoneBounds(BoundMaintainer):
    """Zone maxima computed by scanning the zone with *current* thresholds.

    Example::

        bounds = make_zone_bounds("exact", index, results)
        ub = bounds.zone_max_range(plist, start_pos, end_pos)
    """

    name = "exact"

    def global_max(self, plist: QueryPostingList) -> float:
        return self.zone_max_range(plist, 0, len(plist))

    def zone_max_range(self, plist: QueryPostingList, start_pos: int, end_pos: int) -> float:
        best = NEG_INF
        qids = plist.qids
        weights = plist.weights
        thresholds = self.results.threshold
        end_pos = min(end_pos, len(qids))
        for pos in range(start_pos, end_pos):
            threshold = thresholds(qids[pos])
            if threshold <= 0.0:
                return INF
            ratio = weights[pos] / threshold
            if ratio > best:
                best = ratio
        return best

    def on_threshold_change(self, query: Query) -> None:
        # Nothing cached; the next scan sees the new threshold.
        return

    def on_renormalize(self, factor: float) -> None:
        return

    def restore(self) -> None:
        return

    def on_query_registered(self, query: Query) -> None:
        return

    def on_query_unregistered(self, query: Query) -> None:
        return


class _StoredRatioZoneBounds(BoundMaintainer):
    """Shared base of the tree- and block-based maintainers.

    Both keep, per posting list, an array of *stored* ratios aligned with the
    list positions plus a range-max structure over it.  Structural changes
    (query registration / unregistration shift positions) mark the term
    dirty; the structure is rebuilt lazily on next access.
    """

    def __init__(self, index: QueryIndex, results: ResultStore) -> None:
        super().__init__(index, results)
        self._structures: Dict[TermId, object] = {}
        self._dirty: set[TermId] = {plist.term_id for plist in index.posting_lists()}

    # -- hooks for subclasses ---------------------------------------------- #

    def _build_structure(self, ratios: list[float]) -> object:  # pragma: no cover - abstract
        raise NotImplementedError

    def _structure_update(self, structure: object, pos: int, value: float) -> None:  # pragma: no cover
        raise NotImplementedError

    def _structure_query(self, structure: object, lo: int, hi: int) -> float:  # pragma: no cover
        raise NotImplementedError

    def _structure_global(self, structure: object) -> float:  # pragma: no cover
        raise NotImplementedError

    # -- shared machinery --------------------------------------------------- #

    def _ensure_structure(self, plist: QueryPostingList) -> Optional[object]:
        term_id = plist.term_id
        if term_id in self._dirty or term_id not in self._structures:
            if len(plist) == 0:
                self._structures.pop(term_id, None)
                self._dirty.discard(term_id)
                return None
            ratios = [
                self.current_ratio(qid, weight) for qid, weight in plist
            ]
            self._structures[term_id] = self._build_structure(ratios)
            self._dirty.discard(term_id)
        return self._structures.get(term_id)

    def global_max(self, plist: QueryPostingList) -> float:
        structure = self._ensure_structure(plist)
        if structure is None:
            return NEG_INF
        return self._structure_global(structure)

    def zone_max_range(self, plist: QueryPostingList, start_pos: int, end_pos: int) -> float:
        if end_pos <= start_pos:
            return NEG_INF
        structure = self._ensure_structure(plist)
        if structure is None:
            return NEG_INF
        return self._structure_query(structure, start_pos, end_pos)

    def zone_query_fn(self, plist: QueryPostingList):
        structure = self._ensure_structure(plist)
        if structure is None:
            return super().zone_query_fn(plist)
        return self._structure_query_fn(structure)

    def _structure_query_fn(self, structure: object):
        """A bound ``(lo, hi) -> max`` callable of one structure (hook)."""

        def query(lo: int, hi: int) -> float:
            return self._structure_query(structure, lo, hi)

        return query

    def on_threshold_change(self, query: Query) -> None:
        for term_id, weight in query.vector.items():
            if term_id in self._dirty:
                continue
            structure = self._structures.get(term_id)
            plist = self.index.get(term_id)
            if structure is None or plist is None:
                continue
            pos = plist.position_of(query.query_id)
            if pos is None:
                continue
            ratio = self.current_ratio(query.query_id, weight)
            self._structure_update(structure, pos, ratio)

    def built_terms(self) -> Optional[List[TermId]]:
        """Terms whose structure is built and clean (crash-recovery capture).

        Which structures exist is access *history*: a term built two batches
        ago carries stored ratios that are point-updated only at batch
        boundaries, while a term rebuilt lazily mid-batch reads the batch's
        already-risen thresholds — both are safe upper bounds, but they can
        prune differently.  Capturing the clean-built term set (and eagerly
        rebuilding it on restore, when stored ratios provably equal current
        ratios) keeps a recovered engine's pruning replay-exact.
        """
        return sorted(term_id for term_id in self._structures if term_id not in self._dirty)

    def rebuild_terms(self, term_ids: Iterable[TermId]) -> None:
        """Eagerly build the structures of ``term_ids`` (crash recovery)."""
        for term_id in term_ids:
            plist = self.index.get(term_id)
            if plist is not None:
                self._ensure_structure(plist)

    def on_renormalize(self, factor: float) -> None:
        # Every stored ratio changes by the same factor; rebuilding lazily is
        # simpler than patching the structures in place.
        self._dirty.update(term_id for term_id in self._structures)

    def restore(self) -> None:
        # Restored thresholds void every stored ratio; rebuild lazily.
        self._dirty.update(plist.term_id for plist in self.index.posting_lists())

    def on_query_registered(self, query: Query) -> None:
        self._dirty.update(query.vector.keys())

    def on_query_unregistered(self, query: Query) -> None:
        self._dirty.update(query.vector.keys())


class TreeZoneBounds(_StoredRatioZoneBounds):
    """Segment-tree range maxima over stored ratios (exact w.r.t. stored values).

    Example::

        bounds = make_zone_bounds("tree", index, results)   # MRIO's default
        ub = bounds.zone_max_range(plist, start_pos, end_pos)
    """

    name = "tree"

    def _build_structure(self, ratios: list[float]) -> SegmentTreeMax:
        return SegmentTreeMax(ratios)

    def _structure_update(self, structure: SegmentTreeMax, pos: int, value: float) -> None:
        structure.update(pos, value)

    def _structure_query(self, structure: SegmentTreeMax, lo: int, hi: int) -> float:
        return structure.query(lo, hi)

    def _structure_query_fn(self, structure: SegmentTreeMax):
        return structure.query

    def _structure_global(self, structure: SegmentTreeMax) -> float:
        return structure.global_max()


class BlockZoneBounds(_StoredRatioZoneBounds):
    """Block maxima over stored ratios (loosest bounds, cheapest queries).

    Example::

        bounds = make_zone_bounds("block", index, results, block_size=64)
        ub = bounds.zone_max_range(plist, start_pos, end_pos)
    """

    name = "block"

    def __init__(self, index: QueryIndex, results: ResultStore, block_size: int = 64) -> None:
        if block_size <= 0:
            raise ConfigurationError(f"block_size must be > 0, got {block_size}")
        self.block_size = block_size
        super().__init__(index, results)

    def _build_structure(self, ratios: list[float]) -> BlockMax:
        return BlockMax(ratios, block_size=self.block_size)

    def _structure_update(self, structure: BlockMax, pos: int, value: float) -> None:
        structure.update(pos, value)

    def _structure_query(self, structure: BlockMax, lo: int, hi: int) -> float:
        return structure.query(lo, hi)

    def _structure_query_fn(self, structure: BlockMax):
        return structure.query

    def _structure_global(self, structure: BlockMax) -> float:
        return structure.global_max()


_ZONE_BOUND_FACTORIES = {
    "exact": ExactZoneBounds,
    "tree": TreeZoneBounds,
    "block": BlockZoneBounds,
    "global": GlobalMaxBounds,
}


def make_zone_bounds(
    variant: str, index: QueryIndex, results: ResultStore, **kwargs: object
) -> BoundMaintainer:
    """Construct a zone-bound maintainer by name (``exact``/``tree``/``block``)."""
    factory = _ZONE_BOUND_FACTORIES.get(variant)
    if factory is None:
        raise ConfigurationError(
            f"unknown UB* variant {variant!r}; expected one of "
            f"{sorted(_ZONE_BOUND_FACTORIES)}"
        )
    return factory(index, results, **kwargs)  # type: ignore[arg-type]
