"""MRIO — Minimal RIO, the paper's main contribution.

MRIO replaces RIO's global per-list bound by the *locally adaptive* bound of
Eq. 3: for the prefix ending at the i-th list, each term's factor is the
maximum normalized preference among the queries whose ids lie inside the
zone ``[c_1, c_{i+1})`` actually at risk of being pruned (``[c_1, c_m]`` for
the last prefix).  Tighter bounds push the pivot further right, which makes
the cursor jumps longer and — as the journal proves — minimizes the number
of iterations any ID-ordering algorithm can achieve.

The zone maxima are served by one of three interchangeable maintainers
(``exact``, ``tree``, ``block``; see :mod:`repro.core.bounds`), selectable
via ``ub_variant``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional

from repro.core.bounds import BoundMaintainer, INF, NEG_INF, make_zone_bounds
from repro.core.cursors import ListCursor
from repro.core.idordering import ReverseIDOrderingBase, _cursor_qid, _cursor_term
from repro.core.registry import register_algorithm
from repro.core.results import ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.exceptions import ConfigurationError


@register_algorithm("mrio")
class MRIOAlgorithm(ReverseIDOrderingBase):
    """Minimal RIO with locally adaptive zone bounds (Eq. 3).

    Example::

        algorithm = MRIOAlgorithm(ExponentialDecay(lam=1e-3), ub_variant="tree")
        algorithm.register(Query(query_id=0, vector={3: 1.0}, k=5))
        updates = algorithm.process(document)   # or process_batch([...])
    """

    name = "mrio"
    #: The zone bound only covers ids up to the largest cursor, so a failed
    #: pivot search prunes that zone and processing continues beyond it.
    prunes_all_on_no_pivot = False

    def __init__(
        self,
        decay: Optional[ExponentialDecay] = None,
        ub_variant: str = "tree",
        block_size: int = 64,
    ) -> None:
        if ub_variant not in ("exact", "tree", "block"):
            raise ConfigurationError(
                f"ub_variant must be 'exact', 'tree' or 'block', got {ub_variant!r}"
            )
        self.ub_variant = ub_variant
        self.block_size = block_size
        super().__init__(decay)
        # Scratch columns of the pivot search, reused across calls to avoid
        # two list allocations per iteration of the driver loop.
        self._fp_contributions: List[float] = []
        self._fp_window_start: List[int] = []

    def _make_bounds(self) -> BoundMaintainer:
        kwargs = {"block_size": self.block_size} if self.ub_variant == "block" else {}
        return make_zone_bounds(self.ub_variant, self.index, self.results, **kwargs)

    def _find_pivot(
        self, active: List[ListCursor], aqids: List[int], amplification: float
    ) -> Optional[int]:
        num_lists = len(active)
        zone_max_range = self.bounds.zone_max_range
        counters = self.counters
        # Within a batch the stored ratios are frozen (threshold propagation
        # is deferred), so zone maxima are pure in (term, window) and can be
        # memoized across the batch's documents, which share many terms and
        # therefore many early-iteration windows.
        bound_cache = self._bound_cache
        # contributions[j]: f_j times the max normalized preference of list j
        # over the zone covered so far (0 while nothing of list j is in the
        # zone); window_start[j]: first position of list j not yet covered.
        # Both grow lazily with the prefix, because the pivot is usually found
        # after only a few lists.
        contributions = self._fp_contributions
        window_start = self._fp_window_start
        contributions.clear()
        window_start.clear()
        previous_boundary = aqids[0]
        last_boundary = aqids[-1] + 1
        upper_bound = 0.0

        for i in range(num_lists):
            cursor_i = active[i]
            contributions.append(0.0)
            window_start.append(cursor_i.pos)
            boundary = aqids[i + 1] if i + 1 < num_lists else last_boundary
            if boundary > previous_boundary:
                # Extend every list of the prefix by the id window
                # [previous_boundary, boundary).
                for j in range(i + 1):
                    cursor = active[j]
                    start_pos = window_start[j]
                    plist = cursor.plist
                    qids = plist.qids
                    if start_pos >= len(qids) or qids[start_pos] >= boundary:
                        continue
                    if bound_cache is None:
                        end_pos = plist.first_geq(boundary, start=start_pos)
                        value = zone_max_range(plist, start_pos, end_pos)
                        counters.bound_computations += 1
                    else:
                        # The batch memo is keyed by the *boundary* id, which
                        # folds the boundary bisect and the zone lookup into
                        # one cache probe (both are pure while the term's
                        # postings and stored ratios are unchanged — the
                        # term's sub-map is dropped whenever they change).
                        term_cache = bound_cache.get(plist.term_id)
                        if term_cache is None:
                            term_cache = bound_cache[plist.term_id] = {}
                        key = (start_pos, boundary)
                        cached = term_cache.get(key)
                        if cached is None:
                            end_pos = plist.first_geq(boundary, start=start_pos)
                            value = zone_max_range(plist, start_pos, end_pos)
                            counters.bound_computations += 1
                            term_cache[key] = (end_pos, value)
                        else:
                            end_pos, value = cached
                    window_start[j] = end_pos
                    if value != NEG_INF:
                        contribution = cursor.doc_weight * value
                        if contribution > contributions[j]:
                            upper_bound += contribution - contributions[j]
                            contributions[j] = contribution
                previous_boundary = boundary

            if upper_bound != upper_bound or upper_bound == INF:
                # NaN can only arise from inf - inf above; treat it as "cannot
                # prune", exactly like an infinite bound.
                return i
            if upper_bound * amplification >= 1.0:
                return i
        return None

    def _batch_drive_cursors(
        self,
        doc_id: int,
        cursors: List[ListCursor],
        amplification: float,
        updates: List[ResultUpdate],
    ) -> None:
        """Fused batch drive loop: pivot search and result offer inlined.

        Semantically identical to :meth:`_drive_cursors` +
        :meth:`_find_pivot` + ``offer``, but with the per-iteration function
        dispatch flattened into one loop — the "Python-level dispatch" cost
        the batch fast path exists to amortize.  Counters are accumulated in
        locals and flushed once per document.
        """
        dirty = self._deferred_threshold_queries
        bound_cache = self._bound_cache
        if dirty is None or bound_cache is None:  # pragma: no cover - defensive
            self._drive_cursors(doc_id, cursors, amplification, updates)
            return
        zone_fns = self._batch_zone_fns
        zone_query_fn = self.bounds.zone_query_fn
        results_get = self.results.get
        counters = self.counters
        contributions = self._fp_contributions
        window_start = self._fp_window_start
        dirty_add = dirty.add

        active = sorted(cursors, key=_cursor_qid)
        aqids = [cursor.plist.qids[cursor.pos] for cursor in active]
        iterations = 0
        postings_scanned = 0
        full_evaluations = 0
        bound_computations = 0
        result_updates = 0

        while active:
            iterations += 1
            # ---- pivot search (Eq. 3), inlined from _find_pivot ---- #
            num_lists = len(active)
            contributions.clear()
            window_start.clear()
            previous_boundary = aqids[0]
            last_boundary = aqids[-1] + 1
            upper_bound = 0.0
            pivot_index: Optional[int] = None
            for i in range(num_lists):
                contributions.append(0.0)
                window_start.append(active[i].pos)
                boundary = aqids[i + 1] if i + 1 < num_lists else last_boundary
                if boundary > previous_boundary:
                    for j in range(i + 1):
                        cursor = active[j]
                        start_pos = window_start[j]
                        plist = cursor.plist
                        qids = plist.qids
                        if start_pos >= len(qids) or qids[start_pos] >= boundary:
                            continue
                        term_id = plist.term_id
                        term_cache = bound_cache.get(term_id)
                        if term_cache is None:
                            term_cache = bound_cache[term_id] = {}
                        key = (start_pos, boundary)
                        cached = term_cache.get(key)
                        if cached is None:
                            end_pos = bisect_left(qids, boundary, start_pos)
                            zone_fn = zone_fns.get(term_id)
                            if zone_fn is None:
                                zone_fn = zone_fns[term_id] = zone_query_fn(plist)
                            value = zone_fn(start_pos, end_pos)
                            bound_computations += 1
                            term_cache[key] = (end_pos, value)
                        else:
                            end_pos, value = cached
                        window_start[j] = end_pos
                        if value != NEG_INF:
                            contribution = cursor.doc_weight * value
                            if contribution > contributions[j]:
                                upper_bound += contribution - contributions[j]
                                contributions[j] = contribution
                    previous_boundary = boundary
                if upper_bound != upper_bound or upper_bound == INF:
                    pivot_index = i
                    break
                if upper_bound * amplification >= 1.0:
                    pivot_index = i
                    break

            # ---- act on the pivot, inlined from _drive_cursors ---- #
            if pivot_index is None:
                target = aqids[-1] + 1
                moved = active
                active = []
                aqids = []
                for cursor in moved:
                    qids = cursor.plist.qids
                    pos = bisect_left(qids, target, cursor.pos)
                    cursor.pos = pos
                    if pos < len(qids):
                        qid = qids[pos]
                        at = bisect_left(aqids, qid)
                        aqids.insert(at, qid)
                        active.insert(at, cursor)
                continue

            pivot_qid = aqids[pivot_index]
            if aqids[0] == pivot_qid:
                prefix_end = bisect_right(aqids, pivot_qid)
                similarity = 0.0
                moved = active[:prefix_end]
                if prefix_end > 1:
                    # Canonical (term-ordered) summation: see _cursor_term.
                    moved.sort(key=_cursor_term)
                for cursor in moved:
                    similarity += cursor.doc_weight * cursor.plist.weights[cursor.pos]
                postings_scanned += prefix_end
                full_evaluations += 1
                del active[:prefix_end]
                del aqids[:prefix_end]
                score = similarity * amplification
                accepted, evicted, threshold_changed = results_get(
                    pivot_qid
                ).offer_tracked(doc_id, score)
                if accepted:
                    result_updates += 1
                    updates.append(ResultUpdate(pivot_qid, doc_id, score, evicted))
                    if threshold_changed:
                        dirty_add(pivot_qid)
                for cursor in moved:
                    pos = cursor.pos + 1
                    cursor.pos = pos
                    qids = cursor.plist.qids
                    if pos < len(qids):
                        qid = qids[pos]
                        at = bisect_left(aqids, qid)
                        aqids.insert(at, qid)
                        active.insert(at, cursor)
            else:
                moved = active[:pivot_index]
                del active[:pivot_index]
                del aqids[:pivot_index]
                for cursor in moved:
                    qids = cursor.plist.qids
                    pos = bisect_left(qids, pivot_qid, cursor.pos)
                    cursor.pos = pos
                    if pos < len(qids):
                        qid = qids[pos]
                        at = bisect_left(aqids, qid)
                        aqids.insert(at, qid)
                        active.insert(at, cursor)

        counters.iterations += iterations
        counters.postings_scanned += postings_scanned
        counters.full_evaluations += full_evaluations
        counters.bound_computations += bound_computations
        counters.result_updates += result_updates

    def describe(self) -> dict:
        info = super().describe()
        info["ub_variant"] = self.ub_variant
        return info
