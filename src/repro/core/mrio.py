"""MRIO — Minimal RIO, the paper's main contribution.

MRIO replaces RIO's global per-list bound by the *locally adaptive* bound of
Eq. 3: for the prefix ending at the i-th list, each term's factor is the
maximum normalized preference among the queries whose ids lie inside the
zone ``[c_1, c_{i+1})`` actually at risk of being pruned (``[c_1, c_m]`` for
the last prefix).  Tighter bounds push the pivot further right, which makes
the cursor jumps longer and — as the journal proves — minimizes the number
of iterations any ID-ordering algorithm can achieve.

The zone maxima are served by one of three interchangeable maintainers
(``exact``, ``tree``, ``block``; see :mod:`repro.core.bounds`), selectable
via ``ub_variant``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bounds import BoundMaintainer, INF, NEG_INF, make_zone_bounds
from repro.core.cursors import ListCursor
from repro.core.idordering import ReverseIDOrderingBase
from repro.documents.decay import ExponentialDecay
from repro.exceptions import ConfigurationError


class MRIOAlgorithm(ReverseIDOrderingBase):
    """Minimal RIO with locally adaptive zone bounds (Eq. 3)."""

    name = "mrio"
    #: The zone bound only covers ids up to the largest cursor, so a failed
    #: pivot search prunes that zone and processing continues beyond it.
    prunes_all_on_no_pivot = False

    def __init__(
        self,
        decay: Optional[ExponentialDecay] = None,
        ub_variant: str = "tree",
        block_size: int = 64,
    ) -> None:
        if ub_variant not in ("exact", "tree", "block"):
            raise ConfigurationError(
                f"ub_variant must be 'exact', 'tree' or 'block', got {ub_variant!r}"
            )
        self.ub_variant = ub_variant
        self.block_size = block_size
        super().__init__(decay)

    def _make_bounds(self) -> BoundMaintainer:
        kwargs = {"block_size": self.block_size} if self.ub_variant == "block" else {}
        return make_zone_bounds(self.ub_variant, self.index, self.results, **kwargs)

    def _find_pivot(self, active: List[ListCursor], amplification: float) -> Optional[int]:
        num_lists = len(active)
        zone_max_range = self.bounds.zone_max_range
        counters = self.counters
        # contributions[j]: f_j times the max normalized preference of list j
        # over the zone covered so far (0 while nothing of list j is in the
        # zone); window_start[j]: first position of list j not yet covered.
        # Both grow lazily with the prefix, because the pivot is usually found
        # after only a few lists.
        contributions: List[float] = []
        window_start: List[int] = []
        previous_boundary = active[0].current_qid
        upper_bound = 0.0

        for i in range(num_lists):
            cursor_i = active[i]
            contributions.append(0.0)
            window_start.append(cursor_i.pos)
            boundary = (
                active[i + 1].plist.qids[active[i + 1].pos]
                if i + 1 < num_lists
                else active[num_lists - 1].current_qid + 1
            )
            if boundary > previous_boundary:
                # Extend every list of the prefix by the id window
                # [previous_boundary, boundary).
                for j in range(i + 1):
                    cursor = active[j]
                    start_pos = window_start[j]
                    plist = cursor.plist
                    qids = plist.qids
                    if start_pos >= len(qids) or qids[start_pos] >= boundary:
                        continue
                    end_pos = plist.first_geq(boundary, start=start_pos)
                    window_start[j] = end_pos
                    value = zone_max_range(plist, start_pos, end_pos)
                    counters.bound_computations += 1
                    if value != NEG_INF:
                        contribution = cursor.doc_weight * value
                        if contribution > contributions[j]:
                            upper_bound += contribution - contributions[j]
                            contributions[j] = contribution
                previous_boundary = boundary

            if upper_bound != upper_bound or upper_bound == INF:
                # NaN can only arise from inf - inf above; treat it as "cannot
                # prune", exactly like an infinite bound.
                return i
            if upper_bound * amplification >= 1.0:
                return i
        return None

    def describe(self) -> dict:
        info = super().describe()
        info["ub_variant"] = self.ub_variant
        return info
