"""Abstract base class shared by every stream-processing algorithm.

The base class owns what all algorithms (RIO, MRIO and the baselines) have in
common:

* the packed :class:`~repro.queries.store.QueryStore` of registered query
  definitions (shared by reference with the per-term index structures; the
  historical ``queries`` dict surface survives as a read-only facade),
* the per-query :class:`~repro.core.results.TopKResult` store,
* the exponential decay model and its renormalization,
* work counters and per-event response times,
* result-update notification to listeners,
* threshold-change propagation to whatever per-term structures a concrete
  algorithm maintains.
"""

from __future__ import annotations

import abc
import math
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.results import (
    BatchUpdate,
    ResultEntry,
    ResultStore,
    ResultUpdate,
    coalesce_updates,
)
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.exceptions import DuplicateQueryError, StreamError, UnknownQueryError
from repro.metrics.counters import EventCounters
from repro.obs.telemetry import NULL_TELEMETRY
from repro.queries.query import Query
from repro.queries.store import QueryStore, RegisteredQueries
from repro.types import DocId, QueryId

UpdateListener = Callable[[ResultUpdate], None]
#: Callback invoked after a decay rebase with ``(new_origin, factor)``.
RenormalizeListener = Callable[[float, float], None]


class StreamAlgorithm(abc.ABC):
    """A continuous top-k monitoring algorithm over a document stream.

    Documents can be ingested one event at a time (:meth:`process`) or in
    arrival-ordered batches (:meth:`process_batch`), which amortizes the
    per-event fixed costs and coalesces the resulting notifications.

    Example::

        algorithm = create_algorithm("mrio", ExponentialDecay(lam=1e-3))
        algorithm.register(Query(query_id=0, vector={7: 1.0}, k=10))
        for batch in BatchingStream(stream, max_batch=64):
            for update in algorithm.process_batch(batch):
                print(update.query_id, update.entries)
    """

    #: Short name used by the factory, the reports and the benchmarks.
    name = "abstract"

    def __init__(self, decay: Optional[ExponentialDecay] = None) -> None:
        self.decay = decay or ExponentialDecay()
        #: Packed columnar store of every registered query definition — the
        #: single source of truth the index structures share by reference.
        self.store = QueryStore()
        self.results = ResultStore(store=self.store)
        self.counters = EventCounters()
        #: Read-only dict-like facade over :attr:`store` (``query id ->
        #: materialized Query``).  Lookups build transient ``Query`` objects;
        #: no per-query object is retained.
        self.queries: RegisteredQueries = RegisteredQueries(self.store)
        #: Per-event processing seconds.  Events ingested via
        #: :meth:`process_batch` contribute their batch's *mean* — correct
        #: for averages but not for tail percentiles; use
        #: :attr:`batch_response_times` for honest batch-level latency.
        self.response_times: List[float] = []
        #: One ``(batch_size, elapsed_seconds)`` pair per processed batch.
        self.batch_response_times: List[tuple] = []
        #: Lap recorder: the shared no-op unless an owner (monitor, shard)
        #: attaches a real :class:`~repro.obs.telemetry.Telemetry` — the
        #: per-event cost when disabled is one attribute read.
        self.telemetry = NULL_TELEMETRY
        self._update_listeners: List[UpdateListener] = []
        self._renormalize_listeners: List[RenormalizeListener] = []
        self._last_arrival: Optional[float] = None
        #: Non-None while a batch is being processed: query ids whose
        #: threshold changed and whose structure refresh is deferred to the
        #: batch boundary (safe: thresholds only grow during stream
        #: processing, so a stale bound stays an upper bound).
        self._deferred_threshold_queries: Optional[set] = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, query: Query) -> None:
        """Register one continuous query.

        The definition is packed into :attr:`store`; the ``Query`` object
        itself is not retained.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            self.store.register(query)
            self.results.add_query(query)
            self._register_structures(query)
            return
        started = time.perf_counter()
        self.store.register(query)
        self.results.add_query(query)
        self._register_structures(query)
        telemetry.observe("query.register", time.perf_counter() - started)
        telemetry.incr("churn_ops")
        telemetry.set_gauge("registered_queries", float(len(self.store)))

    def register_all(self, queries: Iterable[Query]) -> None:
        for query in queries:
            self.register(query)

    def unregister(self, query_id: QueryId) -> Query:
        """Remove one continuous query and its result state."""
        telemetry = self.telemetry
        started = time.perf_counter() if telemetry.enabled else 0.0
        query = self.store.materialize_or_none(query_id)
        if query is None:
            raise UnknownQueryError(f"query {query_id} is not registered")
        self._unregister_structures(query)
        self.store.unregister(query_id)
        self.results.remove_query(query_id)
        if telemetry.enabled:
            telemetry.observe("query.unregister", time.perf_counter() - started)
            telemetry.incr("churn_ops")
            telemetry.set_gauge("registered_queries", float(len(self.store)))
        return query

    @property
    def num_queries(self) -> int:
        return len(self.store)

    @property
    def last_arrival(self) -> Optional[float]:
        """Arrival time of the most recently processed event (the stream
        clock), or ``None`` before the first event.  The serving layer uses
        this to stamp published documents with monotone arrival times that
        resume correctly after a snapshot restore or crash recovery."""
        return self._last_arrival

    # ------------------------------------------------------------------ #
    # Hooks concrete algorithms implement
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _register_structures(self, query: Query) -> None:
        """Add the query to the algorithm's per-term structures."""

    @abc.abstractmethod
    def _unregister_structures(self, query: Query) -> None:
        """Remove the query from the algorithm's per-term structures."""

    @abc.abstractmethod
    def _process_document(self, document: Document, amplification: float) -> List[ResultUpdate]:
        """Refresh all query results for one arriving document."""

    def _on_threshold_change(self, query: Query) -> None:
        """A query's ``S_k`` changed; update per-term structures if needed."""

    def _on_renormalize(self, factor: float) -> None:
        """All thresholds were divided by ``factor``; rescale structures."""

    # ------------------------------------------------------------------ #
    # Stream processing
    # ------------------------------------------------------------------ #

    def _check_arrival(self, document: Document, previous: Optional[float]) -> float:
        """Validate a document's arrival time against the stream order."""
        if document.arrival_time is None:
            raise StreamError(
                f"document {document.doc_id} has no arrival time; route it "
                "through a DocumentStream or call with_arrival_time()"
            )
        if previous is not None and document.arrival_time < previous:
            raise StreamError(
                f"document {document.doc_id} arrives at {document.arrival_time}, "
                f"before the previous event at {previous}"
            )
        return document.arrival_time

    def process(self, document: Document) -> List[ResultUpdate]:
        """Process one stream event and return the result updates it caused."""
        self._last_arrival = self._check_arrival(document, self._last_arrival)
        if self.decay.needs_renormalization(document.arrival_time):
            self.renormalize(document.arrival_time)
        amplification = self.decay.amplification(document.arrival_time)

        started = time.perf_counter()
        updates = self._process_document(document, amplification)
        elapsed = time.perf_counter() - started

        self.counters.documents += 1
        self.counters.elapsed_seconds += elapsed
        self.response_times.append(elapsed)
        if self.telemetry.enabled:
            self.telemetry.observe("engine.event", elapsed)
        for update in updates:
            for listener in self._update_listeners:
                listener(update)
        return updates

    def process_all(self, documents: Iterable[Document]) -> List[ResultUpdate]:
        """Process several stream events through the per-event path."""
        updates: List[ResultUpdate] = []
        for document in documents:
            updates.extend(self.process(document))
        return updates

    def process_batch(self, documents: Sequence[Document]) -> List[BatchUpdate]:
        """Process an arrival-ordered batch of stream events as one unit.

        The batch fast path amortizes everything :meth:`process` pays per
        event — the renormalization check (and the renormalization itself, at
        most once per batch), the wall-clock probes, and the notification
        dispatch — and concrete algorithms additionally reuse their traversal
        structures across the batch's documents.  The final top-k state is
        identical to feeding the same documents through :meth:`process` one
        by one.

        Per-update listeners still receive every individual
        :class:`ResultUpdate` (window expiration needs the full eviction
        chain); the *return value* is coalesced to at most one
        :class:`BatchUpdate` per affected query.
        """
        docs = documents if isinstance(documents, list) else list(documents)
        if not docs:
            return []
        previous = self._last_arrival
        for document in docs:
            previous = self._check_arrival(document, previous)
        self._last_arrival = previous

        # One renormalization covers the whole batch: rebasing to the *last*
        # arrival keeps every amplification of the batch at or below 1, so no
        # score produced here can exceed the safe range.
        if self.decay.needs_renormalization(docs[-1].arrival_time):
            self.renormalize(docs[-1].arrival_time)
        amplification_of = self.decay.amplification
        amplifications: List[float] = []
        cached_time: Optional[float] = None
        cached_amp = 1.0
        for document in docs:
            if document.arrival_time != cached_time:
                cached_time = document.arrival_time
                cached_amp = amplification_of(cached_time)
            amplifications.append(cached_amp)

        started = time.perf_counter()
        self._deferred_threshold_queries = dirty = set()
        try:
            updates = self._process_batch_documents(docs, amplifications)
        finally:
            self._deferred_threshold_queries = None
            queries = self.queries
            for query_id in dirty:
                query = queries.get(query_id)
                if query is not None:
                    self._on_threshold_change(query)
        elapsed = time.perf_counter() - started

        self.counters.documents += len(docs)
        self.counters.elapsed_seconds += elapsed
        self.batch_response_times.append((len(docs), elapsed))
        # Mean-preserving per-event attribution; tail percentiles over
        # response_times are not meaningful for batched ingestion (every
        # event of a batch gets the same value) — see batch_response_times.
        per_event = elapsed / len(docs)
        self.response_times.extend([per_event] * len(docs))
        if self.telemetry.enabled:
            self.telemetry.observe("engine.batch", elapsed)
        if self._update_listeners:
            for update in updates:
                for listener in self._update_listeners:
                    listener(update)
        return coalesce_updates(updates)

    def _process_batch_documents(
        self, documents: Sequence[Document], amplifications: Sequence[float]
    ) -> List[ResultUpdate]:
        """Refresh all query results for one batch of documents.

        The default simply loops :meth:`_process_document`; algorithms with
        reusable traversal state override this with a true batched walk.
        """
        updates: List[ResultUpdate] = []
        process_document = self._process_document
        for document, amplification in zip(documents, amplifications):
            updates.extend(process_document(document, amplification))
        return updates

    # ------------------------------------------------------------------ #
    # Scoring helpers shared by the implementations
    # ------------------------------------------------------------------ #

    def exact_score(self, query: Query, document: Document, amplification: float) -> float:
        """The amplified score ``S(q, d)`` computed from the raw vectors."""
        qv = query.vector
        dv = document.vector
        if len(qv) > len(dv):
            qv, dv = dv, qv
        similarity = 0.0
        for term_id, weight in qv.items():
            other = dv.get(term_id)
            if other is not None:
                similarity += weight * other
        return similarity * amplification

    def offer(self, query_id: QueryId, doc_id: DocId, score: float) -> Optional[ResultUpdate]:
        """Offer a scored document to a query's result, propagating threshold changes.

        During a batch the propagation is *deferred*: the query is only
        marked dirty and every per-term structure refresh happens once at the
        batch boundary, no matter how many of the batch's documents entered
        the result.  Pruning stays safe because a threshold can only increase
        here, which makes any stale stored bound an over-estimate.
        """
        result = self.results.get(query_id)
        accepted, evicted, threshold_changed = result.offer_tracked(doc_id, score)
        if not accepted:
            return None
        self.counters.result_updates += 1
        if threshold_changed:
            self.store.set_threshold(query_id, result.threshold)
            deferred = self._deferred_threshold_queries
            if deferred is None:
                self._on_threshold_change(self.store.materialize(query_id))
            else:
                deferred.add(query_id)
        return ResultUpdate(
            query_id=query_id, doc_id=doc_id, score=score, evicted_doc_id=evicted
        )

    # ------------------------------------------------------------------ #
    # Results, notifications, maintenance
    # ------------------------------------------------------------------ #

    def top_k(self, query_id: QueryId) -> List[ResultEntry]:
        """The current top-k of a query, best first."""
        return self.results.get(query_id).entries()

    def threshold(self, query_id: QueryId) -> float:
        return self.results.threshold(query_id)

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback invoked for every result update."""
        self._update_listeners.append(listener)

    def add_renormalize_listener(self, listener: RenormalizeListener) -> None:
        """Register a callback invoked after every decay rebase.

        A renormalization rescales every stored score, which is exactly the
        worst case for delta-based consumers of the engine state — the
        durability layer, for example, listens here to promote its next
        incremental checkpoint to a full one.
        """
        self._renormalize_listeners.append(listener)

    def renormalize(self, new_origin: float) -> float:
        """Rebase the decay origin; divides every stored score by the factor."""
        factor = self.decay.rebase(new_origin)
        if factor != 1.0:
            self.results.scale_all(factor)
            self.store.scale_thresholds(factor)
            self._on_renormalize(factor)
            for listener in self._renormalize_listeners:
                listener(new_origin, factor)
        return factor

    # ------------------------------------------------------------------ #
    # Snapshot / restore (shard rebalancing)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """Capture the full engine state: queries, results, decay, counters.

        The snapshot is a structural (in-memory) capture meant for handing
        an engine's queries to other engine shards during rebalancing —
        :class:`~repro.queries.query.Query` objects are materialized from
        the packed store (so the capture stays valid however this engine
        mutates afterwards), everything else is copied.  Timing samples
        (``response_times``) are measurements, not state, and are not part
        of it.
        """
        state: Dict[str, object] = {
            "algorithm": self.name,
            "queries": list(self.queries.values()),
            "results": self.results.snapshot(),
            "decay": self.decay.snapshot(),
            "counters": self.counters.snapshot(),
            "last_arrival": self._last_arrival,
        }
        structures = self._snapshot_structures()
        if structures is not None:
            state["structures"] = structures
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Replace this engine's state with a :meth:`snapshot` capture.

        Re-registers the captured queries (rebuilding the per-term
        structures), restores each query's result heap, the decay origin,
        the counters and the stream clock, then lets the algorithm refresh
        whatever cached bounds depend on thresholds
        (:meth:`_restore_structures`).  Restoring a snapshot taken from a
        *different* engine is the rebalancing primitive: the restored
        engine continues the stream exactly where the captured one stopped.
        """
        for query_id in list(self.queries):
            self.unregister(query_id)
        self.decay.restore(state["decay"])  # type: ignore[arg-type]
        for query in state["queries"]:  # type: ignore[union-attr]
            self.register(query)
        self.results.restore(state["results"])  # type: ignore[arg-type]
        self.counters.restore(state["counters"])  # type: ignore[arg-type]
        self.store.refresh_thresholds(self.results.threshold)
        self._last_arrival = state["last_arrival"]  # type: ignore[assignment]
        self._restore_structures(state.get("structures"))  # type: ignore[arg-type]

    def restore_queries(self, queries: Iterable[Query], state: Dict[str, object]) -> None:
        """Adopt a *subset* of a captured engine's queries into this engine.

        Used when a router re-partitions one snapshot across several
        shards: ``queries`` selects the partition, while decay, stream
        clock and per-query results come from ``state``.  Counters are
        intentionally not adopted (they cannot be attributed to a query
        subset); the caller keeps them wherever it aggregates statistics.
        """
        self.decay.restore(state["decay"])  # type: ignore[arg-type]
        captured_results = state["results"]  # type: ignore[assignment]
        for query in queries:
            self.register(query)
            result_state = captured_results.get(query.query_id)  # type: ignore[union-attr]
            if result_state is not None:
                self.results.get(query.query_id).restore(result_state)
        self.store.refresh_thresholds(self.results.threshold)
        self._last_arrival = state["last_arrival"]  # type: ignore[assignment]
        self._restore_structures()

    def _snapshot_structures(self) -> Optional[Dict[str, object]]:
        """Capture algorithm-specific structure state, or None when the
        per-term structures are pure functions of queries + thresholds.

        Engines whose structures accumulate *history* — stale stored bounds,
        maintenance counters, persistent memo caches — override this so a
        restored engine performs exactly the work the captured one would
        have (work counters stay replay-exact across crash recovery).  The
        returned value must be plain JSON-able data (lists, dicts with
        string keys, numbers, booleans): the persistence codec embeds it in
        checkpoints verbatim.
        """
        return None

    @staticmethod
    def _pack_float(value: float) -> object:
        """JSON-safe float for structure captures: infinities become sentinels.

        Stored bounds are ``weight / S_k`` ratios, which are infinite while a
        result is not yet full; canonical JSON (rightly) refuses non-finite
        floats, so captures spell them out.
        """
        if value == math.inf:
            return "inf"
        if value == -math.inf:
            return "-inf"
        return value

    @staticmethod
    def _unpack_float(value: object) -> float:
        if value == "inf":
            return math.inf
        if value == "-inf":
            return -math.inf
        return float(value)  # type: ignore[arg-type]

    def _restore_structures(self, structures: Optional[Dict[str, object]] = None) -> None:
        """Refresh threshold-dependent caches after a restore.

        ``structures`` is a :meth:`_snapshot_structures` capture when the
        restored state carried one (absent for partial restores such as
        shard rebalancing, where structure history cannot be attributed to
        a query subset).  The default ignores it and funnels every query
        through :meth:`_on_threshold_change` — correct for all algorithms
        whose caches key off ``S_k``; engines with wholesale invalidation
        or captured structure state override this.
        """
        for query in self.queries.values():
            self._on_threshold_change(query)

    def notify_threshold_change(self, query_id: QueryId) -> None:
        """External notification that a query's threshold changed.

        Used by the window-expiration manager, whose re-evaluation can lower
        a threshold — something normal stream processing never does.
        """
        query = self.store.materialize_or_none(query_id)
        if query is not None:
            self.store.set_threshold(query_id, self.results.threshold(query_id))
            self._on_threshold_change(query)

    def describe(self) -> Dict[str, object]:
        """A small diagnostic summary of the algorithm state."""
        return {
            "algorithm": self.name,
            "num_queries": self.num_queries,
            "documents_processed": self.counters.documents,
            "decay_lambda": self.decay.lam,
            "decay_origin": self.decay.origin,
        }
