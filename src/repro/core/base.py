"""Abstract base class shared by every stream-processing algorithm.

The base class owns what all algorithms (RIO, MRIO and the baselines) have in
common:

* the registered :class:`~repro.queries.query.Query` objects,
* the per-query :class:`~repro.core.results.TopKResult` store,
* the exponential decay model and its renormalization,
* work counters and per-event response times,
* result-update notification to listeners,
* threshold-change propagation to whatever per-term structures a concrete
  algorithm maintains.
"""

from __future__ import annotations

import abc
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.results import ResultEntry, ResultStore, ResultUpdate
from repro.documents.decay import ExponentialDecay
from repro.documents.document import Document
from repro.exceptions import DuplicateQueryError, StreamError, UnknownQueryError
from repro.metrics.counters import EventCounters
from repro.queries.query import Query
from repro.types import DocId, QueryId

UpdateListener = Callable[[ResultUpdate], None]


class StreamAlgorithm(abc.ABC):
    """A continuous top-k monitoring algorithm over a document stream."""

    #: Short name used by the factory, the reports and the benchmarks.
    name = "abstract"

    def __init__(self, decay: Optional[ExponentialDecay] = None) -> None:
        self.decay = decay or ExponentialDecay()
        self.results = ResultStore()
        self.counters = EventCounters()
        self.queries: Dict[QueryId, Query] = {}
        self.response_times: List[float] = []
        self._update_listeners: List[UpdateListener] = []
        self._last_arrival: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, query: Query) -> None:
        """Register one continuous query."""
        if query.query_id in self.queries:
            raise DuplicateQueryError(f"query {query.query_id} is already registered")
        self.queries[query.query_id] = query
        self.results.add_query(query)
        self._register_structures(query)

    def register_all(self, queries: Iterable[Query]) -> None:
        for query in queries:
            self.register(query)

    def unregister(self, query_id: QueryId) -> Query:
        """Remove one continuous query and its result state."""
        query = self.queries.pop(query_id, None)
        if query is None:
            raise UnknownQueryError(f"query {query_id} is not registered")
        self._unregister_structures(query)
        self.results.remove_query(query_id)
        return query

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    # ------------------------------------------------------------------ #
    # Hooks concrete algorithms implement
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _register_structures(self, query: Query) -> None:
        """Add the query to the algorithm's per-term structures."""

    @abc.abstractmethod
    def _unregister_structures(self, query: Query) -> None:
        """Remove the query from the algorithm's per-term structures."""

    @abc.abstractmethod
    def _process_document(self, document: Document, amplification: float) -> List[ResultUpdate]:
        """Refresh all query results for one arriving document."""

    def _on_threshold_change(self, query: Query) -> None:
        """A query's ``S_k`` changed; update per-term structures if needed."""

    def _on_renormalize(self, factor: float) -> None:
        """All thresholds were divided by ``factor``; rescale structures."""

    # ------------------------------------------------------------------ #
    # Stream processing
    # ------------------------------------------------------------------ #

    def process(self, document: Document) -> List[ResultUpdate]:
        """Process one stream event and return the result updates it caused."""
        if document.arrival_time is None:
            raise StreamError(
                f"document {document.doc_id} has no arrival time; route it "
                "through a DocumentStream or call with_arrival_time()"
            )
        if self._last_arrival is not None and document.arrival_time < self._last_arrival:
            raise StreamError(
                f"document {document.doc_id} arrives at {document.arrival_time}, "
                f"before the previous event at {self._last_arrival}"
            )
        self._last_arrival = document.arrival_time
        if self.decay.needs_renormalization(document.arrival_time):
            self.renormalize(document.arrival_time)
        amplification = self.decay.amplification(document.arrival_time)

        started = time.perf_counter()
        updates = self._process_document(document, amplification)
        elapsed = time.perf_counter() - started

        self.counters.documents += 1
        self.counters.elapsed_seconds += elapsed
        self.response_times.append(elapsed)
        for update in updates:
            for listener in self._update_listeners:
                listener(update)
        return updates

    def process_all(self, documents: Iterable[Document]) -> List[ResultUpdate]:
        """Process a batch of stream events."""
        updates: List[ResultUpdate] = []
        for document in documents:
            updates.extend(self.process(document))
        return updates

    # ------------------------------------------------------------------ #
    # Scoring helpers shared by the implementations
    # ------------------------------------------------------------------ #

    def exact_score(self, query: Query, document: Document, amplification: float) -> float:
        """The amplified score ``S(q, d)`` computed from the raw vectors."""
        qv = query.vector
        dv = document.vector
        if len(qv) > len(dv):
            qv, dv = dv, qv
        similarity = 0.0
        for term_id, weight in qv.items():
            other = dv.get(term_id)
            if other is not None:
                similarity += weight * other
        return similarity * amplification

    def offer(self, query_id: QueryId, doc_id: DocId, score: float) -> Optional[ResultUpdate]:
        """Offer a scored document to a query's result, propagating threshold changes."""
        result = self.results.get(query_id)
        old_threshold = result.threshold
        update = self.results.offer(query_id, doc_id, score)
        if update is not None:
            self.counters.result_updates += 1
            if result.threshold != old_threshold:
                self._on_threshold_change(self.queries[query_id])
        return update

    # ------------------------------------------------------------------ #
    # Results, notifications, maintenance
    # ------------------------------------------------------------------ #

    def top_k(self, query_id: QueryId) -> List[ResultEntry]:
        """The current top-k of a query, best first."""
        return self.results.get(query_id).entries()

    def threshold(self, query_id: QueryId) -> float:
        return self.results.threshold(query_id)

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback invoked for every result update."""
        self._update_listeners.append(listener)

    def renormalize(self, new_origin: float) -> float:
        """Rebase the decay origin; divides every stored score by the factor."""
        factor = self.decay.rebase(new_origin)
        if factor != 1.0:
            self.results.scale_all(factor)
            self._on_renormalize(factor)
        return factor

    def notify_threshold_change(self, query_id: QueryId) -> None:
        """External notification that a query's threshold changed.

        Used by the window-expiration manager, whose re-evaluation can lower
        a threshold — something normal stream processing never does.
        """
        query = self.queries.get(query_id)
        if query is not None:
            self._on_threshold_change(query)

    def describe(self) -> Dict[str, object]:
        """A small diagnostic summary of the algorithm state."""
        return {
            "algorithm": self.name,
            "num_queries": self.num_queries,
            "documents_processed": self.counters.documents,
            "decay_lambda": self.decay.lam,
            "decay_origin": self.decay.origin,
        }
