"""The paper's primary contribution: continuous top-k monitoring algorithms.

Public entry points:

* :class:`repro.core.monitor.ContinuousMonitor` — the server facade most
  applications should use;
* :class:`repro.core.rio.RIOAlgorithm` and
  :class:`repro.core.mrio.MRIOAlgorithm` — the paper's algorithms, usable
  directly when an application wants to drive them itself;
* :func:`repro.core.factory.create_algorithm` — name-based construction of
  any algorithm (including the baselines).
"""

from repro.core.results import (
    BatchUpdate,
    ResultEntry,
    ResultStore,
    ResultUpdate,
    TopKResult,
    coalesce_updates,
)
from repro.core.config import MonitorConfig
from repro.core.base import StreamAlgorithm
from repro.core.bounds import (
    GlobalMaxBounds,
    ExactZoneBounds,
    BlockZoneBounds,
    TreeZoneBounds,
    make_zone_bounds,
)
from repro.core.rio import RIOAlgorithm
from repro.core.mrio import MRIOAlgorithm
from repro.core.factory import create_algorithm, available_algorithms, register_algorithm
from repro.core.monitor import ContinuousMonitor

__all__ = [
    "ResultEntry",
    "ResultUpdate",
    "BatchUpdate",
    "coalesce_updates",
    "TopKResult",
    "ResultStore",
    "MonitorConfig",
    "StreamAlgorithm",
    "GlobalMaxBounds",
    "ExactZoneBounds",
    "BlockZoneBounds",
    "TreeZoneBounds",
    "make_zone_bounds",
    "RIOAlgorithm",
    "MRIOAlgorithm",
    "create_algorithm",
    "available_algorithms",
    "register_algorithm",
    "ContinuousMonitor",
]
