"""Name-based construction of monitoring algorithms.

Keeping the factory in its own module (importing concrete submodules
directly) avoids import cycles between :mod:`repro.core` and
:mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.baselines.exhaustive import ExhaustiveAlgorithm
from repro.baselines.rta import RTAAlgorithm
from repro.baselines.sortquer import SortQuerAlgorithm
from repro.baselines.tps import TPSAlgorithm
from repro.core.base import StreamAlgorithm
from repro.core.mrio import MRIOAlgorithm
from repro.core.rio import RIOAlgorithm
from repro.documents.decay import ExponentialDecay
from repro.exceptions import ConfigurationError

_ALGORITHMS: Dict[str, Type[StreamAlgorithm]] = {
    "rio": RIOAlgorithm,
    "mrio": MRIOAlgorithm,
    "rta": RTAAlgorithm,
    "sortquer": SortQuerAlgorithm,
    "tps": TPSAlgorithm,
    "exhaustive": ExhaustiveAlgorithm,
}


def available_algorithms() -> List[str]:
    """Names accepted by :func:`create_algorithm` (and the benchmarks)."""
    return sorted(_ALGORITHMS)


def create_algorithm(
    name: str,
    decay: Optional[ExponentialDecay] = None,
    **kwargs: object,
) -> StreamAlgorithm:
    """Create an algorithm instance by name.

    Parameters
    ----------
    name:
        One of :func:`available_algorithms` (case-insensitive).
    decay:
        The shared exponential-decay model; a default one is created when
        omitted.
    kwargs:
        Extra keyword arguments forwarded to the algorithm constructor
        (e.g. ``ub_variant="exact"`` for MRIO).
    """
    cls = _ALGORITHMS.get(name.lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; expected one of {available_algorithms()}"
        )
    return cls(decay=decay, **kwargs)  # type: ignore[arg-type]
