"""Name-based construction of monitoring algorithms.

The factory is a thin veneer over the decorator-based registry in
:mod:`repro.core.registry`: importing this module imports every built-in
algorithm module, whose ``@register_algorithm(...)`` decorators populate the
registry.  Third-party algorithms register the same way and become
constructible through :func:`create_algorithm` without touching this file.

Keeping the factory in its own module (importing concrete submodules
directly) avoids import cycles between :mod:`repro.core` and
:mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import List, Optional

# Importing the concrete modules triggers their @register_algorithm
# decorators; the imported names themselves are not used here.
import repro.baselines.exhaustive  # noqa: F401
import repro.baselines.rta  # noqa: F401
import repro.baselines.sortquer  # noqa: F401
import repro.baselines.tps  # noqa: F401
import repro.core.columnar  # noqa: F401
import repro.core.mrio  # noqa: F401
import repro.core.rio  # noqa: F401
from repro.core.base import StreamAlgorithm
from repro.core.registry import (
    register_algorithm,
    registered_algorithms,
    resolve_algorithm,
    unregister_algorithm,
)
from repro.documents.decay import ExponentialDecay

__all__ = [
    "available_algorithms",
    "create_algorithm",
    "register_algorithm",
    "unregister_algorithm",
]


def available_algorithms() -> List[str]:
    """Names accepted by :func:`create_algorithm` (and the benchmarks)."""
    return registered_algorithms()


def create_algorithm(
    name: str,
    decay: Optional[ExponentialDecay] = None,
    **kwargs: object,
) -> StreamAlgorithm:
    """Create an algorithm instance by name.

    Parameters
    ----------
    name:
        One of :func:`available_algorithms` (case-insensitive).
    decay:
        The shared exponential-decay model; a default one is created when
        omitted.
    kwargs:
        Extra keyword arguments forwarded to the algorithm constructor
        (e.g. ``ub_variant="exact"`` for MRIO).
    """
    cls = resolve_algorithm(name)
    return cls(decay=decay, **kwargs)  # type: ignore[arg-type]
