"""Plain-text tables mirroring the paper's figures.

The extended abstract reports Figure 1 as log-scale response-time curves;
the harness renders the same data as a table (rows: number of registered
queries, columns: algorithms, cells: mean response time per stream event in
milliseconds) plus a speed-up table that reproduces the "up to 8/10/25×"
claims of the text.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentResult
from repro.metrics.runstats import RunStatistics


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def _render_table(
    result: ExperimentResult,
    value_of: Callable[[RunStatistics], float],
    value_format: str,
    title: str,
) -> str:
    algorithms = result.algorithms()
    query_counts = result.query_counts()
    header = ["#queries"] + list(algorithms)
    rows: List[List[str]] = []
    for num_queries in query_counts:
        row = [f"{num_queries:,}"]
        for algorithm in algorithms:
            run = result.cell(algorithm, num_queries)
            row.append(value_format.format(value_of(run)) if run else "-")
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(len(header))
    ]
    lines = [title, _format_row(header, widths), _format_row(["-" * w for w in widths], widths)]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def format_response_table(result: ExperimentResult, title: Optional[str] = None) -> str:
    """Mean response time per stream event (ms), like Figure 1."""
    return _render_table(
        result,
        value_of=lambda run: run.mean_response_ms,
        value_format="{:.3f}",
        title=title or f"[{result.spec.name}] mean response time per event (ms)",
    )


def format_counter_table(
    result: ExperimentResult, counter: str, title: Optional[str] = None
) -> str:
    """A per-document work counter (e.g. ``full_evaluations``) per cell."""
    return _render_table(
        result,
        value_of=lambda run: run.counters.get(counter, 0.0),
        value_format="{:.1f}",
        title=title or f"[{result.spec.name}] {counter} per event",
    )


def format_speedup_table(
    result: ExperimentResult, reference: str = "mrio", title: Optional[str] = None
) -> str:
    """Response-time ratio of every algorithm over ``reference`` (×)."""
    algorithms = [a for a in result.algorithms() if a != reference]
    query_counts = result.query_counts()
    header = ["#queries"] + [f"{a}/{reference}" for a in algorithms]
    rows: List[List[str]] = []
    for num_queries in query_counts:
        ref_run = result.cell(reference, num_queries)
        row = [f"{num_queries:,}"]
        for algorithm in algorithms:
            run = result.cell(algorithm, num_queries)
            if run is None or ref_run is None or ref_run.mean_response_ms == 0.0:
                row.append("-")
            else:
                row.append(f"{run.mean_response_ms / ref_run.mean_response_ms:.1f}x")
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(len(header))
    ]
    lines = [
        title or f"[{result.spec.name}] slowdown relative to {reference}",
        _format_row(header, widths),
        _format_row(["-" * w for w in widths], widths),
    ]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def max_speedup(result: ExperimentResult, algorithm: str, reference: str = "mrio") -> float:
    """Largest response-time ratio ``algorithm / reference`` across the sweep."""
    best = 0.0
    for num_queries in result.query_counts():
        run = result.cell(algorithm, num_queries)
        ref = result.cell(reference, num_queries)
        if run is None or ref is None or ref.mean_response_ms == 0.0:
            continue
        best = max(best, run.mean_response_ms / ref.mean_response_ms)
    return best


def result_to_rows(result: ExperimentResult) -> List[Dict[str, float]]:
    """Flat list-of-dicts export (handy for CSV/JSON dumps in examples)."""
    return [run.summary() for run in result.runs]
