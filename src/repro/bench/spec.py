"""Experiment specifications for the benchmark harness.

A spec pins down everything needed to regenerate one table or figure:
corpus, workload, query-count sweep, algorithms, decay, stream length and
seeds.  All randomness derives from ``seed``, so every algorithm within an
experiment sees exactly the same queries and the same document stream —
the paper's comparison is between algorithms, never between workload draws.

The paper ran millions of queries against 7M Wikipedia pages on a C++
testbed; the pure-Python reproduction keeps the same *geometry* (each sweep
step doubles the query count) at laptop scale.  ``SCALE_PROFILES`` provides
three sizes; the benchmarks default to ``small`` and honour the
``REPRO_BENCH_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.documents.corpus import CorpusConfig
from repro.exceptions import BenchmarkError
from repro.queries.workloads import WorkloadConfig

#: Scale profiles: query-count sweep, stream length and corpus size.
#: The warm-up prefix is long relative to the measured segment on purpose:
#: every query must have seen well over k matching documents before response
#: times are representative of a long-running server (the paper measures a
#: warmed-up system over a 7M-document stream).
SCALE_PROFILES: Dict[str, Dict[str, object]] = {
    "tiny": {
        "query_counts": (250, 500, 1_000),
        "num_events": 20,
        "warmup_events": 120,
        "vocabulary_size": 4_000,
        "mean_tokens": 90.0,
    },
    "small": {
        "query_counts": (500, 1_000, 2_000, 4_000),
        "num_events": 30,
        "warmup_events": 400,
        "vocabulary_size": 8_000,
        "mean_tokens": 110.0,
    },
    "medium": {
        "query_counts": (2_000, 4_000, 8_000, 16_000),
        "num_events": 40,
        "warmup_events": 900,
        "vocabulary_size": 15_000,
        "mean_tokens": 130.0,
    },
}


def active_profile(default: str = "small") -> str:
    """The profile selected via ``REPRO_BENCH_PROFILE`` (or ``default``)."""
    profile = os.environ.get("REPRO_BENCH_PROFILE", default).lower()
    if profile not in SCALE_PROFILES:
        raise BenchmarkError(
            f"unknown REPRO_BENCH_PROFILE {profile!r}; expected one of "
            f"{sorted(SCALE_PROFILES)}"
        )
    return profile


@dataclass
class ExperimentSpec:
    """Everything needed to run one experiment of the evaluation."""

    name: str
    workload: str = "uniform"
    query_counts: Tuple[int, ...] = (500, 1_000, 2_000, 4_000)
    algorithms: Tuple[str, ...] = ("rta", "rio", "mrio", "sortquer", "tps")
    k: int = 10
    lam: float = 1e-3
    num_events: int = 40
    warmup_events: int = 30
    min_terms: int = 2
    max_terms: int = 5
    ub_variant: str = "tree"
    #: Engine backing each cell: ``"scalar"`` runs the algorithm named by
    #: the cell as-is; ``"columnar"`` substitutes the packed-array engine
    #: (``repro.core.columnar``) while keeping the cell's workload, stream
    #: and label — the scalar-vs-columnar ablation axis.
    engine: str = "scalar"
    #: Number of engine shards per cell.  1 runs the plain single-engine
    #: path; > 1 hosts each cell behind a ShardedMonitor.
    shards: int = 1
    #: Shard executor (``"serial"``/``"threads"``/``"processes"``/
    #: ``"processes-pipe"``); only used when ``shards > 1``.
    shard_executor: str = "serial"
    #: Partitioning policy (``"hash"``/``"affinity"``) for sharded cells.
    shard_policy: str = "hash"
    #: Flash-crowd churn: this many extra queries subscribe in one burst
    #: mid-measurement and unsubscribe in a second burst later, modelling a
    #: breaking-news audience attaching to a live stream.  0 disables churn.
    churn_burst: int = 0
    #: Fraction of the measured stream after which the burst subscribes.
    churn_join_fraction: float = 0.25
    #: Fraction of the measured stream after which the burst unsubscribes.
    churn_leave_fraction: float = 0.75
    #: When True the cell runs behind a ``DurableMonitor`` journaling to a
    #: throwaway directory — the durability on/off ablation axis.
    durability: bool = False
    #: WAL group-commit size for durable cells (records per flushed group).
    wal_group_commit: int = 1024
    #: Whether durable cells fsync every commit group (off by default: the
    #: benchmarks measure the journaling cost, not the disk's).
    wal_fsync: bool = False
    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.query_counts:
            raise BenchmarkError(f"experiment {self.name}: empty query_counts")
        if not self.algorithms:
            raise BenchmarkError(f"experiment {self.name}: empty algorithms")
        if self.num_events <= 0:
            raise BenchmarkError(f"experiment {self.name}: num_events must be > 0")
        if self.warmup_events < 0:
            raise BenchmarkError(f"experiment {self.name}: warmup_events must be >= 0")
        if self.workload not in ("uniform", "connected"):
            raise BenchmarkError(
                f"experiment {self.name}: workload must be 'uniform' or 'connected'"
            )
        if self.engine not in ("scalar", "columnar"):
            raise BenchmarkError(
                f"experiment {self.name}: engine must be 'scalar' or 'columnar'"
            )
        if self.shards <= 0:
            raise BenchmarkError(f"experiment {self.name}: shards must be > 0")
        if self.shard_executor not in ("serial", "threads", "processes", "processes-pipe"):
            raise BenchmarkError(
                f"experiment {self.name}: shard_executor must be 'serial', "
                "'threads', 'processes' or 'processes-pipe'"
            )
        if self.shard_policy not in ("hash", "affinity"):
            raise BenchmarkError(
                f"experiment {self.name}: shard_policy must be 'hash' or 'affinity'"
            )
        if self.wal_group_commit <= 0:
            raise BenchmarkError(
                f"experiment {self.name}: wal_group_commit must be > 0"
            )
        if self.churn_burst < 0:
            raise BenchmarkError(
                f"experiment {self.name}: churn_burst must be >= 0"
            )
        if not 0.0 <= self.churn_join_fraction <= 1.0:
            raise BenchmarkError(
                f"experiment {self.name}: churn_join_fraction must be in [0, 1]"
            )
        if not self.churn_join_fraction <= self.churn_leave_fraction <= 1.0:
            raise BenchmarkError(
                f"experiment {self.name}: churn_leave_fraction must be in "
                "[churn_join_fraction, 1]"
            )

    def workload_config(self) -> WorkloadConfig:
        """The query-workload configuration this spec implies."""
        return WorkloadConfig(
            min_terms=self.min_terms,
            max_terms=self.max_terms,
            k=self.k,
            seed=self.seed + 101,
        )

    def scaled(self, profile: str) -> "ExperimentSpec":
        """Return a copy of this spec resized to a :data:`SCALE_PROFILES` entry."""
        if profile not in SCALE_PROFILES:
            raise BenchmarkError(
                f"unknown profile {profile!r}; expected one of {sorted(SCALE_PROFILES)}"
            )
        params = SCALE_PROFILES[profile]
        corpus = replace(
            self.corpus,
            vocabulary_size=int(params["vocabulary_size"]),
            mean_tokens=float(params["mean_tokens"]),
        )
        return replace(
            self,
            query_counts=tuple(params["query_counts"]),  # type: ignore[arg-type]
            num_events=int(params["num_events"]),
            warmup_events=int(params["warmup_events"]),
            corpus=corpus,
        )
