"""Benchmark harness: experiment specs, runners and table/figure reporting."""

from repro.bench.spec import ExperimentSpec, SCALE_PROFILES
from repro.bench.harness import ExperimentResult, run_cell, run_experiment
from repro.bench.reporting import format_response_table, format_speedup_table, format_counter_table
from repro.bench.figures import (
    figure1_uniform_spec,
    figure1_connected_spec,
    effect_of_k_spec,
    effect_of_lambda_spec,
    effect_of_query_length_spec,
    ub_variants_spec,
    considered_queries_spec,
    flash_crowd_spec,
)

__all__ = [
    "ExperimentSpec",
    "SCALE_PROFILES",
    "ExperimentResult",
    "run_cell",
    "run_experiment",
    "format_response_table",
    "format_speedup_table",
    "format_counter_table",
    "figure1_uniform_spec",
    "figure1_connected_spec",
    "effect_of_k_spec",
    "effect_of_lambda_spec",
    "effect_of_query_length_spec",
    "ub_variants_spec",
    "considered_queries_spec",
    "flash_crowd_spec",
]
