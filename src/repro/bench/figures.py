"""Pre-defined experiment specs: one per paper figure plus the ablations.

Each function returns an :class:`~repro.bench.spec.ExperimentSpec` already
resized to the requested scale profile (``tiny`` / ``small`` / ``medium``,
see :data:`~repro.bench.spec.SCALE_PROFILES`).  The benchmark modules under
``benchmarks/`` are thin wrappers that run these specs and print the
resulting tables; the same specs can be used programmatically (see
``examples/reproduce_figure1.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.bench.spec import ExperimentSpec, active_profile

#: The five methods of Figure 1, in the paper's legend order.
FIGURE1_ALGORITHMS: Tuple[str, ...] = ("rta", "rio", "mrio", "sortquer", "tps")


def _base_spec(name: str, profile: Optional[str]) -> ExperimentSpec:
    spec = ExperimentSpec(name=name)
    return spec.scaled(profile or active_profile())


def figure1_uniform_spec(profile: Optional[str] = None) -> ExperimentSpec:
    """Figure 1(a): response time vs. number of queries, Uniform workload."""
    spec = _base_spec("fig1a-wiki-uniform", profile)
    return replace(spec, workload="uniform", algorithms=FIGURE1_ALGORITHMS)


def figure1_connected_spec(profile: Optional[str] = None) -> ExperimentSpec:
    """Figure 1(b): response time vs. number of queries, Connected workload."""
    spec = _base_spec("fig1b-wiki-connected", profile)
    return replace(spec, workload="connected", algorithms=FIGURE1_ALGORITHMS)


def effect_of_k_spec(
    k: int, profile: Optional[str] = None, workload: str = "uniform"
) -> ExperimentSpec:
    """Journal-style ablation: vary the result size k at a fixed query count."""
    spec = _base_spec(f"ablation-k-{k}", profile)
    return replace(
        spec,
        workload=workload,
        k=k,
        query_counts=(spec.query_counts[-1],),
        algorithms=("rio", "mrio", "tps"),
    )


def effect_of_lambda_spec(
    lam: float, profile: Optional[str] = None, workload: str = "uniform"
) -> ExperimentSpec:
    """Journal-style ablation: vary the decay parameter λ."""
    spec = _base_spec(f"ablation-lambda-{lam:g}", profile)
    return replace(
        spec,
        workload=workload,
        lam=lam,
        query_counts=(spec.query_counts[-1],),
        algorithms=("rio", "mrio", "tps"),
    )


def effect_of_query_length_spec(
    max_terms: int, profile: Optional[str] = None, workload: str = "uniform"
) -> ExperimentSpec:
    """Journal-style ablation: vary the number of keywords per query."""
    spec = _base_spec(f"ablation-qlen-{max_terms}", profile)
    return replace(
        spec,
        workload=workload,
        min_terms=max(1, max_terms - 1),
        max_terms=max_terms,
        query_counts=(spec.query_counts[-1],),
        algorithms=("rio", "mrio", "tps"),
    )


def ub_variants_spec(profile: Optional[str] = None, workload: str = "uniform") -> ExperimentSpec:
    """Ablation over the three UB* implementations (journal Sec. 5.2).

    The harness treats the variant as part of the spec, so this returns the
    base spec; the benchmark runs it three times with ``ub_variant`` set to
    ``exact``, ``tree`` and ``block``.
    """
    spec = _base_spec("ablation-ub-variants", profile)
    return replace(
        spec,
        workload=workload,
        query_counts=(spec.query_counts[-1],),
        algorithms=("mrio",),
    )


def flash_crowd_spec(
    profile: Optional[str] = None, workload: str = "uniform"
) -> ExperimentSpec:
    """Churn scenario: a flash crowd subscribes mid-stream and leaves later.

    Half the resident population's size joins in one burst a quarter of the
    way through the measured segment and unsubscribes at the three-quarter
    mark, so the cell measures ingest latency *through* registration storms
    rather than against a static query set.
    """
    spec = _base_spec("churn-flash-crowd", profile)
    count = spec.query_counts[-1]
    return replace(
        spec,
        workload=workload,
        query_counts=(count,),
        algorithms=("rio", "mrio"),
        churn_burst=max(1, count // 2),
        churn_join_fraction=0.25,
        churn_leave_fraction=0.75,
    )


def considered_queries_spec(
    profile: Optional[str] = None, workload: str = "uniform"
) -> ExperimentSpec:
    """Optimality claim (i): queries considered / iterations per stream event."""
    spec = _base_spec("optimality-considered-queries", profile)
    return replace(
        spec,
        workload=workload,
        query_counts=(spec.query_counts[-1],),
        algorithms=("rta", "rio", "mrio", "sortquer", "tps"),
    )
