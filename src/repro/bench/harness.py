"""Runs experiment specs and collects per-cell statistics.

One *cell* of an experiment is (algorithm, number of registered queries).
For every cell the harness rebuilds the corpus, the query workload and the
document stream from the spec's seed, so each algorithm processes exactly
the same events against exactly the same queries.  The stream is split into
a warm-up prefix (results fill up, thresholds stabilize — not measured) and
a measured segment whose per-event response times feed the tables.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.spec import ExperimentSpec
from repro.core.config import MonitorConfig
from repro.core.factory import create_algorithm
from repro.documents.corpus import SyntheticCorpus
from repro.documents.decay import ExponentialDecay
from repro.documents.stream import DocumentStream, StreamConfig
from repro.metrics.runstats import RunStatistics
from repro.persistence.durable import DurabilityConfig, DurableMonitor
from repro.queries.workloads import generate_workload
from repro.runtime.sharded import ShardedMonitor


@dataclass
class ExperimentResult:
    """All cells of one experiment, in execution order."""

    spec: ExperimentSpec
    runs: List[RunStatistics] = field(default_factory=list)

    def cell(self, algorithm: str, num_queries: int) -> Optional[RunStatistics]:
        for run in self.runs:
            if run.algorithm == algorithm and run.num_queries == num_queries:
                return run
        return None

    def algorithms(self) -> List[str]:
        seen: List[str] = []
        for run in self.runs:
            if run.algorithm not in seen:
                seen.append(run.algorithm)
        return seen

    def query_counts(self) -> List[int]:
        seen: List[int] = []
        for run in self.runs:
            if run.num_queries not in seen:
                seen.append(run.num_queries)
        return seen


def _engine_name(spec: ExperimentSpec, name: str) -> str:
    """The algorithm actually constructed for a cell labelled ``name``.

    ``spec.engine="columnar"`` substitutes the packed-array engine while the
    cell keeps its requested label, so a grid can be re-run per engine and
    compared cell by cell.
    """
    return "columnar" if spec.engine == "columnar" else name


def _build_algorithm(spec: ExperimentSpec, name: str):
    decay = ExponentialDecay(lam=spec.lam)
    resolved = _engine_name(spec, name)
    kwargs: Dict[str, object] = {}
    if resolved == "mrio":
        kwargs["ub_variant"] = spec.ub_variant
    return create_algorithm(resolved, decay, **kwargs)


def _build_sharded_monitor(spec: ExperimentSpec, name: str) -> ShardedMonitor:
    return ShardedMonitor(
        _build_monitor_config(spec, name),
        n_shards=spec.shards,
        policy=spec.shard_policy,
        executor=spec.shard_executor,
    )


def _build_monitor_config(spec: ExperimentSpec, name: str) -> MonitorConfig:
    resolved = _engine_name(spec, name)
    kwargs: Dict[str, str] = {}
    if resolved == "mrio":
        kwargs["ub_variant"] = spec.ub_variant
    return MonitorConfig(algorithm=resolved, lam=spec.lam, **kwargs)


def run_cell(
    spec: ExperimentSpec,
    algorithm: str,
    num_queries: int,
    extra_counters: bool = True,
) -> RunStatistics:
    """Run one (algorithm, query count) cell of an experiment.

    With ``spec.shards > 1`` the cell is hosted behind a
    :class:`~repro.runtime.sharded.ShardedMonitor` (same workload, same
    stream) and the reported response times are the per-event totals across
    shards.  With ``spec.durability`` the engine is wrapped in a
    :class:`~repro.persistence.durable.DurableMonitor` journaling to a
    throwaway directory (removed when the cell ends), which is the
    durability-overhead ablation axis.
    """
    corpus = SyntheticCorpus(spec.corpus, seed=spec.seed)
    # Flash-crowd cells draw the burst from the same workload distribution:
    # one generation call hands out distinct query ids, the tail beyond the
    # resident population is the crowd that joins (and leaves) mid-stream.
    queries = generate_workload(
        spec.workload,
        corpus,
        num_queries + spec.churn_burst,
        config=spec.workload_config(),
        seed=spec.seed + 101,
    )
    burst = queries[num_queries:]
    queries = queries[:num_queries]
    sharded = spec.shards > 1
    wal_dir: Optional[str] = None
    if spec.durability:
        wal_dir = tempfile.mkdtemp(prefix="repro-bench-wal-")
        durability = DurabilityConfig(
            directory=wal_dir,
            group_commit=spec.wal_group_commit,
            fsync=spec.wal_fsync,
            checkpoint_interval=None,
        )
        engine = DurableMonitor(
            durability,
            _build_monitor_config(spec, algorithm),
            n_shards=spec.shards,
            policy=spec.shard_policy,
            executor=spec.shard_executor,
        )
        engine.register_queries(queries)
    elif sharded:
        engine = _build_sharded_monitor(spec, algorithm)
        engine.register_queries(queries)
    else:
        engine = _build_algorithm(spec, algorithm)
        engine.register_all(queries)
    monitor_style = spec.durability or sharded

    try:
        stream = DocumentStream(corpus, StreamConfig(seed=spec.seed + 202))
        # Warm-up: fill the result heaps so thresholds (and thus pruning) are
        # in steady state, exactly like the paper measures a warmed-up server.
        for document in stream.take(spec.warmup_events):
            engine.process(document)
        if monitor_style:
            engine.reset_statistics()
        else:
            engine.response_times.clear()
            engine.counters.reset()

        documents = list(stream.take(spec.num_events))
        join_at = int(spec.churn_join_fraction * len(documents))
        leave_at = int(spec.churn_leave_fraction * len(documents))
        joined = False
        for position, document in enumerate(documents):
            if burst and position == join_at and not joined:
                joined = True
                if monitor_style:
                    engine.register_queries(burst)
                else:
                    engine.register_all(burst)
            if burst and joined and position == leave_at:
                for query in burst:
                    engine.unregister(query.query_id)
                joined = False
            engine.process(document)
        if burst and joined:
            # leave fraction of 1.0: the crowd departs after the last event.
            for query in burst:
                engine.unregister(query.query_id)

        if extra_counters:
            counters = (
                engine.statistics.per_document()
                if monitor_style
                else engine.counters.per_document()
            )
        else:
            counters = {}
        extra: Dict[str, float] = {}
        if spec.engine == "columnar":
            extra["columnar"] = 1.0
        if sharded:
            extra["shards"] = float(spec.shards)
        if spec.durability:
            extra["durability"] = 1.0
            extra["wal_group_commit"] = float(spec.wal_group_commit)
        if spec.churn_burst:
            extra["churn_burst"] = float(spec.churn_burst)
            extra["churn_ops"] = float(2 * spec.churn_burst)
        response_times = list(engine.response_times)
        batch_response_times = [
            (int(size), float(elapsed))
            for size, elapsed in getattr(engine, "batch_response_times", [])
        ]
    finally:
        if spec.durability or sharded:
            engine.close()
        if wal_dir is not None:
            shutil.rmtree(wal_dir, ignore_errors=True)
    return RunStatistics(
        algorithm=algorithm,
        num_queries=num_queries,
        num_events=spec.num_events,
        response_times=response_times,
        counters=counters,
        extra=extra,
        batch_response_times=batch_response_times,
    )


def run_experiment(
    spec: ExperimentSpec,
    algorithms: Optional[Sequence[str]] = None,
    query_counts: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Run every cell of ``spec`` (optionally restricted to subsets)."""
    result = ExperimentResult(spec=spec)
    for num_queries in query_counts or spec.query_counts:
        for algorithm in algorithms or spec.algorithms:
            result.runs.append(run_cell(spec, algorithm, num_queries))
    return result
