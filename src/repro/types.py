"""Shared type aliases used across the library.

The library represents sparse vectors as plain ``dict`` objects mapping an
integer term id to a float weight.  Keeping this representation simple (no
custom sparse-vector class) keeps the hot loops of the stream-processing
algorithms as close to raw dictionary operations as possible, which matters
for a pure-Python implementation.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Integer identifier of a term in the vocabulary.
TermId = int

#: Integer identifier of a registered continuous query.
QueryId = int

#: Integer identifier of a stream document.
DocId = int

#: Sparse vector: term id -> weight.
SparseVector = Dict[TermId, float]

#: A (query id, weight) posting entry in a query-side posting list.
QueryPosting = Tuple[QueryId, float]

#: A (doc id, weight) posting entry in a document-side posting list.
DocPosting = Tuple[DocId, float]
