"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses exist for
the main failure categories: configuration problems, registration problems
and stream-processing problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class VocabularyError(ReproError):
    """A term or term id could not be resolved against the vocabulary."""


class QueryError(ReproError):
    """A query is malformed (empty vector, non-positive k, bad weights)."""


class DocumentError(ReproError):
    """A document is malformed (empty vector, negative weights, bad time)."""


class RegistrationError(ReproError):
    """A query could not be registered or unregistered."""


class DuplicateQueryError(RegistrationError):
    """A query with the same identifier is already registered."""


class UnknownQueryError(RegistrationError):
    """The referenced query identifier is not registered."""


class StreamError(ReproError):
    """The document stream violated an expected invariant.

    The most common cause is a document whose arrival time is smaller than
    the arrival time of a previously ingested document.
    """


class IndexError_(ReproError):
    """An internal index invariant was violated.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class ExpirationError(ReproError):
    """Window expiration was requested but not configured, or vice versa."""


class BenchmarkError(ReproError):
    """A benchmark specification is inconsistent or cannot be executed."""


class WorkerError(ReproError):
    """A shard worker process died or broke its command protocol.

    Raised by the process-resident executor when a worker's pipe closes
    unexpectedly (the worker crashed or was killed) or when it answers
    with something the protocol does not allow.  Errors the worker's
    *shard* raises are re-raised as themselves, not wrapped in this.
    """


class TransportError(WorkerError):
    """The shared-memory batch transport hit an invalid state.

    Raised when a payload does not fit the ring's slot protocol (e.g. a
    slot is freed twice, or a reservation exceeds the ring's capacity in a
    way chunking cannot split).  A worker that merely *lags* never raises
    this — the parent blocks on slot reclamation instead.
    """


class PersistenceError(ReproError):
    """The durability subsystem hit an invalid state or configuration."""


class ReplicationError(PersistenceError):
    """WAL shipping between a primary and its standby broke an invariant.

    Raised when a shipped record is out of LSN order (a gap or a replayed
    duplicate) or when the replication stream cannot be established from
    the primary's segments.  A standby that merely *lags* never raises
    this — the primary's bounded-lag window blocks instead.
    """


class CorruptRecordError(PersistenceError):
    """A WAL record or checkpoint failed its CRC / framing validation.

    Raised for corruption in the *middle* of a log; a bad record at the very
    end of the last segment is a torn tail and is truncated instead.
    """


class RecoveryError(PersistenceError):
    """Crash recovery could not reconstruct a consistent monitor state."""


class ServiceError(ReproError):
    """The pub/sub serving layer rejected an operation.

    Raised server-side for invalid requests (and sent back as an error
    reply), and client-side when a request fails or the connection is
    gone.
    """


class ConnectionLostError(ServiceError):
    """The client's connection to the server died with requests in flight.

    Raised (and set on every pending request future) when the server
    closes the connection, the socket errors out, or a reply frame cannot
    be read — as opposed to a :class:`ServiceError` reply on a healthy
    connection, after which the client remains usable.
    """


class RequestTimeoutError(ServiceError):
    """A client request exceeded its per-request timeout.

    The connection may still be healthy (e.g. the server is merely
    saturated); only this request is abandoned.  A late reply to an
    abandoned request is discarded.
    """


class ProtocolError(ServiceError):
    """A wire frame violated the length-prefixed JSON protocol.

    Unlike :class:`ServiceError` — which is answered with an error reply on
    a healthy connection — a protocol violation means the byte stream
    itself cannot be trusted, and the connection is closed.
    """
