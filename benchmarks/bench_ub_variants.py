"""Ablation: the three UB* implementations of MRIO (journal Sec. 5.2).

All three maintainers produce correct results (the test-suite verifies that);
they differ in bound tightness and in the cost of answering a zone-maximum
query:

* ``exact``  — scans the zone with live thresholds (tightest, per-entry cost),
* ``tree``   — segment-tree range maxima over stored ratios,
* ``block``  — block maxima only (loosest, cheapest lookups).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.figures import ub_variants_spec
from repro.bench.harness import ExperimentResult, run_cell
from repro.bench.reporting import format_counter_table, format_response_table

UB_VARIANTS = ("exact", "tree", "block")


@pytest.mark.benchmark(group="ablation-ub")
@pytest.mark.parametrize("variant", UB_VARIANTS)
def test_ub_variant(benchmark, report, variant):
    spec = replace(ub_variants_spec(), ub_variant=variant, name=f"ub-{variant}")
    num_queries = spec.query_counts[0]

    run = benchmark.pedantic(
        run_cell, args=(spec, "mrio", num_queries), rounds=1, iterations=1
    )

    result = ExperimentResult(spec=spec, runs=[run])
    tables = "\n\n".join(
        [
            format_response_table(
                result, title=f"[ablation UB*={variant}] mean response time per event (ms)"
            ),
            format_counter_table(result, "full_evaluations"),
            format_counter_table(result, "iterations"),
            format_counter_table(result, "bound_computations"),
        ]
    )
    report(f"ablation_ub_{variant}", tables)

    assert run.counters["full_evaluations"] >= run.counters["result_updates"]
