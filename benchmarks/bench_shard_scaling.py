"""Shard scaling: events/sec of the sharded runtime at 1/2/4/8 shards.

Measures batched ingestion throughput when the registered query set is
partitioned across N engine shards, for both engines (scalar MRIO and the
columnar batch engine) and all executor flavours:

* ``serial`` isolates the *partitioning overhead*: every shard runs on the
  calling thread, so N shards do at least the single-engine work plus one
  pivot walk per extra shard — the deficit vs 1 shard is the price of the
  split, which the term-affinity policy is designed to shrink.
* ``threads`` adds thread-pool parallelism on top.  Wall-clock speedup > 1
  requires a multi-core *free-threaded* build (or GIL-releasing scoring
  kernels): on stock CPython the GIL serializes the pure-Python pivot
  loops and thread shards cannot beat one engine.
* ``processes`` hosts each shard in its own worker process behind the
  zero-copy batch transport: each batch is codec-encoded **once** into a
  shared-memory ring and workers read it in place, so the bytes crossing
  the pipes are tiny control descriptors plus the coalesced replies.
* ``processes-pipe`` forces the framed-pipe fallback (the same codec
  frame crosses every worker's pipe) — the cell that prices the transport
  itself, and the baseline for the payload-drop assertion.

Every process cell reports its wire traffic in bytes per event, split
into control (descriptors/commands), payload over pipes, payload through
shared memory, and replies — the shm column must carry the batch while
the pipe-payload column collapses to ~zero.

Two methodologies, matched to what each number is for:

* The scaling grid interleaves build+measure rounds across cells and
  keeps each cell's best round (min), the standard guard against
  scheduler/frequency noise.
* The 1-shard process-tax ratio is measured *paired*: one serial and one
  process monitor, warmed identically, alternate batch-for-batch in a
  single loop and the ratio comes from the summed times.  Host speed here
  drifts by tens of percent over minutes, which unpaired ratios inherit;
  batch-level pairing cancels the drift, so this ratio is assertable on
  every host — including this repo's 1-core bench host.

Assertions: the paired 1-shard ratio (process executor >= 0.9x of the
single engine) and the pipe-payload collapse are armed on **all** hosts;
the parallel-speedup targets additionally need real cores (and, for
threads, a no-GIL build) and degrade to report-only below that.
"""

from __future__ import annotations

import gc
import os
import sys
import time

import pytest

from repro.core.config import MonitorConfig
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import UniformWorkload, WorkloadConfig
from repro.runtime.sharded import ShardedMonitor

NUM_QUERIES = 1000
LAM = 1e-4
K = 10
WARMUP_EVENTS = 512
MEASURED_EVENTS = 512
BATCH = 256
POLICY = "affinity"
ROUNDS = 3
#: Paired 1-shard tax measurement: batches alternated serial/process.
PAIRED_BATCHES = 8

#: (engine, executor, shard counts) cells of the scaling grid.
GRID = (
    ("mrio", "serial", (1, 2, 4, 8)),
    ("mrio", "threads", (1, 2, 4, 8)),
    ("mrio", "processes", (1, 2, 4, 8)),
    ("mrio", "processes-pipe", (1, 4)),
    ("columnar", "serial", (1, 2, 4)),
    ("columnar", "processes", (1, 2, 4)),
)

#: Thread shards need a no-GIL multicore build to hit this.
TARGET_SPEEDUP = 1.5
#: Process shards on real cores: >= 2x events/sec over the single-engine
#: serial baseline at 4 shards.
PROC_TARGET_SPEEDUP = 2.0
#: Process executor at 1 shard must keep >= 0.9x of the single engine —
#: the zero-copy transport's whole-tax budget, asserted on every host.
PROC_MIN_1SHARD_RATIO = 0.9
#: The shm transport must cut pipe payload by at least this factor vs the
#: pipe fallback (in practice it goes to exactly zero).
PAYLOAD_DROP_FACTOR = 10.0
#: The parallel-speedup assertions need hardware that can actually run 4
#: shards in parallel; below this many usable cores they are report-only.
MIN_CORES_FOR_ASSERT = 4

CORPUS = CorpusConfig(vocabulary_size=8_000, mean_tokens=110.0, seed=42)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _gil_enabled() -> bool:
    is_enabled = getattr(sys, "_is_gil_enabled", None)
    return bool(is_enabled()) if callable(is_enabled) else True


def _monitor_config(engine: str) -> MonitorConfig:
    if engine == "columnar":
        return MonitorConfig(algorithm="columnar", lam=LAM)
    return MonitorConfig(algorithm="mrio", lam=LAM, ub_variant="tree")


def _build(engine: str, n_shards: int, executor: str):
    corpus = SyntheticCorpus(CORPUS, seed=42)
    queries = UniformWorkload(
        corpus,
        config=WorkloadConfig(min_terms=2, max_terms=5, k=K, seed=143),
        seed=143,
    ).generate(NUM_QUERIES)
    monitor = ShardedMonitor(
        _monitor_config(engine),
        n_shards=n_shards,
        policy=POLICY,
        executor=executor,
    )
    monitor.register_queries(queries)
    stream = DocumentStream(corpus, StreamConfig(seed=244))
    for start in range(0, WARMUP_EVENTS, BATCH):
        monitor.process_batch(stream.take(min(BATCH, WARMUP_EVENTS - start)))
    monitor.reset_statistics()
    return monitor, stream


def _transport_stats(monitor):
    executor = monitor.executor
    stats = getattr(executor, "stats", None)
    transport = getattr(executor, "transport_active", None)
    return stats, transport


def _run_once(engine: str, n_shards: int, executor: str):
    monitor, stream = _build(engine, n_shards, executor)
    batches = [stream.take(BATCH) for _ in range(MEASURED_EVENTS // BATCH)]
    stats, transport = _transport_stats(monitor)
    if stats is not None:
        stats.reset()  # wire accounting covers the measured window only
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for batch in batches:
            monitor.process_batch(batch)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
        per_event = stats.per_event() if stats is not None else None
        monitor.close()
    return elapsed, per_event, transport


def _measure_grid():
    # Interleave rounds across configurations and keep the minimum, the
    # standard guard against scheduler/frequency noise.
    times = {}
    wires = {}
    transports = {}
    for _ in range(ROUNDS):
        for engine, executor, shard_counts in GRID:
            for n_shards in shard_counts:
                key = (engine, executor, n_shards)
                elapsed, per_event, transport = _run_once(engine, n_shards, executor)
                times.setdefault(key, []).append(elapsed)
                if per_event is not None:
                    wires[key] = per_event
                    transports[key] = transport
    return {key: min(samples) for key, samples in times.items()}, wires, transports


def _measure_paired_1shard(engine: str, executor: str):
    """serial@1 vs <executor>@1, alternating batch-for-batch.

    Both monitors are warmed on the identical stream prefix and then fed
    the identical measured batches back-to-back, so slow host drift hits
    both sides of the ratio equally.
    """
    reference, stream = _build(engine, 1, "serial")
    candidate, _ = _build(engine, 1, executor)
    serial_total = 0.0
    candidate_total = 0.0
    gc.collect()
    gc.disable()
    try:
        for _ in range(PAIRED_BATCHES):
            batch = stream.take(BATCH)
            started = time.perf_counter()
            reference.process_batch(batch)
            serial_total += time.perf_counter() - started
            started = time.perf_counter()
            candidate.process_batch(batch)
            candidate_total += time.perf_counter() - started
    finally:
        gc.enable()
        reference.close()
        candidate.close()
    return serial_total / candidate_total


def _wire_suffix(per_event) -> str:
    if per_event is None:
        return ""
    return (
        f"   wire B/ev: control {per_event['control']:7.1f}  "
        f"pipe {per_event['payload_pipe']:7.1f}  "
        f"shm {per_event['payload_shm']:7.1f}  "
        f"replies {per_event['replies']:7.1f}"
    )


@pytest.mark.benchmark(group="shard-scaling")
def test_shard_scaling(benchmark, report):
    def measure():
        grid, wires, transports = _measure_grid()
        paired = {
            "processes": _measure_paired_1shard("mrio", "processes"),
            "processes-pipe": _measure_paired_1shard("mrio", "processes-pipe"),
        }
        return grid, wires, transports, paired

    best, wires, transports, paired = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    cores = _usable_cores()
    gil = _gil_enabled()
    threads_capable = cores >= MIN_CORES_FOR_ASSERT and not gil
    procs_capable = cores >= MIN_CORES_FOR_ASSERT
    multicore = cores > 1
    lines = [
        f"[shard scaling] {NUM_QUERIES} queries, lambda={LAM}, policy={POLICY}, "
        f"batch={BATCH}, {MEASURED_EVENTS} events after {WARMUP_EVENTS} warm-up "
        f"(min of {ROUNDS} interleaved rounds)",
        f"  environment: {cores} usable core(s), GIL {'on' if gil else 'off'}, "
        f"CPython {sys.version_info.major}.{sys.version_info.minor}",
    ]
    speedups = {}
    singles = {}
    for engine, executor, shard_counts in GRID:
        single_engine = best[(engine, "serial", 1)]
        singles[engine] = single_engine
        base = best[(engine, executor, shard_counts[0])]
        for n_shards in shard_counts:
            key = (engine, executor, n_shards)
            elapsed = best[key]
            rate = MEASURED_EVENTS / elapsed
            speedups[key] = base / elapsed
            vs_single = single_engine / elapsed
            lines.append(
                f"  {engine:<8s} {executor:<14s} shards={n_shards:<2d} "
                f"{rate:9.0f} events/sec   {vs_single:5.2f}x vs single engine"
                f"{_wire_suffix(wires.get(key))}"
            )

    shm_transport = transports.get(("mrio", "processes", 1))
    lines.append(
        f"  paired 1-shard process tax (mrio, {PAIRED_BATCHES} alternated "
        f"batches): processes[{shm_transport}] {paired['processes']:.2f}x, "
        f"processes-pipe {paired['processes-pipe']:.2f}x of the single engine "
        f"(floor {PROC_MIN_1SHARD_RATIO:.1f}x: ASSERTED on every host)"
    )

    shm_wire = wires.get(("mrio", "processes", 1))
    pipe_wire = wires.get(("mrio", "processes-pipe", 1))
    if shm_wire and pipe_wire and shm_transport == "shm":
        lines.append(
            f"  payload over pipes at batch {BATCH}: "
            f"{pipe_wire['payload_pipe']:.1f} B/ev (pipe transport) -> "
            f"{shm_wire['payload_pipe']:.1f} B/ev (shm transport): "
            f">= {PAYLOAD_DROP_FACTOR:.0f}x drop ASSERTED"
        )

    threads_at_4 = speedups[("mrio", "threads", 4)]
    procs_at_4_vs_single = singles["mrio"] / best[("mrio", "processes", 4)]
    if threads_capable:
        threads_verdict = f"target >= {TARGET_SPEEDUP:.1f}x at 4 thread-shards: ASSERTED"
    else:
        threads_verdict = (
            f"target >= {TARGET_SPEEDUP:.1f}x at 4 thread-shards requires >= "
            f"{MIN_CORES_FOR_ASSERT} cores without a GIL; report-only on this host"
        )
    if procs_capable:
        procs_verdict = (
            f"target >= {PROC_TARGET_SPEEDUP:.1f}x vs single engine at 4 "
            "process-shards: ASSERTED"
        )
    elif multicore:
        procs_verdict = (
            f"target >= {PROC_TARGET_SPEEDUP:.1f}x requires >= "
            f"{MIN_CORES_FOR_ASSERT} cores; asserting processes >= serial only"
        )
    else:
        procs_verdict = (
            "1-core host: parallel speedup impossible by construction — the "
            "paired 1-shard tax above is the armed number here"
        )
    lines.append(
        f"  threads   speedup at 4 shards: {threads_at_4:.2f}x ({threads_verdict})"
    )
    lines.append(
        f"  processes speedup at 4 shards vs single engine: "
        f"{procs_at_4_vs_single:.2f}x ({procs_verdict})"
    )
    report("shard_scaling", "\n".join(lines))

    # ---- armed on every host ---------------------------------------- #
    # The sharded runtime at 1 shard is the single engine plus a facade;
    # the threads executor must stay within 25% of running it serially.
    assert best[("mrio", "threads", 1)] <= best[("mrio", "serial", 1)] * 1.25
    # The zero-copy transport's whole tax at 1 shard: codec + IPC +
    # scheduling must fit in 10% of the engine's own time (paired ratio,
    # immune to host drift).
    assert paired["processes"] >= PROC_MIN_1SHARD_RATIO, (
        f"process executor kept only {paired['processes']:.2f}x of the single "
        f"engine at 1 shard (floor {PROC_MIN_1SHARD_RATIO:.1f}x)"
    )
    # The ring moves the batch out of the pipes: with shm active, payload
    # bytes crossing pipes collapse vs the pipe transport.
    if shm_transport == "shm" and shm_wire and pipe_wire:
        assert (
            shm_wire["payload_pipe"] <= pipe_wire["payload_pipe"] / PAYLOAD_DROP_FACTOR
        ), (
            f"shm transport still pushes {shm_wire['payload_pipe']:.1f} B/ev of "
            f"payload through the pipes (pipe transport: "
            f"{pipe_wire['payload_pipe']:.1f} B/ev)"
        )

    # ---- armed with real cores --------------------------------------- #
    if threads_capable:
        assert threads_at_4 >= TARGET_SPEEDUP, (
            f"thread-sharding only reached {threads_at_4:.2f}x at 4 shards "
            f"on a {cores}-core no-GIL host"
        )
    if multicore:
        # CI smoke floor: with any hardware parallelism at all, process
        # shards must not lose to running the same shard count serially.
        # 10% slack absorbs timer noise on busy runners.
        assert best[("mrio", "processes", 4)] <= best[("mrio", "serial", 4)] * 1.10, (
            "process shards were slower than the serial executor at 4 "
            f"shards on a {cores}-core host"
        )
    if procs_capable:
        assert procs_at_4_vs_single >= PROC_TARGET_SPEEDUP, (
            f"process-sharding only reached {procs_at_4_vs_single:.2f}x vs "
            f"the single engine at 4 shards on a {cores}-core host"
        )


@pytest.mark.benchmark(group="shard-scaling")
def test_sharded_equivalence_on_bench_workload(benchmark, report):
    """Guard: the measured configurations produce the single-engine results."""

    def check():
        reference, ref_stream = _build("mrio", 1, "serial")
        candidates = [
            _build("mrio", 4, "threads")[0],
            _build("mrio", 2, "processes")[0],
            _build("mrio", 2, "processes-pipe")[0],
        ]
        # All streams are identically seeded and equally advanced by the
        # warm-up, so the reference's next batch is valid for every monitor.
        documents = ref_stream.take(BATCH)
        reference.process_batch(documents)
        same = True
        for candidate in candidates:
            candidate.process_batch(documents)
            same = same and all(
                candidate.top_k(query_id) == reference.top_k(query_id)
                for query_id in reference.all_results()
            )
            candidate.close()
        reference.close()

        # Same guard for the columnar engine hosted in worker processes.
        col_reference, col_stream = _build("columnar", 1, "serial")
        col_candidate, _ = _build("columnar", 2, "processes")
        documents = col_stream.take(BATCH)
        col_reference.process_batch(documents)
        col_candidate.process_batch(documents)
        same = same and all(
            col_candidate.top_k(query_id) == col_reference.top_k(query_id)
            for query_id in col_reference.all_results()
        )
        col_candidate.close()
        col_reference.close()
        return same

    assert benchmark.pedantic(check, rounds=1, iterations=1)
