"""Shard scaling: events/sec of the sharded runtime at 1/2/4/8 shards.

Measures MRIO batched ingestion throughput when the registered query set is
partitioned across N engine shards, for all three executors:

* ``serial`` isolates the *partitioning overhead*: every shard runs on the
  calling thread, so N shards do at least the single-engine work plus one
  pivot walk per extra shard — the deficit vs 1 shard is the price of the
  split, which the term-affinity policy is designed to shrink.
* ``threads`` adds thread-pool parallelism on top.  Wall-clock speedup > 1
  requires a multi-core *free-threaded* build (or GIL-releasing scoring
  kernels): on stock CPython the GIL serializes the pure-Python pivot
  loops and thread shards cannot beat one engine.
* ``processes`` hosts each shard in its own worker process — the executor
  that can beat 1.0x on stock multi-core CPython.  Its price is the pipe:
  every batch is serialized to every worker and the updates come back the
  same way, so the speedup target is below linear and a single core pays
  the serialization with no parallelism to show for it.

The speedup assertions are gated on usable CPU count: the thread target
additionally requires a no-GIL build, the process target only multiple
cores; on fewer cores the run is report-only and records the measured
ratios plus the measurement environment (the honest 1-core annotation).
On any host with more than one core, process shards must at least beat the
*serial* executor at the same shard count — that is the CI smoke floor.
"""

from __future__ import annotations

import gc
import os
import sys
import time

import pytest

from repro.core.config import MonitorConfig
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import UniformWorkload, WorkloadConfig
from repro.runtime.sharded import ShardedMonitor

NUM_QUERIES = 1000
LAM = 1e-4
K = 10
WARMUP_EVENTS = 512
MEASURED_EVENTS = 512
BATCH = 256
SHARD_COUNTS = (1, 2, 4, 8)
EXECUTORS = ("serial", "threads", "processes")
POLICY = "affinity"
ROUNDS = 3
#: Thread shards need a no-GIL multicore build to hit this.
TARGET_SPEEDUP = 1.5
#: Process shards need only multiple cores (acceptance bar: > 1.2x events/sec
#: over the single-engine serial baseline at 4 shards).
PROC_TARGET_SPEEDUP = 1.2
#: The speedup assertions need hardware that can actually run 4 shards in
#: parallel; below this many usable cores the run is report-only.
MIN_CORES_FOR_ASSERT = 4

CORPUS = CorpusConfig(vocabulary_size=8_000, mean_tokens=110.0, seed=42)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _gil_enabled() -> bool:
    is_enabled = getattr(sys, "_is_gil_enabled", None)
    return bool(is_enabled()) if callable(is_enabled) else True


def _build(n_shards: int, executor: str):
    corpus = SyntheticCorpus(CORPUS, seed=42)
    queries = UniformWorkload(
        corpus,
        config=WorkloadConfig(min_terms=2, max_terms=5, k=K, seed=143),
        seed=143,
    ).generate(NUM_QUERIES)
    monitor = ShardedMonitor(
        MonitorConfig(algorithm="mrio", lam=LAM, ub_variant="tree"),
        n_shards=n_shards,
        policy=POLICY,
        executor=executor,
    )
    monitor.register_queries(queries)
    stream = DocumentStream(corpus, StreamConfig(seed=244))
    for start in range(0, WARMUP_EVENTS, BATCH):
        monitor.process_batch(stream.take(min(BATCH, WARMUP_EVENTS - start)))
    monitor.reset_statistics()
    return monitor, stream


def _run_once(n_shards: int, executor: str) -> float:
    monitor, stream = _build(n_shards, executor)
    batches = [stream.take(BATCH) for _ in range(MEASURED_EVENTS // BATCH)]
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for batch in batches:
            monitor.process_batch(batch)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
        monitor.close()
    return elapsed


def _measure():
    # Interleave rounds across configurations and keep the minimum, the
    # standard guard against scheduler/frequency noise.
    times = {(executor, n): [] for executor in EXECUTORS for n in SHARD_COUNTS}
    for _ in range(ROUNDS):
        for executor in EXECUTORS:
            for n_shards in SHARD_COUNTS:
                times[(executor, n_shards)].append(_run_once(n_shards, executor))
    return {key: min(samples) for key, samples in times.items()}


@pytest.mark.benchmark(group="shard-scaling")
def test_shard_scaling_mrio(benchmark, report):
    best = benchmark.pedantic(_measure, rounds=1, iterations=1)

    cores = _usable_cores()
    gil = _gil_enabled()
    threads_capable = cores >= MIN_CORES_FOR_ASSERT and not gil
    procs_capable = cores >= MIN_CORES_FOR_ASSERT
    multicore = cores > 1
    lines = [
        f"[shard scaling] mrio, {NUM_QUERIES} queries, lambda={LAM}, "
        f"policy={POLICY}, batch={BATCH}, {MEASURED_EVENTS} events after "
        f"{WARMUP_EVENTS} warm-up (min of {ROUNDS} interleaved rounds)",
        f"  environment: {cores} usable core(s), GIL {'on' if gil else 'off'}, "
        f"CPython {sys.version_info.major}.{sys.version_info.minor}",
    ]
    single_engine = best[("serial", 1)]
    speedups = {}
    for executor in EXECUTORS:
        base = best[(executor, 1)]
        for n_shards in SHARD_COUNTS:
            elapsed = best[(executor, n_shards)]
            rate = MEASURED_EVENTS / elapsed
            speedups[(executor, n_shards)] = base / elapsed
            vs_single = single_engine / elapsed
            lines.append(
                f"  {executor:<9s} shards={n_shards:<2d} {rate:10.0f} events/sec   "
                f"{speedups[(executor, n_shards)]:.2f}x vs 1 shard   "
                f"{vs_single:.2f}x vs single engine"
            )

    threads_at_4 = speedups[("threads", 4)]
    procs_at_4_vs_single = single_engine / best[("processes", 4)]
    if threads_capable:
        threads_verdict = f"target >= {TARGET_SPEEDUP:.1f}x at 4 thread-shards: ASSERTED"
    else:
        threads_verdict = (
            f"target >= {TARGET_SPEEDUP:.1f}x at 4 thread-shards requires >= "
            f"{MIN_CORES_FOR_ASSERT} cores without a GIL; report-only on this host"
        )
    if procs_capable:
        procs_verdict = (
            f"target >= {PROC_TARGET_SPEEDUP:.1f}x vs single engine at 4 "
            "process-shards: ASSERTED"
        )
    elif multicore:
        procs_verdict = (
            f"target >= {PROC_TARGET_SPEEDUP:.1f}x requires >= "
            f"{MIN_CORES_FOR_ASSERT} cores; asserting processes >= serial only"
        )
    else:
        procs_verdict = (
            "1-core host: every process-shard cell pays event/update "
            "serialization with zero hardware parallelism available — "
            "ratios documented, nothing asserted"
        )
    lines.append(f"  threads   speedup at 4 shards: {threads_at_4:.2f}x ({threads_verdict})")
    lines.append(
        f"  processes speedup at 4 shards vs single engine: "
        f"{procs_at_4_vs_single:.2f}x ({procs_verdict})"
    )
    report("shard_scaling", "\n".join(lines))

    # Sanity floor that holds everywhere: the sharded runtime at 1 shard is
    # the single engine plus a facade; it must stay within 25% of itself
    # across the in-process executors (i.e. the threads executor adds
    # bounded overhead).  The process executor is exempt at 1 shard — it
    # pays full event serialization with nothing to parallelize.
    assert best[("threads", 1)] <= best[("serial", 1)] * 1.25
    if threads_capable:
        assert threads_at_4 >= TARGET_SPEEDUP, (
            f"thread-sharding only reached {threads_at_4:.2f}x at 4 shards "
            f"on a {cores}-core no-GIL host"
        )
    if multicore:
        # CI smoke floor: with any hardware parallelism at all, process
        # shards must not lose to running the same shard count serially.
        # 10% slack absorbs timer noise on busy runners; any real loss of
        # parallelism (the 1-core figures show ~32% pipe cost at 4 shards)
        # still trips it.
        assert best[("processes", 4)] <= best[("serial", 4)] * 1.10, (
            "process shards were slower than the serial executor at 4 "
            f"shards on a {cores}-core host"
        )
    if procs_capable:
        assert procs_at_4_vs_single >= PROC_TARGET_SPEEDUP, (
            f"process-sharding only reached {procs_at_4_vs_single:.2f}x vs "
            f"the single engine at 4 shards on a {cores}-core host"
        )


@pytest.mark.benchmark(group="shard-scaling")
def test_sharded_equivalence_on_bench_workload(benchmark, report):
    """Guard: the measured configurations produce the single-engine results."""

    def check():
        reference, ref_stream = _build(1, "serial")
        candidates = [_build(4, "threads")[0], _build(2, "processes")[0]]
        # All streams are identically seeded and equally advanced by the
        # warm-up, so the reference's next batch is valid for every monitor.
        documents = ref_stream.take(BATCH)
        reference.process_batch(documents)
        same = True
        for candidate in candidates:
            candidate.process_batch(documents)
            same = same and all(
                candidate.top_k(query_id) == reference.top_k(query_id)
                for query_id in reference.all_results()
            )
            candidate.close()
        reference.close()
        return same

    assert benchmark.pedantic(check, rounds=1, iterations=1)
