"""Ablation: effect of the decay parameter λ (journal-style experiment).

A larger λ favours recent documents more aggressively: arriving documents
displace current results more often, thresholds are effectively lower
relative to fresh arrivals, pruning weakens and all methods slow down.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import effect_of_lambda_spec
from repro.bench.harness import run_experiment
from repro.bench.reporting import format_counter_table, format_response_table

LAMBDA_VALUES = (1e-4, 1e-3, 1e-2)


@pytest.mark.benchmark(group="ablation-lambda")
@pytest.mark.parametrize("lam", LAMBDA_VALUES)
def test_effect_of_lambda(benchmark, report, lam):
    spec = effect_of_lambda_spec(lam)

    result = benchmark.pedantic(run_experiment, args=(spec,), rounds=1, iterations=1)

    tables = "\n\n".join(
        [
            format_response_table(
                result, title=f"[ablation lambda={lam:g}] mean response time per event (ms)"
            ),
            format_counter_table(result, "result_updates"),
            format_counter_table(result, "full_evaluations"),
        ]
    )
    report(f"ablation_lambda_{lam:g}", tables)

    assert len(result.runs) == len(spec.algorithms)
