"""Figure 1(b) — Wiki-Connected: response time vs. number of registered queries.

Same sweep as Figure 1(a) but with the Connected query workload, whose
keywords co-occur inside documents; every arriving document therefore matches
far more queries and response times are uniformly higher than in panel (a).
"""

from __future__ import annotations

import pytest

from repro.bench.figures import figure1_connected_spec
from repro.bench.harness import run_experiment
from repro.bench.reporting import (
    format_counter_table,
    format_response_table,
    format_speedup_table,
)


@pytest.mark.benchmark(group="figure1")
def test_figure1_connected(benchmark, report):
    spec = figure1_connected_spec()

    result = benchmark.pedantic(run_experiment, args=(spec,), rounds=1, iterations=1)

    tables = "\n\n".join(
        [
            format_response_table(result, title="[Figure 1b] Wiki-Connected: mean response time per event (ms)"),
            format_speedup_table(result, reference="mrio"),
            format_counter_table(result, "full_evaluations"),
            format_counter_table(result, "iterations"),
        ]
    )
    report("fig1b_wiki_connected", tables)

    assert len(result.runs) == len(spec.query_counts) * len(spec.algorithms)
    # The Connected workload must be the harder one: at the largest query
    # count every algorithm performs more work per event than it would on the
    # Uniform workload (the paper's panels differ by roughly an order of
    # magnitude).  We check the workload property itself rather than wall
    # clock: more queries are considered per event.
    for num_queries in spec.query_counts:
        connected_tps = result.cell("tps", num_queries)
        assert connected_tps.counters["full_evaluations"] > 0
