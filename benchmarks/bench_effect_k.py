"""Ablation: effect of the result size k (journal-style experiment).

Larger k keeps weaker documents in every result, which lowers the thresholds
``S_k`` and therefore weakens every pruning bound; response times and the
number of considered queries grow with k for all methods.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import effect_of_k_spec
from repro.bench.harness import run_experiment
from repro.bench.reporting import format_counter_table, format_response_table

K_VALUES = (1, 10, 50)


@pytest.mark.benchmark(group="ablation-k")
@pytest.mark.parametrize("k", K_VALUES)
def test_effect_of_k(benchmark, report, k):
    spec = effect_of_k_spec(k)

    result = benchmark.pedantic(run_experiment, args=(spec,), rounds=1, iterations=1)

    tables = "\n\n".join(
        [
            format_response_table(result, title=f"[ablation k={k}] mean response time per event (ms)"),
            format_counter_table(result, "full_evaluations"),
            format_counter_table(result, "result_updates"),
        ]
    )
    report(f"ablation_k_{k}", tables)

    num_queries = spec.query_counts[0]
    for algorithm in spec.algorithms:
        run = result.cell(algorithm, num_queries)
        assert run is not None
        # With a bounded result size, updates can never exceed k per query per event.
        assert run.counters["result_updates"] <= k * num_queries
