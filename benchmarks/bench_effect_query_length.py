"""Ablation: effect of the number of keywords per query (journal-style).

Longer queries appear in more posting lists, so every arriving document
touches more lists and more entries; at the same time individual keyword
weights shrink (vectors are normalized), which changes how quickly the
prefix bounds reach 1.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import effect_of_query_length_spec
from repro.bench.harness import run_experiment
from repro.bench.reporting import format_counter_table, format_response_table

QUERY_LENGTHS = (2, 4, 8)


@pytest.mark.benchmark(group="ablation-query-length")
@pytest.mark.parametrize("max_terms", QUERY_LENGTHS)
def test_effect_of_query_length(benchmark, report, max_terms):
    spec = effect_of_query_length_spec(max_terms)

    result = benchmark.pedantic(run_experiment, args=(spec,), rounds=1, iterations=1)

    tables = "\n\n".join(
        [
            format_response_table(
                result,
                title=f"[ablation query length<={max_terms}] mean response time per event (ms)",
            ),
            format_counter_table(result, "postings_scanned"),
            format_counter_table(result, "full_evaluations"),
        ]
    )
    report(f"ablation_qlen_{max_terms}", tables)

    assert len(result.runs) == len(spec.algorithms)
