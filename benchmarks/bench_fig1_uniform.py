"""Figure 1(a) — Wiki-Uniform: response time vs. number of registered queries.

Regenerates the left panel of the paper's Figure 1: the mean time to refresh
all query results per stream event, as the number of registered queries
doubles step by step, for RTA, RIO, MRIO, SortQuer and TPS on the Uniform
query workload.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import figure1_uniform_spec
from repro.bench.harness import run_experiment
from repro.bench.reporting import (
    format_counter_table,
    format_response_table,
    format_speedup_table,
)


@pytest.mark.benchmark(group="figure1")
def test_figure1_uniform(benchmark, report):
    spec = figure1_uniform_spec()

    result = benchmark.pedantic(run_experiment, args=(spec,), rounds=1, iterations=1)

    tables = "\n\n".join(
        [
            format_response_table(result, title="[Figure 1a] Wiki-Uniform: mean response time per event (ms)"),
            format_speedup_table(result, reference="mrio"),
            format_counter_table(result, "full_evaluations"),
            format_counter_table(result, "iterations"),
        ]
    )
    report("fig1a_wiki_uniform", tables)

    # Structural sanity: every algorithm produced every cell, and the
    # ID-ordering methods never consider more queries than the scan-everything
    # baselines (the paper's pruning claim).
    assert len(result.runs) == len(spec.query_counts) * len(spec.algorithms)
    for num_queries in spec.query_counts:
        mrio = result.cell("mrio", num_queries)
        rio = result.cell("rio", num_queries)
        tps = result.cell("tps", num_queries)
        assert mrio.counters["full_evaluations"] <= rio.counters["full_evaluations"] * 1.05 + 5
        assert rio.counters["full_evaluations"] <= tps.counters["full_evaluations"] * 1.05 + 5
