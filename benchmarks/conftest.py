"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper's evaluation (see
DESIGN.md §4).  The measured quantity the paper reports is the *mean response
time per stream event* after warm-up; pytest-benchmark additionally times the
whole experiment cell.  Each benchmark writes its formatted tables to
``benchmarks/results/<experiment>.txt`` and echoes them to the terminal, so
the numbers survive output capturing.

The scale profile defaults to ``small`` and can be changed with the
``REPRO_BENCH_PROFILE`` environment variable (``tiny`` / ``small`` /
``medium``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_report(name: str, text: str, capsys=None) -> None:
    """Write a report file and echo it to the real terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if capsys is not None:
        with capsys.disabled():
            print(f"\n{text}\n[written to {path}]")
    else:  # pragma: no cover - fallback when no capsys is available
        print(text)


@pytest.fixture()
def report(capsys):
    """Fixture returning an ``emit(name, text)`` callable."""

    def _emit(name: str, text: str) -> None:
        emit_report(name, text, capsys=capsys)

    return _emit
