"""Cluster throughput: the socket-served remote executor, priced.

Measures batched ingestion events/sec of the sharded runtime when each
shard lives in a socket-served *shard-host* process, against the framed
in-box transport it generalizes:

* ``processes-pipe`` — the in-box baseline: the same codec frames, but
  over each worker's pipe.  Everything the remote cells pay on top of
  this is the price of TCP + the cluster duties.
* ``remote r=0`` — pure remote execution: no WAL, no standbys.  The
  loopback-socket tax itself.
* ``remote r=1`` — one hot standby per shard, asynchronous shipping with
  a bounded lag window: journaling + replication off the ack path.
* ``remote r=1 sync`` — ``min_replicas=1``: every mutating ack waits for
  the standby's applied-LSN ack, the durability-first mode.

Every cell reports its wire traffic in bytes per event (control frames,
batch payload, replies) — the batch payload is encoded once and the
identical frame written to every host's socket, so the payload column
scales with shards, not with per-shard re-encoding.

Methodology: the grid interleaves build+measure rounds and keeps each
cell's best (min) round.  The asserted overhead ratio is measured
*paired* — one pipe monitor and one remote monitor alternate
batch-for-batch in a single loop — which cancels host drift and makes the
bar assertable on every host, including a 1-core container:

**remote r=0 must stay within ``MAX_REMOTE_OVERHEAD``x of processes-pipe
on loopback** (both executors run one process per shard; only the
transport differs).

``REPRO_BENCH_PROFILE=tiny`` for a fast smoke run.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.cluster.remote import RemoteShardExecutor
from repro.core.config import MonitorConfig
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import UniformWorkload, WorkloadConfig
from repro.runtime.sharded import ShardedMonitor

TINY = os.environ.get("REPRO_BENCH_PROFILE", "small") == "tiny"
NUM_QUERIES = 200 if TINY else 600
WARMUP_EVENTS = 128 if TINY else 256
MEASURED_EVENTS = 256 if TINY else 1024
BATCH = 128
N_SHARDS = 2
ROUNDS = 2 if TINY else 3
PAIRED_BATCHES = 4 if TINY else 8
LAM = 1e-4
K = 10
POLICY = "affinity"

#: remote r=0 vs processes-pipe, paired: the loopback socket may cost at
#: most this factor (the acceptance bar for the transport itself).
MAX_REMOTE_OVERHEAD = 1.5

CORPUS = CorpusConfig(vocabulary_size=8_000, mean_tokens=110.0, seed=42)
MONITOR = MonitorConfig(algorithm="mrio", lam=LAM, ub_variant="tree")

#: label -> executor factory (a fresh executor per build; they own fleets).
CELLS = (
    ("processes-pipe", lambda: "processes-pipe"),
    ("remote r=0", lambda: RemoteShardExecutor(N_SHARDS, replicas=0)),
    (
        "remote r=1",
        lambda: RemoteShardExecutor(N_SHARDS, replicas=1, max_lag_records=256),
    ),
    (
        "remote r=1 sync",
        lambda: RemoteShardExecutor(N_SHARDS, replicas=1, min_replicas=1),
    ),
)


def _build(executor_factory):
    corpus = SyntheticCorpus(CORPUS, seed=42)
    queries = UniformWorkload(
        corpus,
        config=WorkloadConfig(min_terms=2, max_terms=5, k=K, seed=143),
        seed=143,
    ).generate(NUM_QUERIES)
    monitor = ShardedMonitor(
        MONITOR, n_shards=N_SHARDS, policy=POLICY, executor=executor_factory()
    )
    monitor.register_queries(queries)
    stream = DocumentStream(corpus, StreamConfig(seed=244))
    for start in range(0, WARMUP_EVENTS, BATCH):
        monitor.process_batch(stream.take(min(BATCH, WARMUP_EVENTS - start)))
    monitor.reset_statistics()
    return monitor, stream


def _run_once(executor_factory):
    monitor, stream = _build(executor_factory)
    batches = [stream.take(BATCH) for _ in range(MEASURED_EVENTS // BATCH)]
    stats = getattr(monitor.executor, "stats", None)
    if stats is not None:
        stats.reset()  # wire accounting covers the measured window only
    replication = None
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for batch in batches:
            monitor.process_batch(batch)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
        per_event = stats.per_event() if stats is not None else None
        replication = monitor.replication_summary
        monitor.close()
    lag = None
    if replication is not None:
        lag = max(replication["replication_lag_records"].values(), default=0)
    return elapsed, per_event, lag


def _measure_grid():
    times, wires, lags = {}, {}, {}
    for _ in range(ROUNDS):
        for label, factory in CELLS:
            elapsed, per_event, lag = _run_once(factory)
            times.setdefault(label, []).append(elapsed)
            wires[label] = per_event
            lags[label] = lag
    return {label: min(samples) for label, samples in times.items()}, wires, lags


def _measure_paired_overhead():
    """processes-pipe vs remote r=0, alternating batch-for-batch."""
    baseline, stream = _build(lambda: "processes-pipe")
    candidate, _ = _build(lambda: RemoteShardExecutor(N_SHARDS, replicas=0))
    base_total = 0.0
    cand_total = 0.0
    gc.collect()
    gc.disable()
    try:
        for _ in range(PAIRED_BATCHES):
            batch = stream.take(BATCH)
            started = time.perf_counter()
            baseline.process_batch(batch)
            base_total += time.perf_counter() - started
            started = time.perf_counter()
            candidate.process_batch(batch)
            cand_total += time.perf_counter() - started
    finally:
        gc.enable()
        baseline.close()
        candidate.close()
    return cand_total / base_total


def _wire_suffix(per_event) -> str:
    if per_event is None:
        return ""
    total = (
        per_event["control"]
        + per_event["payload_pipe"]
        + per_event["payload_shm"]
        + per_event["replies"]
    )
    return (
        f"   wire B/ev: {total:7.1f} "
        f"(control {per_event['control']:6.1f}  "
        f"payload {per_event['payload_pipe']:7.1f}  "
        f"replies {per_event['replies']:7.1f})"
    )


@pytest.mark.benchmark(group="cluster-throughput")
def test_cluster_throughput(benchmark, report):
    def measure():
        grid, wires, lags = _measure_grid()
        return grid, wires, lags, _measure_paired_overhead()

    best, wires, lags, paired_overhead = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    lines = [
        f"[cluster throughput] {NUM_QUERIES} queries, lambda={LAM}, "
        f"{N_SHARDS} shards, policy={POLICY}, batch={BATCH}, "
        f"{MEASURED_EVENTS} events after {WARMUP_EVENTS} warm-up "
        f"(min of {ROUNDS} interleaved rounds)",
    ]
    base = best["processes-pipe"]
    for label, _ in CELLS:
        elapsed = best[label]
        rate = MEASURED_EVENTS / elapsed
        lag = lags[label]
        lag_suffix = "" if lag is None else f"   end lag: {lag} rec"
        lines.append(
            f"  {label:16s} {rate:9.0f} ev/s   {elapsed / base:5.2f}x pipe"
            f"{_wire_suffix(wires[label])}{lag_suffix}"
        )
    lines.append(
        f"  paired overhead (remote r=0 / processes-pipe, "
        f"{PAIRED_BATCHES} alternating batches): {paired_overhead:.3f}x "
        f"(bar: <= {MAX_REMOTE_OVERHEAD}x)"
    )
    report("cluster_throughput", "\n".join(lines))

    assert paired_overhead <= MAX_REMOTE_OVERHEAD, (
        f"remote executor costs {paired_overhead:.2f}x the framed-pipe "
        f"transport on loopback; bar is {MAX_REMOTE_OVERHEAD}x"
    )
    for label, _ in CELLS:
        per_event = wires[label]
        assert per_event is not None and per_event["payload_pipe"] > 0
    # Replicated cells must report a bounded lag, and the synchronous cell
    # must end fully caught up (every ack waited for the standby).
    assert lags["remote r=1"] is not None and lags["remote r=1"] <= 256
    assert lags["remote r=1 sync"] == 0
