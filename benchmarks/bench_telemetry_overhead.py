"""Telemetry overhead: batched ingest with stage timers on vs off.

The observability contract (`docs/observability.md`) is that telemetry is
free when off — every instrumentation site guards its ``perf_counter()``
pair behind one ``enabled`` bool — and cheap when on: the acceptance bar
is <= 3% throughput cost on the batch-ingest workload of
``bench_batch_throughput.py``.

Methodology matches that bench with two refinements, both because the
instrumented cost is tiny (two ``perf_counter()`` calls and one bucket
insert per *batch*) so the estimator must beat machine noise rather than
the instrumentation.  First, one algorithm per mode is built and warmed
**once**, and every round times the *same* fresh stream segment through
both — the two engines advance through identical state, so a round
compares identical work on warm heaps instead of freshly rebuilt ones.
Second, overhead is the **median of per-round on/off ratios** with the
in-round order alternating (off-first, on-first, ...): pairing cancels
slow drift, alternation cancels order bias, the median rejects
stray-round outliers.  GC is disabled inside the timed regions only.
``REPRO_BENCH_PROFILE=tiny`` shrinks the workload for a CI smoke run.
"""

from __future__ import annotations

import gc
import os
import statistics
import time

import pytest

from repro.core.factory import create_algorithm
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.decay import ExponentialDecay
from repro.documents.stream import DocumentStream, StreamConfig
from repro.obs.telemetry import Telemetry
from repro.queries.workloads import UniformWorkload, WorkloadConfig

TINY = os.environ.get("REPRO_BENCH_PROFILE", "small") == "tiny"

NUM_QUERIES = 100 if TINY else 1000
LAM = 1e-4
K = 10
WARMUP_EVENTS = 128 if TINY else 400
SEGMENT_EVENTS = 128 if TINY else 640
BATCH_SIZE = 64
ROUNDS = 3 if TINY else 15
#: Acceptance bar for the *enabled* state.  On a quiet machine the cost of
#: two ``perf_counter()`` calls and one ``bisect`` per batch is well under
#: 1%; the bar leaves room for noisy CI boxes.
MAX_OVERHEAD = 0.03

CORPUS = CorpusConfig(vocabulary_size=8_000, mean_tokens=110.0, seed=42)


def _build(telemetry: bool):
    corpus = SyntheticCorpus(CORPUS, seed=42)
    queries = UniformWorkload(
        corpus,
        config=WorkloadConfig(min_terms=2, max_terms=5, k=K, seed=143),
        seed=143,
    ).generate(NUM_QUERIES)
    algorithm = create_algorithm("mrio", ExponentialDecay(lam=LAM), ub_variant="tree")
    if telemetry:
        algorithm.telemetry = Telemetry()
    algorithm.register_all(queries)
    return algorithm


def _time_segment(algorithm, documents) -> float:
    gc.collect()
    gc.disable()
    started = time.process_time()
    for start in range(0, len(documents), BATCH_SIZE):
        algorithm.process_batch(documents[start : start + BATCH_SIZE])
    elapsed = time.process_time() - started
    gc.enable()
    return elapsed


def _measure():
    off_algo = _build(telemetry=False)
    on_algo = _build(telemetry=True)
    stream = DocumentStream(
        SyntheticCorpus(CORPUS, seed=42), StreamConfig(seed=244)
    )
    warmup = stream.take(WARMUP_EVENTS)
    for start in range(0, len(warmup), BATCH_SIZE):
        off_algo.process_batch(warmup[start : start + BATCH_SIZE])
        on_algo.process_batch(warmup[start : start + BATCH_SIZE])

    off_times, on_times = [], []
    for round_index in range(ROUNDS):
        documents = stream.take(SEGMENT_EVENTS)
        if round_index % 2 == 0:
            off_times.append(_time_segment(off_algo, documents))
            on_times.append(_time_segment(on_algo, documents))
        else:
            on_times.append(_time_segment(on_algo, documents))
            off_times.append(_time_segment(off_algo, documents))
    assert on_algo.telemetry.histograms["engine.batch"].count > 0
    return off_times, on_times


@pytest.mark.benchmark(group="telemetry-overhead")
def test_telemetry_overhead(benchmark, report):
    off_times, on_times = benchmark.pedantic(_measure, rounds=1, iterations=1)

    off, on = min(off_times), min(on_times)
    ratios = [on_t / off_t for off_t, on_t in zip(off_times, on_times)]
    overhead = statistics.median(ratios) - 1.0
    lines = [
        f"[telemetry overhead] mrio batched ingest, {NUM_QUERIES} queries, "
        f"lambda={LAM}, batch={BATCH_SIZE}, {ROUNDS} paired rounds of "
        f"{SEGMENT_EVENTS} events after {WARMUP_EVENTS} warm-up",
        f"  telemetry off  {SEGMENT_EVENTS / off:10.0f} events/sec (best round)",
        f"  telemetry on   {SEGMENT_EVENTS / on:10.0f} events/sec (best round)",
        f"  overhead       {overhead * 100:+9.2f}%   "
        f"(median of per-round ratios; bar <= {MAX_OVERHEAD * 100:.0f}%)",
    ]
    report("telemetry_overhead", "\n".join(lines))

    # The tiny smoke profile's ~6ms segments cannot resolve a sub-1%
    # effect; it checks the bench runs, the full profile checks the bar.
    if not TINY:
        assert overhead <= MAX_OVERHEAD, (
            f"telemetry-enabled ingest is {overhead * 100:.2f}% slower than "
            f"disabled (bar {MAX_OVERHEAD * 100:.0f}%)"
        )
