"""Service throughput: events/sec through the socket path vs in-process.

Measures MRIO ingestion on the synthetic stream four ways:

* ``inproc-batch256`` — plain ``monitor.process_batch`` in-process, the
  ceiling the service path is measured against;
* ``socket-event`` — one ``publish`` RPC per document, each awaited before
  the next is sent (the request/response lower bound: every event pays a
  full loopback round-trip and is its own engine batch);
* ``socket-batchN`` — ``publish_batch`` chunks of N documents (one RPC,
  one-or-few engine batches, per chunk).

Every socket cell runs a real :class:`MonitorServer` on a loopback socket
with 8 subscribed queries and a subscriber draining its notifications
concurrently — the measured path includes protocol encode/decode, arrival
stamping, the micro-batch pipeline and the fan-out, not just the engine.

The acceptance bar (ISSUE 4): micro-batched ingestion must beat per-event
publishes at batch >= 256 — asserted at the end.  Set
``REPRO_BENCH_PROFILE=tiny`` for a fast smoke run.
"""

from __future__ import annotations

import asyncio
import gc
import os
import time

import pytest

from repro.core.config import MonitorConfig
from repro.core.monitor import ContinuousMonitor
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.document import Document
from repro.queries.workloads import UniformWorkload, WorkloadConfig
from repro.service import MonitorClient, MonitorServer, ServiceConfig

TINY = os.environ.get("REPRO_BENCH_PROFILE", "small") == "tiny"
NUM_QUERIES = 200 if TINY else 500
WARMUP_EVENTS = 128 if TINY else 256
MEASURED_EVENTS = 512 if TINY else 2048
SUBSCRIBED = 8
BATCH_SIZES = (64, 256, 1024)
ROUNDS = 2 if TINY else 3
LAM = 1e-4
K = 10

CORPUS = CorpusConfig(vocabulary_size=8_000, mean_tokens=110.0, seed=42)
MONITOR = MonitorConfig(algorithm="mrio", lam=LAM)


def _world():
    corpus = SyntheticCorpus(CORPUS, seed=42)
    queries = UniformWorkload(
        corpus,
        config=WorkloadConfig(min_terms=2, max_terms=5, k=K, seed=143),
        seed=143,
    ).generate(NUM_QUERIES)
    documents = [
        Document(doc_id=doc.doc_id, vector=doc.vector)
        for doc in corpus.iter_documents(count=WARMUP_EVENTS + MEASURED_EVENTS)
    ]
    return queries, documents[:WARMUP_EVENTS], documents[WARMUP_EVENTS:]


def _run_inproc(batch_size: int) -> float:
    queries, warmup, measured = _world()
    monitor = ContinuousMonitor(MONITOR)
    monitor.register_queries(queries)
    stamped = [
        doc.with_arrival_time(float(index + 1))
        for index, doc in enumerate(warmup + measured)
    ]
    warm = stamped[: len(warmup)]
    for start in range(0, len(warm), batch_size):
        monitor.process_batch(warm[start : start + batch_size])
    timed = stamped[len(warmup) :]
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    for start in range(0, len(timed), batch_size):
        monitor.process_batch(timed[start : start + batch_size])
    elapsed = time.perf_counter() - started
    gc.enable()
    return elapsed


def _run_socket(batch_size: int) -> float:
    """One socket cell; ``batch_size`` 1 = per-event ``publish`` RPCs."""

    async def cell():
        queries, warmup, measured = _world()
        monitor = ContinuousMonitor(MONITOR)
        monitor.register_queries(queries[SUBSCRIBED:])
        server = MonitorServer(monitor, ServiceConfig(shutdown_timeout=10.0))
        await server.start()
        subscriber = await MonitorClient.connect(*server.address)
        for query in queries[:SUBSCRIBED]:
            await subscriber.subscribe(query.vector, k=query.k)

        async def drain_forever():
            try:
                while True:
                    await subscriber.next_update()
            except Exception:
                return

        drainer = asyncio.create_task(drain_forever())
        publisher = await MonitorClient.connect(*server.address)

        async def push(documents):
            if batch_size == 1:
                for document in documents:
                    await publisher.publish(document)
            else:
                for start in range(0, len(documents), batch_size):
                    await publisher.publish_batch(
                        documents[start : start + batch_size]
                    )

        await push(warmup)
        gc.collect()
        gc.disable()
        started = time.perf_counter()
        await push(measured)
        elapsed = time.perf_counter() - started
        gc.enable()
        drainer.cancel()
        await publisher.close()
        await subscriber.close()
        await server.stop()
        return elapsed

    return asyncio.run(cell())


def _measure():
    cells = [("inproc-batch256", lambda: _run_inproc(256))]
    cells.append(("socket-event", lambda: _run_socket(1)))
    for batch_size in BATCH_SIZES:
        cells.append(
            (f"socket-batch{batch_size}", lambda b=batch_size: _run_socket(b))
        )
    times = {name: [] for name, _ in cells}
    for _ in range(ROUNDS):
        for name, cell in cells:
            times[name].append(cell())
    return {name: min(samples) for name, samples in times.items()}


@pytest.mark.benchmark(group="service-throughput")
def test_service_throughput(benchmark, report):
    best = benchmark.pedantic(_measure, rounds=1, iterations=1)

    def rate(name):
        return MEASURED_EVENTS / best[name]

    lines = [
        f"[service throughput] mrio, {NUM_QUERIES} queries "
        f"({SUBSCRIBED} subscribed over the socket), lambda={LAM}, "
        f"{MEASURED_EVENTS} events after {WARMUP_EVENTS} warm-up "
        f"(min of {ROUNDS} interleaved rounds; loopback sockets)",
        f"  in-process, batch=256       {rate('inproc-batch256'):10.0f} events/sec"
        f"   (engine ceiling)",
        f"  socket, per-event publish   {rate('socket-event'):10.0f} events/sec"
        f"   ({rate('socket-event') / rate('inproc-batch256'):5.1%} of ceiling)",
    ]
    for batch_size in BATCH_SIZES:
        name = f"socket-batch{batch_size}"
        speedup = rate(name) / rate("socket-event")
        lines.append(
            f"  socket, publish_batch={batch_size:<5d}{rate(name):10.0f} events/sec"
            f"   ({speedup:4.1f}x per-event, "
            f"{rate(name) / rate('inproc-batch256'):5.1%} of ceiling)"
        )
    report("service_throughput", "\n".join(lines))

    # ISSUE 4 acceptance bar: micro-batched ingestion demonstrably faster
    # than per-event publishes at batch >= 256.
    assert rate("socket-batch256") > rate("socket-event"), (
        f"publish_batch(256) at {rate('socket-batch256'):.0f} events/sec did "
        f"not beat per-event publishes at {rate('socket-event'):.0f} events/sec"
    )
