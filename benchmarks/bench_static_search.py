"""Substrate benchmark: static top-k search (TAAT vs DAAT vs WAND).

The paper's introduction contrasts continuous monitoring with classical
top-k retrieval over a static, ID-ordered inverted file.  This benchmark
exercises that substrate directly: it indexes a synthetic collection and
measures the three evaluation strategies on a batch of keyword queries.
"""

from __future__ import annotations

import pytest

from repro.bench.spec import SCALE_PROFILES, active_profile
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.queries.workloads import UniformWorkload, WorkloadConfig
from repro.search.engine import SearchEngine

STRATEGIES = ("taat", "daat", "wand")


def _build_collection():
    profile = SCALE_PROFILES[active_profile()]
    corpus = SyntheticCorpus(
        CorpusConfig(
            vocabulary_size=int(profile["vocabulary_size"]),
            mean_tokens=float(profile["mean_tokens"]),
            seed=29,
        )
    )
    documents = corpus.generate_documents(int(profile["warmup_events"]))
    queries = UniformWorkload(
        corpus, config=WorkloadConfig(min_terms=2, max_terms=4, seed=31), seed=31
    ).generate(200)
    return documents, queries


@pytest.mark.benchmark(group="static-search")
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_static_search(benchmark, report, strategy):
    documents, queries = _build_collection()
    engine = SearchEngine(strategy=strategy)
    engine.add_all(documents)

    def run_batch():
        total_hits = 0
        for query in queries:
            total_hits += len(engine.search(query.vector, k=10))
        return total_hits

    total_hits = benchmark(run_batch)
    report(
        f"static_search_{strategy}",
        f"[static search/{strategy}] {len(queries)} queries over "
        f"{engine.num_documents} documents -> {total_hits} hits",
    )
    assert total_hits >= 0
