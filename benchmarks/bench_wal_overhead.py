"""Durability overhead: events/sec with and without the write-ahead log.

Measures MRIO ingestion throughput on the synthetic stream with durability
off (plain in-memory monitor) versus on (:class:`DurableMonitor` journaling
every event), across group-commit sizes for the per-event path and for
batched ingestion at batch 1024 (one WAL record per batch).

Group commit is the throughput lever: at group 1 every event pays a write
syscall, while at group 1024 the encode cost remains but the write cost
amortizes over the whole group.  The measured window is sized so group-1024
flushes land *inside* the timed region, and every durable cell ends with a
flush of the residual group — the figures include the amortized write cost,
not just encoding.  The acceptance bar for the subsystem is <= 25%
events/sec overhead with group commit at 1024; the assertion below enforces
it for both the per-event and the batched path (fsync stays off — this
measures the journaling cost, not the disk's).

Methodology mirrors ``bench_batch_throughput.py``: same warm-up through the
measured path, interleaved rounds, minimum per mode, GC disabled inside the
timed region only.
"""

from __future__ import annotations

import gc
import shutil
import tempfile
import time

import pytest

from repro.core.config import MonitorConfig
from repro.core.monitor import ContinuousMonitor
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.stream import DocumentStream, StreamConfig
from repro.persistence.durable import DurabilityConfig, DurableMonitor
from repro.queries.workloads import UniformWorkload, WorkloadConfig

NUM_QUERIES = 1000
LAM = 1e-4
K = 10
WARMUP_EVENTS = 400
MEASURED_EVENTS = 2048
GROUP_COMMITS = (1, 64, 1024)
BATCH_SIZE = 1024
ROUNDS = 3
#: Acceptance bar: <= 25% events/sec overhead with group commit at 1024.
MAX_OVERHEAD_AT_1024 = 0.25

CORPUS = CorpusConfig(vocabulary_size=8_000, mean_tokens=110.0, seed=42)
MONITOR = MonitorConfig(algorithm="mrio", lam=LAM)


def _world():
    corpus = SyntheticCorpus(CORPUS, seed=42)
    queries = UniformWorkload(
        corpus,
        config=WorkloadConfig(min_terms=2, max_terms=5, k=K, seed=143),
        seed=143,
    ).generate(NUM_QUERIES)
    stream = DocumentStream(corpus, StreamConfig(seed=244))
    return queries, stream


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    started = time.process_time()
    fn()
    elapsed = time.process_time() - started
    gc.enable()
    return elapsed


def _durable(queries, group_commit):
    wal_dir = tempfile.mkdtemp(prefix="repro-walbench-")
    durability = DurabilityConfig(
        directory=wal_dir,
        group_commit=group_commit,
        fsync=False,
        checkpoint_interval=None,
    )
    monitor = DurableMonitor(durability, MONITOR)
    monitor.register_queries(queries)
    return monitor, wal_dir


def _run(group_commit, batched):
    """One measured cell; ``group_commit`` None = durability off."""
    queries, stream = _world()
    wal_dir = None
    if group_commit is None:
        monitor = ContinuousMonitor(MONITOR)
        monitor.register_queries(queries)
    else:
        monitor, wal_dir = _durable(queries, group_commit)
    try:
        warmup = stream.take(WARMUP_EVENTS)
        documents = stream.take(MEASURED_EVENTS)
        durable = wal_dir is not None
        if batched:
            for start in range(0, len(warmup), BATCH_SIZE):
                monitor.process_batch(warmup[start : start + BATCH_SIZE])
            if durable:
                monitor.flush()  # warm-up residue must not bill the window

            def go():
                for start in range(0, len(documents), BATCH_SIZE):
                    monitor.process_batch(documents[start : start + BATCH_SIZE])
                if durable:
                    monitor.flush()

        else:
            for document in warmup:
                monitor.process(document)
            if durable:
                monitor.flush()  # warm-up residue must not bill the window

            def go():
                for document in documents:
                    monitor.process(document)
                if durable:
                    monitor.flush()

        return _timed(go)
    finally:
        if wal_dir is not None:
            monitor.close()
            shutil.rmtree(wal_dir, ignore_errors=True)


def _measure():
    cells = [("off", None, False), ("off-batched", None, True)]
    cells += [(f"wal-g{g}", g, False) for g in GROUP_COMMITS]
    cells += [(f"wal-g{BATCH_SIZE}-batched", BATCH_SIZE, True)]
    times = {name: [] for name, _, _ in cells}
    for _ in range(ROUNDS):
        for name, group, batched in cells:
            times[name].append(_run(group, batched))
    return {name: min(samples) for name, samples in times.items()}


@pytest.mark.benchmark(group="wal-overhead")
def test_wal_overhead_mrio(benchmark, report):
    best = benchmark.pedantic(_measure, rounds=1, iterations=1)

    def rate(name):
        return MEASURED_EVENTS / best[name]

    def overhead(name, baseline):
        return best[name] / best[baseline] - 1.0

    lines = [
        f"[wal overhead] mrio, {NUM_QUERIES} queries, lambda={LAM}, "
        f"{MEASURED_EVENTS} events after {WARMUP_EVENTS} warm-up "
        f"(min of {ROUNDS} interleaved rounds; fsync off)",
        f"  per-event, durability off   {rate('off'):10.0f} events/sec",
    ]
    for group in GROUP_COMMITS:
        name = f"wal-g{group}"
        lines.append(
            f"  per-event, group={group:<6d}    {rate(name):10.0f} events/sec   "
            f"{overhead(name, 'off'):+7.1%} overhead"
        )
    lines.append(
        f"  batch={BATCH_SIZE}, durability off {rate('off-batched'):10.0f} events/sec"
    )
    batched_name = f"wal-g{BATCH_SIZE}-batched"
    lines.append(
        f"  batch={BATCH_SIZE}, group={BATCH_SIZE}  {rate(batched_name):10.0f} events/sec   "
        f"{overhead(batched_name, 'off-batched'):+7.1%} overhead"
    )
    per_event_1024 = overhead(f"wal-g{BATCH_SIZE}", "off")
    batched_1024 = overhead(batched_name, "off-batched")
    lines.append(
        f"  overhead with group commit at {BATCH_SIZE}: per-event "
        f"{per_event_1024:+.1%}, batched {batched_1024:+.1%} "
        f"(bar <= {MAX_OVERHEAD_AT_1024:.0%})"
    )
    report("wal_overhead", "\n".join(lines))

    assert per_event_1024 <= MAX_OVERHEAD_AT_1024, (
        f"per-event WAL overhead at group commit {BATCH_SIZE} was "
        f"{per_event_1024:+.1%} (bar {MAX_OVERHEAD_AT_1024:.0%})"
    )
    assert batched_1024 <= MAX_OVERHEAD_AT_1024, (
        f"batched WAL overhead at group commit {BATCH_SIZE} was "
        f"{batched_1024:+.1%} (bar {MAX_OVERHEAD_AT_1024:.0%})"
    )
