"""Optimality claim (i): queries considered per stream event.

The abstract claims MRIO is optimal w.r.t. the number of queries whose score
must be computed per stream event, among all exact algorithms that follow the
ID-ordering paradigm.  This benchmark reports, for every method, the number
of full score evaluations and pivot iterations per event, plus the lower
bound given by the number of result updates (a query whose result changes
must necessarily be scored).
"""

from __future__ import annotations

import pytest

from repro.bench.figures import considered_queries_spec
from repro.bench.harness import run_experiment
from repro.bench.reporting import format_counter_table, format_response_table


@pytest.mark.benchmark(group="optimality")
@pytest.mark.parametrize("workload", ["uniform", "connected"])
def test_considered_queries_per_event(benchmark, report, workload):
    spec = considered_queries_spec(workload=workload)

    result = benchmark.pedantic(run_experiment, args=(spec,), rounds=1, iterations=1)

    tables = "\n\n".join(
        [
            format_counter_table(
                result,
                "full_evaluations",
                title=f"[optimality/{workload}] queries considered per stream event",
            ),
            format_counter_table(
                result,
                "result_updates",
                title=f"[optimality/{workload}] result updates per event (lower bound)",
            ),
            format_counter_table(result, "iterations"),
            format_response_table(result),
        ]
    )
    report(f"optimality_considered_{workload}", tables)

    num_queries = spec.query_counts[0]
    updates = result.cell("mrio", num_queries).counters["result_updates"]
    mrio_evals = result.cell("mrio", num_queries).counters["full_evaluations"]
    # MRIO's considered queries sit close to the lower bound and below every
    # competitor (the reproducible core of the optimality claim).
    assert mrio_evals >= updates
    for competitor in ("rta", "sortquer", "tps", "rio"):
        competitor_evals = result.cell(competitor, num_queries).counters["full_evaluations"]
        assert mrio_evals <= competitor_evals * 1.05 + 5
