"""Throughput: per-event ``process`` vs the ``process_batch`` fast path.

Measures MRIO events/sec on the synthetic stream when documents are ingested
one at a time versus in arrival-ordered batches of increasing size.  The
batch path amortizes decay renormalization, cursor construction, zone-bound
lookups (memoized while threshold propagation is deferred) and Python-level
dispatch, so throughput should grow with the batch size and exceed the
per-event baseline by >= 1.5x at large batches.

Methodology: both modes process the *same* warm-up prefix (through their own
ingestion path, so each is measured in steady state) and the same measured
segment.  Rounds are interleaved across modes and the minimum per mode is
used, which is the standard way to suppress scheduler/frequency noise on a
busy machine; GC is disabled inside the timed region only.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.core.factory import create_algorithm
from repro.documents.corpus import CorpusConfig, SyntheticCorpus
from repro.documents.decay import ExponentialDecay
from repro.documents.stream import DocumentStream, StreamConfig
from repro.queries.workloads import UniformWorkload, WorkloadConfig

NUM_QUERIES = 1000
LAM = 1e-4
K = 10
WARMUP_EVENTS = 600
MEASURED_EVENTS = 400
BATCH_SIZES = (16, 64, 256, 1024)
ROUNDS = 5
#: Hard floor for the best batched speedup at batch size >= 64.  The target
#: (and the value measured on a quiet machine at batch 1024) is >= 1.5x; the
#: assertion leaves headroom for noisy CI boxes.
MIN_BEST_SPEEDUP = 1.3
TARGET_SPEEDUP = 1.5
#: Hard floor for the columnar engine's batched throughput over the scalar
#: MRIO batched path at the same batch size.  Only armed on hosts with numpy
#: (without it the engine runs its scalar fallback, which is a correctness
#: artifact, not a fast path).
COLUMNAR_MIN_SPEEDUP = 3.0

CORPUS = CorpusConfig(vocabulary_size=8_000, mean_tokens=110.0, seed=42)


def _build(algorithm_name: str = "mrio"):
    corpus = SyntheticCorpus(CORPUS, seed=42)
    queries = UniformWorkload(
        corpus,
        config=WorkloadConfig(min_terms=2, max_terms=5, k=K, seed=143),
        seed=143,
    ).generate(NUM_QUERIES)
    kwargs = {"ub_variant": "tree"} if algorithm_name == "mrio" else {}
    algorithm = create_algorithm(algorithm_name, ExponentialDecay(lam=LAM), **kwargs)
    algorithm.register_all(queries)
    stream = DocumentStream(corpus, StreamConfig(seed=244))
    return algorithm, stream


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    started = time.process_time()
    fn()
    elapsed = time.process_time() - started
    gc.enable()
    return elapsed


def _run_per_event() -> float:
    algorithm, stream = _build()
    for document in stream.take(WARMUP_EVENTS):
        algorithm.process(document)
    documents = stream.take(MEASURED_EVENTS)

    def go():
        for document in documents:
            algorithm.process(document)

    return _timed(go)


def _run_batched(batch_size: int, algorithm_name: str = "mrio") -> float:
    algorithm, stream = _build(algorithm_name)
    warmup = stream.take(WARMUP_EVENTS)
    for start in range(0, len(warmup), batch_size):
        algorithm.process_batch(warmup[start : start + batch_size])
    documents = stream.take(MEASURED_EVENTS)

    def go():
        for start in range(0, len(documents), batch_size):
            algorithm.process_batch(documents[start : start + batch_size])

    return _timed(go)


def _measure():
    per_event_times = []
    batched_times = {batch_size: [] for batch_size in BATCH_SIZES}
    for _ in range(ROUNDS):
        per_event_times.append(_run_per_event())
        for batch_size in BATCH_SIZES:
            batched_times[batch_size].append(_run_batched(batch_size))
    per_event = min(per_event_times)
    return per_event, {
        batch_size: min(times) for batch_size, times in batched_times.items()
    }


@pytest.mark.benchmark(group="batch-throughput")
def test_batch_throughput_mrio(benchmark, report):
    per_event, batched = benchmark.pedantic(_measure, rounds=1, iterations=1)

    per_event_rate = MEASURED_EVENTS / per_event
    lines = [
        f"[batch throughput] mrio, {NUM_QUERIES} queries, lambda={LAM}, "
        f"{MEASURED_EVENTS} events after {WARMUP_EVENTS} warm-up "
        f"(min of {ROUNDS} interleaved rounds)",
        f"  per-event      {per_event_rate:10.0f} events/sec   1.00x",
    ]
    speedups = {}
    for batch_size, elapsed in batched.items():
        rate = MEASURED_EVENTS / elapsed
        speedups[batch_size] = per_event / elapsed
        lines.append(
            f"  batch={batch_size:<5d}    {rate:10.0f} events/sec   "
            f"{speedups[batch_size]:.2f}x"
        )
    best = max(speedup for batch_size, speedup in speedups.items() if batch_size >= 64)
    lines.append(
        f"  best speedup at batch >= 64: {best:.2f}x "
        f"(target {TARGET_SPEEDUP:.1f}x, hard floor {MIN_BEST_SPEEDUP:.1f}x)"
    )
    report("batch_throughput", "\n".join(lines))

    assert best >= MIN_BEST_SPEEDUP, (
        f"batched MRIO only reached {best:.2f}x over per-event at batch >= 64"
    )


@pytest.mark.benchmark(group="batch-throughput")
def test_batch_throughput_columnar(benchmark, report):
    """Columnar engine vs scalar MRIO, both on the batched ingestion path.

    Rounds are interleaved across engines (scalar, columnar, scalar, ...)
    so frequency drift hits both equally; the minimum per cell is reported.
    The >= 3x floor is only asserted when numpy is present — the scalar
    fallback probe exists for correctness parity, not speed.
    """
    from repro.index.columnar import HAVE_NUMPY

    def measure():
        scalar_times = {batch_size: [] for batch_size in BATCH_SIZES}
        columnar_times = {batch_size: [] for batch_size in BATCH_SIZES}
        for _ in range(ROUNDS):
            for batch_size in BATCH_SIZES:
                scalar_times[batch_size].append(_run_batched(batch_size, "mrio"))
                columnar_times[batch_size].append(
                    _run_batched(batch_size, "columnar")
                )
        return (
            {batch_size: min(times) for batch_size, times in scalar_times.items()},
            {batch_size: min(times) for batch_size, times in columnar_times.items()},
        )

    scalar, columnar = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"[columnar throughput] columnar vs mrio (batched), {NUM_QUERIES} "
        f"queries, lambda={LAM}, {MEASURED_EVENTS} events after "
        f"{WARMUP_EVENTS} warm-up (min of {ROUNDS} interleaved rounds, "
        f"numpy={'yes' if HAVE_NUMPY else 'no'})",
    ]
    speedups = {}
    for batch_size in BATCH_SIZES:
        scalar_rate = MEASURED_EVENTS / scalar[batch_size]
        columnar_rate = MEASURED_EVENTS / columnar[batch_size]
        speedups[batch_size] = scalar[batch_size] / columnar[batch_size]
        lines.append(
            f"  batch={batch_size:<5d}    mrio {scalar_rate:8.0f} ev/s    "
            f"columnar {columnar_rate:8.0f} ev/s    {speedups[batch_size]:.2f}x"
        )
    best = max(speedup for batch_size, speedup in speedups.items() if batch_size >= 64)
    lines.append(
        f"  best columnar speedup at batch >= 64: {best:.2f}x "
        f"(floor {COLUMNAR_MIN_SPEEDUP:.1f}x, armed with numpy only)"
    )
    report("columnar_throughput", "\n".join(lines))

    if HAVE_NUMPY:
        assert best >= COLUMNAR_MIN_SPEEDUP, (
            f"columnar engine only reached {best:.2f}x over batched scalar "
            f"MRIO at batch >= 64"
        )


@pytest.mark.benchmark(group="batch-throughput")
def test_batch_equivalence_on_bench_workload(benchmark, report):
    """Guard: the measured fast path produces the exact per-event results."""

    def check():
        sequential, stream = _build()
        documents = stream.take(WARMUP_EVENTS // 2)
        for document in documents:
            sequential.process(document)
        batched, _ = _build()
        for start in range(0, len(documents), 64):
            batched.process_batch(documents[start : start + 64])
        def snapshot(algo):
            return {
                query_id: [
                    (entry.doc_id, round(entry.score, 9))
                    for entry in algo.top_k(query_id)
                ]
                for query_id in algo.queries
            }

        assert snapshot(sequential) == snapshot(batched)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
